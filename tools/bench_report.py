"""Emit BENCH_results.json: the headline numbers of the perf work.

Runs the hot-path measurements this repo optimizes — agent pipeline
throughput, span-store ingest, and Algorithm 1 trace assembly
(incremental trace-graph index vs the iterative reference) — plus the
overload self-protection trade (overhead vs trace completeness under a
10x ramp, protection on vs off), and writes them as one JSON document,
so perf regressions show up as a diffable artifact rather than
scrolling benchmark logs.

Usage::

    PYTHONPATH=src python tools/bench_report.py [output.json]

The workloads intentionally mirror the pytest benchmarks
(benchmarks/test_agent_throughput.py, benchmarks/test_scale.py): same
shapes, same sizes, so the numbers are comparable across both harnesses.
"""

from __future__ import annotations

import json
import sys
import time

from repro.agent.agent import AgentConfig, DeepFlowAgent
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import Span, SpanKind, SpanSide
from repro.kernel.kernel import Kernel
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction, SyscallRecord
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1
from repro.server.assembler import TraceAssembler
from repro.server.database import SpanStore
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator

AGENT_EVENTS = 20_000
STORE_SPANS = 50_000
TRACE_CHAIN = 24
TRACE_QUERIES = 200


def bench_agent_pipeline() -> dict:
    """Events/second through the full user-space agent pipeline."""
    request = http1.encode_request("GET", "/api/items")
    response = http1.encode_response(200, body=b"[]")
    records = []
    t = 0.0
    for index in range(AGENT_EVENTS // 2):
        socket_id = index % 8
        ft = FiveTuple("10.0.0.1", 40000 + socket_id, "10.0.0.2", 80)
        for direction, abi, payload in (
                (Direction.INGRESS, "read", request),
                (Direction.EGRESS, "write", response)):
            t += 1e-4
            records.append(SyscallRecord(
                pid=1, tid=100 + socket_id, coroutine_id=None,
                process_name="svc", socket_id=socket_id, five_tuple=ft,
                tcp_seq=index * 100 + 1, enter_time=t,
                exit_time=t + 1e-5, direction=direction, abi=abi,
                byte_len=len(payload), payload=payload,
                ret=len(payload), host_name="node-1"))
    sim = Simulator(seed=1)
    agent = DeepFlowAgent(Kernel(sim, "node-1"), agent_index=1)
    clock = time.perf_counter()
    for record in records:
        agent._process_event(record)
    elapsed = time.perf_counter() - clock
    return {
        "events": AGENT_EVENTS,
        "spans_emitted": agent.stats["spans_emitted"],
        "events_per_second": round(AGENT_EVENTS / elapsed),
        "per_event_us": round(elapsed / AGENT_EVENTS * 1e6, 2),
    }


def bench_store_ingest() -> dict:
    """Span-store ingest rate, with the deferred index commit priced."""
    spans = [Span(
        span_id=index, kind=SpanKind.SYSCALL,
        side=SpanSide.CLIENT if index % 2 else SpanSide.SERVER,
        start_time=index * 1e-4, end_time=index * 1e-4 + 1e-3,
        systrace_id=index // 4, flow_key=("flow", index % 977),
        req_tcp_seq=index) for index in range(STORE_SPANS)]
    store = SpanStore()
    clock = time.perf_counter()
    store.insert_many(spans)
    insert_seconds = time.perf_counter() - clock
    clock = time.perf_counter()
    store.flush()
    commit_seconds = time.perf_counter() - clock
    return {
        "spans": STORE_SPANS,
        "insert_rate_spans_per_second": round(STORE_SPANS / insert_seconds),
        "index_commit_ms": round(commit_seconds * 1e3, 2),
        "ingest_to_queryable_spans_per_second":
            round(STORE_SPANS / (insert_seconds + commit_seconds)),
    }


def bench_trace_assembly() -> dict:
    """Algorithm 1 per-query cost: trace-graph index vs iterative
    reference, on chain-shaped traces over a 50k-span store."""
    store = SpanStore()
    spans = []
    span_id = 0
    for group in range(STORE_SPANS // TRACE_CHAIN + 1):
        for pos in range(TRACE_CHAIN):
            spans.append(Span(
                span_id=span_id, kind=SpanKind.SYSCALL,
                side=SpanSide.CLIENT if pos % 2 else SpanSide.SERVER,
                start_time=span_id * 1e-4,
                end_time=span_id * 1e-4 + 1e-3,
                systrace_id=group * TRACE_CHAIN + pos // 2,
                x_request_id=(f"x-{group}-{(pos + 1) // 2}"
                              if pos > 0 else None)))
            span_id += 1
    store.insert_many(spans)
    store.flush()
    assembler = TraceAssembler(store)
    starts = [span.span_id
              for span in spans[::TRACE_CHAIN][:TRACE_QUERIES]]
    clock = time.perf_counter()
    for start in starts:
        assembler.collect_iterative(start)
    reference_seconds = (time.perf_counter() - clock) / len(starts)
    clock = time.perf_counter()
    for start in starts:
        assembler.collect(start)
    fast_seconds = (time.perf_counter() - clock) / len(starts)
    return {
        "store_spans": len(store),
        "chain_length": TRACE_CHAIN,
        "queries": len(starts),
        "trace_assembly_fast_ms": round(fast_seconds * 1e3, 4),
        "trace_assembly_reference_ms": round(reference_seconds * 1e3, 4),
        "speedup": round(reference_seconds / fast_seconds, 1),
    }


def _overloaded_run(protection: bool) -> dict:
    """One measurement leg of :func:`bench_overload` (self-contained
    twin of benchmarks/test_overload_selfprotection.py: same seed, same
    ramp, so the JSON artifact and the pytest table agree)."""
    sim = Simulator(seed=11)
    builder = ClusterBuilder(node_count=1)
    wrk_pod = builder.add_pod(0, "wrk2-pod")
    web_pod = builder.add_pod(0, "web-pod")
    cluster = builder.build()
    Network(sim, cluster)
    server = DeepFlowServer()
    node = cluster.nodes[0]
    agent = server.new_agent(
        node.kernel, node=node,
        config=AgentConfig(perf_buffer_capacity=128,
                           overload_protection=protection))
    agent.deploy(mode="full")
    service = HttpService("web", web_pod.node, 80, pod=web_pod,
                          service_time=0.00005)

    @service.route("/")
    def index(worker, request):
        return Response(200, body=b"ok")
        yield

    service.start()
    agent.start_polling(interval=0.01)
    generator = LoadGenerator(wrk_pod.node, web_pod.ip, 80, rate=1.0,
                              duration=1.0, connections=16, pod=wrk_pod,
                              name="wrk2")
    generator.ramp(100.0, 12_000.0, 1.5)
    sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    agent.flush(expire=True)

    spans = [span for span in server.span_list(0.0, sim.now + 1000.0)
             if span.kind is SpanKind.SYSCALL]
    sides: dict = {}
    errors = 0
    for span in spans:
        if span.tags.get("error.kind"):
            errors += 1
            continue
        sides.setdefault((span.flow_key, span.req_tcp_seq),
                         set()).add(span.side)
    whole = sum(1 for group in sides.values() if len(group) == 2)
    torn = sum(1 for group in sides.values() if len(group) < 2) + errors
    health = agent.health()
    return {
        "ring_drops": health["perf"]["dropped"],
        "ebpf_cost_ms": round(node.kernel.hooks.total_cost_ns / 1e6, 1),
        "spans": len(spans),
        "whole_traces": whole,
        "torn_traces": torn,
        "trace_completeness": round(whole / max(1, whole + torn), 4),
        "tier_path": ["FULL"] + [new for _now, _old, new, _reason
                                 in health.get("transitions", [])],
    }


def bench_overload() -> dict:
    """Overhead-vs-completeness under a 10x open-loop ramp, protection
    on vs off (the Fig. 16 analogue)."""
    return {
        "ramp_rps": [100, 12_000],
        "protected": _overloaded_run(True),
        "unprotected": _overloaded_run(False),
    }


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_results.json"
    report = {
        "agent_pipeline": bench_agent_pipeline(),
        "store_ingest": bench_store_ingest(),
        "trace_assembly": bench_trace_assembly(),
        "overload": bench_overload(),
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
