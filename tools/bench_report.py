"""Emit BENCH_results.json: the headline numbers of the perf work.

Runs the hot-path measurements this repo optimizes — agent pipeline
throughput, span-store ingest, Algorithm 1 trace assembly (incremental
trace-graph index vs the iterative reference), sharded-store ingest
scaling with the scatter-gather query delay — plus the overload
self-protection trade (overhead vs trace completeness under a 10x ramp,
protection on vs off) and the continuous-pipeline throughput (ingest →
push-path assembly → OTLP export, with its deterministic sim-time
ingest-to-finished latency) — and writes them as one JSON document, so
perf regressions show up as a diffable artifact rather than scrolling
benchmark logs.

Usage::

    PYTHONPATH=src python tools/bench_report.py [output.json]
    PYTHONPATH=src python tools/bench_report.py fresh.json \\
        --check BENCH_results.json [--threshold 0.2]

``--check`` compares the fresh run against a committed baseline and
exits non-zero when any gated throughput metric drops by more than the
threshold (default 20%) — the committed numbers can only regress
loudly.  The fresh report is written either way, so CI keeps the
artifact of the failing run.

The workloads intentionally mirror the pytest benchmarks
(benchmarks/test_agent_throughput.py, benchmarks/test_scale.py,
benchmarks/test_sharding_scale.py): same shapes, same sizes, so the
numbers are comparable across both harnesses.

The sharded numbers report two throughputs per shard count: ``serial``
(wall clock of this single-process run) and ``modeled`` (router cost
taken as the max over a fixed fleet of routing clients, shard and
boundary-partition phase costs taken as the max over their members —
the phases a sharded deployment runs on independent nodes).  The
modeled figure is the scaling headline; the serial figure keeps the
accounting honest.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time

from repro.agent.agent import AgentConfig, DeepFlowAgent
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.export import OtlpStreamExporter
from repro.core.span import Span, SpanKind, SpanSide
from repro.kernel.kernel import Kernel
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction, SyscallRecord
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1
from repro.server.assembler import TraceAssembler
from repro.server.database import SpanStore
from repro.server.server import DeepFlowServer
from repro.server.sharding import ShardedSpanStore
from repro.sim.engine import Simulator

AGENT_EVENTS = 20_000
STORE_SPANS = 50_000
TRACE_CHAIN = 24
TRACE_QUERIES = 200
SHARD_COUNTS = (1, 2, 4, 8)
#: Modeled size of the routing fleet: agents route client-side (the
#: router is stateless), so routing cost divides across the agent fleet
#: regardless of how many shards it feeds.
ROUTER_CLIENTS = 8
SHARD_WINDOW = 0.5

STREAM_SPANS = 50_000
STREAM_BATCH = 512

#: Dotted paths of gated metrics the --check gate compares.  A leading
#: ``-`` marks a lower-is-better metric (latency: a regression is the
#: fresh value exceeding the baseline by more than the threshold);
#: plain paths are higher-is-better throughputs.  Paths missing from
#: the baseline are skipped, so new sections land without a flag day.
GATED_METRICS = (
    "agent_pipeline.events_per_second",
    "store_ingest.insert_rate_spans_per_second",
    "store_ingest.ingest_to_queryable_spans_per_second",
    "trace_assembly.speedup",
    "sharding.scaling.4.modeled_spans_per_second",
    "sharding.speedup_1_to_4",
    "streaming.spans_per_second",
    "streaming.export_spans_per_second",
    "-streaming.p99_finish_lag_ms",
)


def bench_agent_pipeline() -> dict:
    """Events/second through the full user-space agent pipeline."""
    request = http1.encode_request("GET", "/api/items")
    response = http1.encode_response(200, body=b"[]")
    records = []
    t = 0.0
    for index in range(AGENT_EVENTS // 2):
        socket_id = index % 8
        ft = FiveTuple("10.0.0.1", 40000 + socket_id, "10.0.0.2", 80)
        for direction, abi, payload in (
                (Direction.INGRESS, "read", request),
                (Direction.EGRESS, "write", response)):
            t += 1e-4
            records.append(SyscallRecord(
                pid=1, tid=100 + socket_id, coroutine_id=None,
                process_name="svc", socket_id=socket_id, five_tuple=ft,
                tcp_seq=index * 100 + 1, enter_time=t,
                exit_time=t + 1e-5, direction=direction, abi=abi,
                byte_len=len(payload), payload=payload,
                ret=len(payload), host_name="node-1"))
    # Best of three fresh agents: a single cold pass once recorded a
    # 2x-low figure that read as a regression but was only a loaded
    # machine (see CHANGES.md PR 9) — the same event stream replayed on
    # a warm process reproduces the real per-event cost.
    elapsed = None
    agent = None
    for _attempt in range(3):
        sim = Simulator(seed=1)
        agent = DeepFlowAgent(Kernel(sim, "node-1"), agent_index=1)
        clock = time.perf_counter()
        for record in records:
            agent._process_event(record)
        run = time.perf_counter() - clock
        elapsed = run if elapsed is None else min(elapsed, run)
    return {
        "events": AGENT_EVENTS,
        "spans_emitted": agent.stats["spans_emitted"],
        "events_per_second": round(AGENT_EVENTS / elapsed),
        "per_event_us": round(elapsed / AGENT_EVENTS * 1e6, 2),
    }


def bench_store_ingest() -> dict:
    """Span-store ingest rate, with the deferred index commit priced."""
    spans = [Span(
        span_id=index, kind=SpanKind.SYSCALL,
        side=SpanSide.CLIENT if index % 2 else SpanSide.SERVER,
        start_time=index * 1e-4, end_time=index * 1e-4 + 1e-3,
        systrace_id=index // 4, flow_key=("flow", index % 977),
        req_tcp_seq=index) for index in range(STORE_SPANS)]
    insert_seconds = commit_seconds = None
    for _attempt in range(3):
        store = SpanStore()
        clock = time.perf_counter()
        store.insert_many(spans)
        insert_run = time.perf_counter() - clock
        clock = time.perf_counter()
        store.flush()
        commit_run = time.perf_counter() - clock
        if insert_seconds is None or (insert_run + commit_run
                                      < insert_seconds + commit_seconds):
            insert_seconds, commit_seconds = insert_run, commit_run
    return {
        "spans": STORE_SPANS,
        "insert_rate_spans_per_second": round(STORE_SPANS / insert_seconds),
        "index_commit_ms": round(commit_seconds * 1e3, 2),
        "ingest_to_queryable_spans_per_second":
            round(STORE_SPANS / (insert_seconds + commit_seconds)),
    }


def bench_trace_assembly() -> dict:
    """Algorithm 1 per-query cost: trace-graph index vs iterative
    reference, on chain-shaped traces over a 50k-span store."""
    store = SpanStore()
    spans = []
    span_id = 0
    for group in range(STORE_SPANS // TRACE_CHAIN + 1):
        for pos in range(TRACE_CHAIN):
            spans.append(Span(
                span_id=span_id, kind=SpanKind.SYSCALL,
                side=SpanSide.CLIENT if pos % 2 else SpanSide.SERVER,
                start_time=span_id * 1e-4,
                end_time=span_id * 1e-4 + 1e-3,
                systrace_id=group * TRACE_CHAIN + pos // 2,
                x_request_id=(f"x-{group}-{(pos + 1) // 2}"
                              if pos > 0 else None)))
            span_id += 1
    store.insert_many(spans)
    store.flush()
    assembler = TraceAssembler(store)
    starts = [span.span_id
              for span in spans[::TRACE_CHAIN][:TRACE_QUERIES]]
    clock = time.perf_counter()
    for start in starts:
        assembler.collect_iterative(start)
    reference_seconds = (time.perf_counter() - clock) / len(starts)
    clock = time.perf_counter()
    for start in starts:
        assembler.collect(start)
    fast_seconds = (time.perf_counter() - clock) / len(starts)
    return {
        "store_spans": len(store),
        "chain_length": TRACE_CHAIN,
        "queries": len(starts),
        "trace_assembly_fast_ms": round(fast_seconds * 1e3, 4),
        "trace_assembly_reference_ms": round(reference_seconds * 1e3, 4),
        "speedup": round(reference_seconds / fast_seconds, 1),
    }


def _sharding_spans(count: int = STORE_SPANS) -> list[Span]:
    """The sharding workload: groups of four spans share a systrace id
    (the routing key); every tenth group also carries the previous
    group's X-Request-ID, so a slice of the population associates across
    routing keys — and, near window edges, across shards — keeping the
    boundary-merge machinery on the measured path."""
    spans = []
    for index in range(count):
        group = index // 4
        xreq = None
        if group % 10 == 0 and group > 0 and index % 4 == 0:
            xreq = f"xr-{group - 1}"
        elif group % 10 == 9 and index % 4 == 3:
            xreq = f"xr-{group}"
        spans.append(Span(
            span_id=index, kind=SpanKind.SYSCALL,
            side=SpanSide.CLIENT if index % 2 else SpanSide.SERVER,
            start_time=index * 1e-4, end_time=index * 1e-4 + 1e-3,
            systrace_id=group, x_request_id=xreq,
            flow_key=("flow", index % 977), req_tcp_seq=index))
    return spans


def _chunks(items: list, count: int) -> list[list]:
    size = (len(items) + count - 1) // count
    return [items[i:i + size] for i in range(0, len(items), size)]


def _bench_one_shard_count(shards: int, spans: list[Span],
                           repeats: int = 3) -> dict:
    """Phase-priced ingest + query delay for one shard count.

    The ingest is repeated on fresh stores and each phase member's cost
    is the elementwise MIN across repeats — the standard best-estimate
    of a deterministic member's true cost — before the parallel model
    takes the MAX across members.  Without the min pass, the max is a
    noise amplifier that grows with member count and biases the scaling
    curve against higher shard counts.  The collector is paused during
    the phased section for the same reason: a whole-process gen-2 GC
    pass lands deterministically on whichever member crosses the
    allocation threshold, but in the modeled deployment every shard
    process has its own heap, so charging one member the fleet's
    entire GC is a single-process artifact, not a cost of sharding.
    """
    route_times = shard_times = partition_times = None
    apply_seconds = None
    store = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    for _attempt in range(repeats):
        store = ShardedSpanStore(shards, window=SHARD_WINDOW)
        # Routing: stateless, done client-side by the agent fleet —
        # modeled as the max over a fixed number of routing clients.
        routes = []
        client_batches = []
        for chunk in _chunks(spans, ROUTER_CLIENTS):
            clock = time.perf_counter()
            client_batches.append(store.route_batches(chunk))
            routes.append(time.perf_counter() - clock)
        merged = [[] for _ in range(shards)]
        for batches in client_batches:
            for index, batch in enumerate(batches):
                merged[index].extend(batch)
        # Shard phase: insert + key/time commit + first-seen-key seal,
        # per shard — each shard server runs this independently.
        shard = []
        for index, batch in enumerate(merged):
            clock = time.perf_counter()
            store.shards[index].insert_many(batch)
            store.shards[index].flush()
            store.seal_shard(index)
            shard.append(time.perf_counter() - clock)
        # Boundary phase: per-partition owner-table probes (a
        # partitioned keyspace service), then the one serial link apply.
        partitions = []
        links = []
        for partition in range(store.partition_count):
            clock = time.perf_counter()
            links.extend(store.probe_partition(partition))
            partitions.append(time.perf_counter() - clock)
        clock = time.perf_counter()
        store.apply_boundary_links(links)
        apply = time.perf_counter() - clock
        if route_times is None:
            route_times, shard_times = routes, shard
            partition_times, apply_seconds = partitions, apply
        else:
            route_times = [min(a, b) for a, b in zip(route_times, routes)]
            shard_times = [min(a, b) for a, b in zip(shard_times, shard)]
            partition_times = [min(a, b) for a, b
                               in zip(partition_times, partitions)]
            apply_seconds = min(apply_seconds, apply)
    if gc_was_enabled:
        gc.enable()

    route_max = max(route_times)
    shard_max = max(shard_times)
    partition_max = max(partition_times) if partition_times else 0.0
    modeled = route_max + shard_max + partition_max + apply_seconds
    serial = (sum(route_times) + sum(shard_times)
              + sum(partition_times) + apply_seconds)

    # Query delay: scatter-gather trace queries against the full store.
    starts = [span.span_id for span in spans[::4][:TRACE_QUERIES]]
    clock = time.perf_counter()
    for start in starts:
        store.component_spans(start)
    query_seconds = (time.perf_counter() - clock) / len(starts)
    stats = store.shard_stats()
    return {
        "modeled_spans_per_second": round(len(spans) / modeled),
        "serial_spans_per_second": round(len(spans) / serial),
        "route_max_ms": round(route_max * 1e3, 2),
        "shard_max_ms": round(shard_max * 1e3, 2),
        "partition_max_ms": round(partition_max * 1e3, 2),
        "link_apply_ms": round(apply_seconds * 1e3, 2),
        "boundary_links": stats["boundary_links"],
        "imbalance": round(stats["imbalance"], 3),
        "trace_query_us": round(query_seconds * 1e6, 2),
    }


def bench_sharding() -> dict:
    """Fig-15-style scaling: ingest-to-queryable throughput across shard
    counts, plus a query-delay curve over a growing 4-shard store."""
    spans = _sharding_spans()
    # Throwaway warmup: the first phased ingest of a process pays
    # allocator growth and cold branch predictors, and whichever shard
    # count runs first would eat it — usually the 1-shard baseline,
    # skewing every ratio computed against it.
    _bench_one_shard_count(2, spans[:10_000], repeats=1)
    scaling = {str(count): _bench_one_shard_count(count, spans,
                                                  repeats=4)
               for count in SHARD_COUNTS}
    base = scaling["1"]["modeled_spans_per_second"]
    # Query-delay growth curve: delay must stay flat as the store grows
    # (component lookup is O(result), not O(store)).
    growth_store = ShardedSpanStore(4, window=SHARD_WINDOW)
    curve = []
    step = len(spans) // 5
    for stop in range(step, len(spans) + 1, step):
        growth_store.insert_many(spans[stop - step:stop])
        growth_store.flush()
        starts = [span.span_id for span in spans[:stop:4][:50]]
        clock = time.perf_counter()
        for start in starts:
            growth_store.component_spans(start)
        per_query = (time.perf_counter() - clock) / len(starts)
        curve.append({"spans": stop,
                      "trace_query_us": round(per_query * 1e6, 2)})
    return {
        "spans": len(spans),
        "router_clients": ROUTER_CLIENTS,
        "window_s": SHARD_WINDOW,
        "scaling": scaling,
        "speedup_1_to_2": round(
            scaling["2"]["modeled_spans_per_second"] / base, 2),
        "speedup_1_to_4": round(
            scaling["4"]["modeled_spans_per_second"] / base, 2),
        "speedup_1_to_8": round(
            scaling["8"]["modeled_spans_per_second"] / base, 2),
        "query_delay_curve_4_shards": curve,
    }


def _overloaded_run(protection: bool) -> dict:
    """One measurement leg of :func:`bench_overload` (self-contained
    twin of benchmarks/test_overload_selfprotection.py: same seed, same
    ramp, so the JSON artifact and the pytest table agree)."""
    sim = Simulator(seed=11)
    builder = ClusterBuilder(node_count=1)
    wrk_pod = builder.add_pod(0, "wrk2-pod")
    web_pod = builder.add_pod(0, "web-pod")
    cluster = builder.build()
    Network(sim, cluster)
    server = DeepFlowServer()
    node = cluster.nodes[0]
    agent = server.new_agent(
        node.kernel, node=node,
        config=AgentConfig(perf_buffer_capacity=128,
                           overload_protection=protection))
    agent.deploy(mode="full")
    service = HttpService("web", web_pod.node, 80, pod=web_pod,
                          service_time=0.00005)

    @service.route("/")
    def index(worker, request):
        return Response(200, body=b"ok")
        yield

    service.start()
    agent.start_polling(interval=0.01)
    generator = LoadGenerator(wrk_pod.node, web_pod.ip, 80, rate=1.0,
                              duration=1.0, connections=16, pod=wrk_pod,
                              name="wrk2")
    generator.ramp(100.0, 12_000.0, 1.5)
    sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    agent.flush(expire=True)

    spans = [span for span in server.span_list(0.0, sim.now + 1000.0)
             if span.kind is SpanKind.SYSCALL]
    sides: dict = {}
    errors = 0
    for span in spans:
        if span.tags.get("error.kind"):
            errors += 1
            continue
        sides.setdefault((span.flow_key, span.req_tcp_seq),
                         set()).add(span.side)
    whole = sum(1 for group in sides.values() if len(group) == 2)
    torn = sum(1 for group in sides.values() if len(group) < 2) + errors
    health = agent.health()
    return {
        "ring_drops": health["perf"]["dropped"],
        "ebpf_cost_ms": round(node.kernel.hooks.total_cost_ns / 1e6, 1),
        "spans": len(spans),
        "whole_traces": whole,
        "torn_traces": torn,
        "trace_completeness": round(whole / max(1, whole + torn), 4),
        "tier_path": ["FULL"] + [new for _now, _old, new, _reason
                                 in health.get("transitions", [])],
    }


def bench_overload() -> dict:
    """Overhead-vs-completeness under a 10x open-loop ramp, protection
    on vs off (the Fig. 16 analogue)."""
    return {
        "ramp_rps": [100, 12_000],
        "protected": _overloaded_run(True),
        "unprotected": _overloaded_run(False),
    }


def _streaming_spans(count: int = STREAM_SPANS) -> list[Span]:
    """Groups of four spans per trace; the first is a server-side entry
    enclosing the rest, so the continuous assembler retires traces via
    the root-complete heuristic *during* ingest — the steady state, not
    a terminal drain.  (Self-contained twin of
    benchmarks/test_streaming_pipeline.py: same shape, same sizes.)"""
    spans = []
    for index in range(count):
        group = index // 4
        pos = index % 4
        group_t = group * 4e-5
        start = group_t + pos * 1e-6
        end = group_t + (2e-3 if pos == 0 else 1e-3 + pos * 1e-6)
        spans.append(Span(
            span_id=index + 1, kind=SpanKind.SYSCALL,
            side=SpanSide.SERVER if pos == 0 else SpanSide.CLIENT,
            start_time=start, end_time=end,
            host="n1", process_name=f"svc-{group % 7}",
            protocol="http", operation="GET", resource="/api",
            status="ok", status_code=200,
            systrace_id=group))
    return spans


def bench_streaming() -> dict:
    """Continuous pipeline: ingest -> push-path assembly -> OTLP export.

    Wall clock prices the full chain (store insert, link events,
    live-trace maintenance, parent assignment, OTLP/JSON encoding); the
    ingest-to-finished latency comes from the deterministic sim-time
    ``stream.finish_lag_s`` histogram, so the gated p99 is a lifecycle
    property that cannot flap with host speed.
    """
    spans = _streaming_spans()
    elapsed = None
    server = None
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _attempt in range(3):
            server = DeepFlowServer()
            exporter = OtlpStreamExporter(keep_payloads=False)
            server.enable_streaming(exporter=exporter)
            clock = time.perf_counter()
            for start in range(0, len(spans), STREAM_BATCH):
                batch = spans[start:start + STREAM_BATCH]
                server.ingest_spans(batch, now=batch[-1].end_time)
            end_time = spans[-1].end_time
            server.streaming.tick(end_time + 0.06)
            server.streaming.drain(end_time + 0.06)
            run = time.perf_counter() - clock
            elapsed = run if elapsed is None else min(elapsed, run)
            gc.collect()
        # Export throughput in isolation: re-encode the finished traces.
        traces = [record.trace for record in server.streaming.finished]
        export_seconds = None
        for _attempt in range(3):
            sink = OtlpStreamExporter(keep_payloads=False)
            clock = time.perf_counter()
            for trace in traces:
                sink.export_trace(trace)
            run = time.perf_counter() - clock
            export_seconds = (run if export_seconds is None
                              else min(export_seconds, run))
    finally:
        if gc_was_enabled:
            gc.enable()
    lag = server.pipeline_metrics.get("stream.finish_lag_s")
    stream = server.streaming.stats()
    return {
        "spans": len(spans),
        "traces": stream["finished"],
        "spans_per_second": round(len(spans) / elapsed),
        "export_spans_per_second": round(sink.exported_spans
                                         / export_seconds),
        "p99_finish_lag_ms": round(lag.percentile(0.99) * 1e3, 1),
        "mean_finish_lag_ms": round(lag.mean() * 1e3, 2),
        "merges": stream["merges"],
        "forced_finishes": sum(
            1 for record in server.streaming.finished
            if record.reason == "forced"),
    }


def _lookup(report: dict, dotted: str):
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def check_regressions(fresh: dict, baseline: dict,
                      threshold: float) -> list[str]:
    """Gated metrics that regressed more than *threshold* vs baseline.

    Plain paths are throughputs (regression = drop); ``-``-prefixed
    paths are latencies (regression = growth).
    """
    failures = []
    for gated in GATED_METRICS:
        lower_is_better = gated.startswith("-")
        dotted = gated[1:] if lower_is_better else gated
        base = _lookup(baseline, dotted)
        now = _lookup(fresh, dotted)
        if base is None or now is None or base <= 0:
            continue
        if lower_is_better:
            growth = now / base - 1.0
            if growth > threshold:
                failures.append(
                    f"{dotted}: {now} vs baseline {base} "
                    f"({growth:+.1%} growth exceeds {threshold:.0%} "
                    f"threshold)")
            continue
        drop = 1.0 - now / base
        if drop > threshold:
            failures.append(
                f"{dotted}: {now} vs baseline {base} "
                f"({drop:+.1%} drop exceeds {threshold:.0%} threshold)")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report",
        description="run the benchmark suite and emit BENCH_results.json")
    parser.add_argument("output", nargs="?", default="BENCH_results.json")
    parser.add_argument(
        "--check", nargs="?", const="BENCH_results.json", default=None,
        metavar="BASELINE",
        help="compare against a committed baseline JSON and exit "
             "non-zero on throughput regressions "
             "(default baseline: BENCH_results.json)")
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="maximum tolerated fractional drop per gated metric "
             "(default 0.20)")
    args = parser.parse_args(argv[1:])
    report = {
        "agent_pipeline": bench_agent_pipeline(),
        "store_ingest": bench_store_ingest(),
        "trace_assembly": bench_trace_assembly(),
        "sharding": bench_sharding(),
        "overload": bench_overload(),
        "streaming": bench_streaming(),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    if args.check is not None:
        try:
            with open(args.check, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench_report: cannot read baseline {args.check}: "
                  f"{exc}", file=sys.stderr)
            return 2
        failures = check_regressions(report, baseline, args.threshold)
        if failures:
            print("bench_report: throughput regression vs "
                  f"{args.check}:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"bench_report: no regressions vs {args.check} "
              f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
