"""Hot-path discipline checker.

The ingest pipeline — agent event dispatch, ``SpanStore.insert``, and
``TraceGraphIndex`` maintenance — runs once per traced message, so
per-event waste there is a span-rate regression (the exact class of
problem an earlier optimization pass hand-fixed: un-hoisted attribute
loads, per-event temporaries, O(n) rescans inside O(n) loops).  This
checker walks the call-graph closure of the hot seeds and flags, inside
loop bodies only:

* ``hp-alloc-in-loop`` (warn) — constructor calls (``list()``,
  ``dict()``, ``set()``, ``tuple()``, ``frozenset()``, ``sorted()``),
  comprehensions, and f-strings.  Literal displays (``{a, b}``) are
  allowed — the store's posting-promotion path allocates one set on the
  rare first collision, which is the design, not waste.  Allocations
  inside ``raise`` statements are error paths and exempt.
* ``hp-attr-in-loop`` (warn) — a ``self``-rooted attribute chain of
  depth ≥ 2 (``self.a.b``), or the same ``self.x`` loaded twice in one
  loop body: both are method-call/dict-lookup work the surrounding
  code already hoists into locals.
* ``hp-rescan-in-loop`` (warn) — ``sorted(...)``, ``.sort()``,
  ``.index()``, or ``insort`` inside a loop: an O(n) pass per event.

A second, stricter contract covers the overload guards
(:data:`ALLOC_FREE_SEEDS`): the per-record sampler decision, the
firing-time token-bucket check, and the per-poll tier check run on
*every* kernel event precisely when the agent is already drowning, so
their whole bodies — not just loop bodies — must be allocation-free.
``hp-alloc-in-guard`` (error) flags constructor calls, comprehensions,
f-strings, and list/set/dict literal displays anywhere inside them;
the once-per-socket/once-per-transition slow paths they delegate to are
deliberately not listed.

Dynamic dispatch hides the agent's handler table from the call graph,
so the seed list names the handler methods explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.analyze.checkers import Checker, register
from tools.analyze.findings import Finding
from tools.analyze.project import FunctionInfo, Project

CHECKER_NAME = "hot-path"

#: class name → method-name predicates seeding the hot closure.
HOT_SEEDS: dict[str, tuple[str, ...]] = {
    "SpanStore": ("insert", "insert_many"),
    "ShardedSpanStore": ("insert", "insert_many", "route_batches"),
    "TraceGraphIndex": ("add_span", "add", "link", "link_batch", "find"),
    "DeepFlowAgent": ("poll", "_process_event", "_dispatch_slow",
                      "_process_coroutine_event", "_process_close_event",
                      "_process_uprobe_record", "_process_syscall_record",
                      "_process_degraded_record", "_ingest_message",
                      "_emit_session", "_on_enter", "_on_exit"),
    # The continuous assembler's push entry runs per ingest batch with
    # per-span and per-link-event loops; parent assembly (which sorts)
    # is deliberately split into finalize_pending, off this closure.
    "ContinuousAssembler": ("on_spans",),
}

#: class name → methods whose ENTIRE body must be allocation-free: the
#: overload-protection fast paths, which run per kernel event exactly
#: when the agent is overloaded.
ALLOC_FREE_SEEDS: dict[str, tuple[str, ...]] = {
    "TokenBucket": ("allow",),
    "HeadSampler": ("admit",),
    "OverloadController": ("tick",),
    # The shard router runs once per ingested span; its integer-axis
    # fast path must stay allocation-free (the tuple-key fallback lives
    # in the cold _slow_route_hash helper, deliberately not listed).
    "ShardedSpanStore": ("_route",),
    # Pipeline self-metrics increments are sprinkled through every
    # ingest stage (agent poll/ship, shard routing, server ingest,
    # continuous assembly), so an allocation creeping into one taxes
    # the whole pipeline at span rate.
    "Counter": ("inc",),
    "Gauge": ("set",),
    "Histogram": ("observe",),
}

ALLOC_CALLS = {"list", "dict", "set", "tuple", "frozenset", "sorted"}
ALLOC_DISPLAYS = (ast.List, ast.Set, ast.Dict)
COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                  ast.GeneratorExp)
RESCAN_METHODS = {"sort", "index"}


def hot_functions(project: Project) -> dict[str, FunctionInfo]:
    """qualname → function for the hot-seed call-graph closure."""
    seeds: set[str] = set()
    for cls in project.classes.values():
        wanted = HOT_SEEDS.get(cls.name)
        if not wanted:
            continue
        for method_name in wanted:
            method = cls.methods.get(method_name)
            if method is not None:
                seeds.add(method.qualname)
    closure = project.reachable_from(seeds)
    return {q: project.functions[q] for q in closure
            if q in project.functions}


def alloc_free_functions(project: Project) -> dict[str, FunctionInfo]:
    """qualname → function for the allocation-free guard seeds.

    No call-graph closure here: the guards delegate their cold paths
    (socket open, tier transition) to helpers that allocate by design,
    so only the listed bodies themselves carry the contract.
    """
    out: dict[str, FunctionInfo] = {}
    for cls in project.classes.values():
        wanted = ALLOC_FREE_SEEDS.get(cls.name)
        if not wanted:
            continue
        for method_name in wanted:
            method = cls.methods.get(method_name)
            if method is not None and method.qualname in project.functions:
                out[method.qualname] = project.functions[method.qualname]
    return out


def _loop_bodies(func_node: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every loop body statement list in *func_node*, skipping nested
    function definitions (they have their own cost model)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node.body
        stack.extend(ast.iter_child_nodes(node))


def _self_chain(node: ast.Attribute) -> Optional[tuple[str, ...]]:
    """("self", "a", "b") for a self-rooted load chain, else None."""
    parts: list[str] = [node.attr]
    obj = node.value
    while isinstance(obj, ast.Attribute):
        parts.append(obj.attr)
        obj = obj.value
    if isinstance(obj, ast.Name) and obj.id == "self":
        parts.append("self")
        return tuple(reversed(parts))
    return None


def _walk_body(body: list[ast.stmt],
               skip_raise: bool = True) -> Iterator[ast.AST]:
    """Walk expressions in *body* without descending into nested loops'
    own reporting scope problems — nested loops are revisited by
    :func:`_loop_bodies`, but their nodes still execute inside this
    loop, so they are included here; nested functions and ``raise``
    payloads are not."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if skip_raise and isinstance(node, ast.Raise):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class HotPathChecker(Checker):
    name = CHECKER_NAME
    description = ("no per-event allocations, repeated attribute loads, "
                   "or O(n) rescans in ingest-path loops")

    def run(self, project: Project) -> Iterator[Finding]:
        for qualname, info in sorted(hot_functions(project).items()):
            path = info.module.rel_display(project.repo_root)
            reported: set[int] = set()
            for body in _loop_bodies(info.node):
                yield from self._check_body(body, path, qualname,
                                            reported)
        for qualname, info in sorted(alloc_free_functions(project).items()):
            path = info.module.rel_display(project.repo_root)
            yield from self._check_guard(info.node.body, path, qualname)

    def _check_guard(self, body: list[ast.stmt], path: str,
                     qualname: str) -> Iterator[Finding]:
        """Flag ANY allocation in an overload-guard body — these run per
        kernel event exactly when the agent is drowning, so even the
        literal displays the loop rule tolerates are disallowed."""
        for node in _walk_body(body):
            kind = None
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ALLOC_CALLS:
                kind = f"{node.func.id}() call"
            elif isinstance(node, COMPREHENSIONS):
                kind = "comprehension"
            elif isinstance(node, ast.JoinedStr):
                kind = "f-string"
            elif isinstance(node, ALLOC_DISPLAYS):
                ctx = getattr(node, "ctx", None)
                if ctx is None or isinstance(ctx, ast.Load):
                    kind = "literal display"
            if kind is not None:
                yield Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-alloc-in-guard", severity="error",
                    function=qualname,
                    message=(f"{kind} inside an overload guard — this "
                             f"body runs per kernel event under "
                             f"overload and must stay allocation-free; "
                             f"move it to the cold path"))

    def _check_body(self, body: list[ast.stmt], path: str,
                    qualname: str,
                    reported: set[int]) -> Iterator[Finding]:
        self_loads: dict[tuple[str, ...], list[ast.Attribute]] = {}
        for node in _walk_body(body):
            if id(node) in reported:
                continue
            if isinstance(node, ast.Call):
                finding = self._check_call(node, path, qualname)
                if finding is not None:
                    reported.add(id(node))
                    yield finding
            elif isinstance(node, COMPREHENSIONS + (ast.JoinedStr,)):
                reported.add(id(node))
                kind = ("f-string" if isinstance(node, ast.JoinedStr)
                        else "comprehension")
                yield Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-alloc-in-loop", severity="warn",
                    function=qualname,
                    message=(f"{kind} allocates per loop iteration on "
                             f"the hot path — build outside the loop"))
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                chain = _self_chain(node)
                if chain is None:
                    continue
                if len(chain) > 2 and id(node) not in reported:
                    reported.add(id(node))
                    yield Finding(
                        path=path, line=node.lineno, checker=self.name,
                        rule="hp-attr-in-loop", severity="warn",
                        function=qualname,
                        message=(f"attribute chain "
                                 f"{'.'.join(chain)} inside a hot loop "
                                 f"— hoist it into a local before the "
                                 f"loop"))
                elif len(chain) == 2:
                    self_loads.setdefault(chain, []).append(node)
        for chain, nodes in sorted(self_loads.items()):
            if len(nodes) < 2:
                continue
            first = min(nodes, key=lambda n: n.lineno)
            if id(first) in reported:
                continue
            reported.add(id(first))
            for node in nodes:
                reported.add(id(node))
            yield Finding(
                path=path, line=first.lineno, checker=self.name,
                rule="hp-attr-in-loop", severity="warn",
                function=qualname,
                message=(f"{'.'.join(chain)} loaded {len(nodes)}× in one "
                         f"hot loop body — hoist it into a local"))

    def _check_call(self, node: ast.Call, path: str,
                    qualname: str) -> Optional[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                return Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-rescan-in-loop", severity="warn",
                    function=qualname,
                    message="sorted() inside a hot loop — an O(n log n) "
                            "rescan per event; maintain order "
                            "incrementally")
            if func.id == "insort":
                return Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-rescan-in-loop", severity="warn",
                    function=qualname,
                    message="insort() inside a hot loop — O(n) list "
                            "shifting per event")
            if func.id in ALLOC_CALLS:
                return Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-alloc-in-loop", severity="warn",
                    function=qualname,
                    message=(f"{func.id}() allocates per loop iteration "
                             f"on the hot path — reuse or hoist it"))
        elif isinstance(func, ast.Attribute):
            if func.attr in RESCAN_METHODS:
                return Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-rescan-in-loop", severity="warn",
                    function=qualname,
                    message=(f".{func.attr}() inside a hot loop — an "
                             f"O(n) rescan per event"))
            if func.attr == "insort":
                return Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="hp-rescan-in-loop", severity="warn",
                    function=qualname,
                    message="insort inside a hot loop — O(n) list "
                            "shifting per event")
        return None
