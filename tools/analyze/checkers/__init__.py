"""Checker plugin API and registry.

A checker is a class with a ``name``, a one-line ``description``, and a
``run(project)`` method yielding :class:`~tools.analyze.findings.Finding`
objects.  Registration is by decorator::

    @register
    class MyChecker(Checker):
        name = "my-checker"
        def run(self, project):
            yield Finding(...)

The engine (:func:`tools.analyze.run_analysis`) imports the built-in
checker modules via :func:`load_builtin_checkers`, instantiates every
registered class (optionally filtered by name), and applies suppression
and the baseline afterwards — checkers emit every raw hit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Type

from tools.analyze.findings import Finding
from tools.analyze.project import Project


class Checker:
    """Base class for analysis checkers."""

    #: unique checker id, used in findings, CLI filters, and reports.
    name: str = ""
    description: str = ""

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


#: name → checker class, in registration order.
REGISTRY: dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no checker name")
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def load_builtin_checkers() -> None:
    """Import the built-in checker modules, populating the registry."""
    from tools.analyze.checkers import (  # noqa: F401
        confinement, discipline, dissector_safety, hot_path)


def iter_checkers(names: Optional[list[str]] = None) -> Iterator[Checker]:
    """Instantiate registered checkers, optionally only *names*."""
    load_builtin_checkers()
    if names is None:
        for cls in REGISTRY.values():
            yield cls()
        return
    for name in names:
        if name not in REGISTRY:
            known = ", ".join(sorted(REGISTRY))
            raise KeyError(f"unknown checker {name!r} (known: {known})")
        yield REGISTRY[name]()
