"""Discipline checker: determinism, layering, and runtime asserts.

Re-implements the original ``tools/lint_repro.py`` rules on the shared
engine (same rule ids, same message text — the back-compat shim maps
these findings straight back to ``Violation`` objects) and adds one new
rule:

* ``determinism`` — wall-clock / RNG calls outside ``repro.sim``.
* ``layering`` — imports that cross the package layering matrix,
  including the agent/server → apps tracing back-channel.
* ``runtime-assert`` — bare ``assert`` used for runtime validation in
  library code.  Asserts vanish under ``python -O``; production checks
  must be explicit raises.  (Tests live outside ``src/repro`` and are
  never scanned.)

The per-module entry point :func:`lint_module` operates on a parsed
tree so the shim can run it on arbitrary source strings without
building a :class:`~tools.analyze.project.Project`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analyze.checkers import Checker, register
from tools.analyze.findings import Finding
from tools.analyze.project import Project

CHECKER_NAME = "discipline"

#: Wall-clock / nondeterminism sources: module → banned attributes
#: (``*`` = every callable attribute of the module).
BANNED_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "sleep", "clock_gettime"},
    "datetime": {"now", "utcnow", "today"},
    "random": {"*"},
    "secrets": {"*"},
    "uuid": {"uuid1", "uuid4"},
    "os": {"urandom", "getrandom"},
}

#: Packages exempt from the determinism/RNG rules: repro.sim owns the
#: seeded RNG and the virtual clock.
DETERMINISM_EXEMPT = {"sim"}

#: Layering: package → packages it may import from ``repro.*``.
#: Anything absent means "may import nothing from repro".  The agent and
#: server knowing nothing about repro.apps is the paper's zero-code
#: claim made structural: the tracer cannot reach into application state.
ALLOWED_IMPORTS = {
    "sim": {"sim"},
    "core": {"core", "sim"},
    "kernel": {"kernel", "network", "sim", "core"},
    "network": {"kernel", "network", "sim", "core"},
    "protocols": {"protocols", "core", "sim"},
    "agent": {"agent", "core", "kernel", "network", "protocols", "sim"},
    "server": {"server", "agent", "core", "kernel", "network",
               "protocols", "sim"},
    "apps": {"apps", "kernel", "network", "protocols", "sim", "core"},
    "baselines": {"baselines", "core", "sim"},
    "survey": {"survey", "core"},
    "analysis": {"analysis", "agent", "apps", "baselines", "core",
                 "kernel", "network", "protocols", "server", "sim",
                 "survey"},
}

#: The planes that must never see application internals, with the design
#: rule each violation breaks (used for the error message).
BACK_CHANNEL = {
    ("agent", "apps"): "the agent may only read what the hooks expose",
    ("server", "apps"): "trace assembly must reconstruct causality "
                        "from spans alone",
}


class _ModuleLinter(ast.NodeVisitor):
    """Single-module pass collecting discipline findings."""

    def __init__(self, path: str, package: str, *,
                 assert_rule: bool = True):
        self.path = path
        self.package = package  # first component under repro/, "" at root
        self.assert_rule = assert_rule
        self.findings: list[Finding] = []
        #: local alias → banned (module, attr) from `from X import Y`.
        self._from_aliases: dict[str, tuple[str, str]] = {}
        #: local alias → banned module from `import X as Y`.
        self._module_aliases: dict[str, str] = {}

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path, line=getattr(node, "lineno", 0),
            checker=CHECKER_NAME, rule=rule, message=message))

    @property
    def _determinism_applies(self) -> bool:
        return self.package not in DETERMINISM_EXEMPT

    # -- imports ----------------------------------------------------------

    def _check_repro_import(self, node: ast.AST, target: str) -> None:
        parts = target.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return
        imported_pkg = parts[1]
        if not self.package:  # files directly under repro/ (public API)
            return
        allowed = ALLOWED_IMPORTS.get(self.package)
        if allowed is not None and imported_pkg not in allowed:
            reason = BACK_CHANNEL.get((self.package, imported_pkg))
            detail = (f" — no tracing back-channel: {reason}"
                      if reason else "")
            self._report(
                node, "layering",
                f"repro.{self.package} must not import "
                f"repro.{imported_pkg}{detail}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_repro_import(node, alias.name)
            top = alias.name.split(".")[0]
            if top in BANNED_CALLS and self._determinism_applies:
                self._module_aliases[alias.asname or top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        self._check_repro_import(node, module)
        top = module.split(".")[0]
        if top in BANNED_CALLS and self._determinism_applies:
            banned = BANNED_CALLS[top]
            for alias in node.names:
                if alias.name in banned or "*" in banned:
                    self._from_aliases[alias.asname or alias.name] = \
                        (top, alias.name)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._determinism_applies:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain:
                root = self._module_aliases.get(chain[0], chain[0])
                banned = BANNED_CALLS.get(root)
                # Only flag when the base really is the module (it was
                # imported in this file), not a same-named local object.
                if banned and chain[0] in self._module_aliases:
                    attr = chain[-1]
                    if attr in banned or "*" in banned:
                        self._report(
                            node, "determinism",
                            f"call to {'.'.join(chain)}() — "
                            f"nondeterministic outside repro.sim; use "
                            f"the simulator's clock/RNG")
        elif isinstance(func, ast.Name):
            origin = self._from_aliases.get(func.id)
            if origin is not None:
                self._report(
                    node, "determinism",
                    f"call to {func.id}() (from {origin[0]} import "
                    f"{origin[1]}) — nondeterministic outside repro.sim")

    # -- asserts -----------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if self.assert_rule:
            self._report(
                node, "runtime-assert",
                "bare assert used for runtime validation — asserts "
                "vanish under python -O; raise an explicit exception")
        self.generic_visit(node)


def _attr_chain(node: ast.Attribute) -> tuple[str, ...]:
    parts: list[str] = [node.attr]
    obj = node.value
    while isinstance(obj, ast.Attribute):
        parts.append(obj.attr)
        obj = obj.value
    if isinstance(obj, ast.Name):
        parts.append(obj.id)
        return tuple(reversed(parts))
    return ()


def lint_module(tree: ast.Module, path: str, package: str, *,
                assert_rule: bool = True) -> list[Finding]:
    """Run the discipline rules over one parsed module."""
    linter = _ModuleLinter(path, package, assert_rule=assert_rule)
    linter.visit(tree)
    return linter.findings


@register
class DisciplineChecker(Checker):
    name = CHECKER_NAME
    description = ("determinism (no wall clock/RNG outside repro.sim), "
                   "package layering, no runtime asserts")

    def run(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            path = module.rel_display(project.repo_root)
            yield from lint_module(module.tree, path, module.package)
