"""Shared-state confinement checker.

The ROADMAP's sharded scatter-gather store is only possible if every
store mutation flows through :class:`SpanStore`'s public API — a single
``store._tail.append(...)`` from the agent or an analysis script pins
the in-memory representation forever.  This checker makes the
boundary structural:

* ``confinement`` — a module outside ``repro.server`` reads or writes a
  private attribute of :class:`SpanStore` or :class:`TraceGraphIndex`.

The protected attribute surface is *derived*, not hard-coded: it is the
set of ``self._name`` attributes the protected classes themselves
assign (``ClassInfo.private_attrs``), so adding a new internal field
extends the protection automatically.  Accesses through ``self``/
``cls`` are exempt — confinement is about reaching into *another
object's* internals, and same-named private state on unrelated classes
is their own business.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analyze.checkers import Checker, register
from tools.analyze.findings import Finding
from tools.analyze.project import Project

CHECKER_NAME = "confinement"

#: Class names whose private state is confined, and the sole package
#: allowed to touch it.
PROTECTED_CLASSES = ("SpanStore", "TraceGraphIndex")
OWNER_PACKAGE = "server"


def protected_attrs(project: Project) -> dict[str, str]:
    """private attribute name → owning class name, derived from the
    protected classes' own ``self._x = ...`` assignments."""
    surface: dict[str, str] = {}
    for cls in project.classes.values():
        if cls.name in PROTECTED_CLASSES \
                and cls.module.package == OWNER_PACKAGE:
            for attr in cls.private_attrs:
                surface[attr] = cls.name
    return surface


@register
class ConfinementChecker(Checker):
    name = CHECKER_NAME
    description = ("no module outside repro.server may touch SpanStore/"
                   "TraceGraphIndex private state")

    def run(self, project: Project) -> Iterator[Finding]:
        surface = protected_attrs(project)
        if not surface:
            return
        for module in project.modules.values():
            if module.package == OWNER_PACKAGE:
                continue
            path = module.rel_display(project.repo_root)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                owner = surface.get(node.attr)
                if owner is None:
                    continue
                base = node.value
                if isinstance(base, ast.Name) and base.id in ("self",
                                                              "cls"):
                    continue
                verb = ("writes" if isinstance(
                    node.ctx, (ast.Store, ast.Del)) else "reads")
                yield Finding(
                    path=path, line=node.lineno, checker=self.name,
                    rule="confinement",
                    message=(f"{verb} {owner} internal .{node.attr} "
                             f"from outside repro.server — go through "
                             f"the public store API"),
                    function=_enclosing_function(module, node))


def _enclosing_function(module, node: ast.AST) -> str:
    """Qualname of the function containing *node*, best-effort."""
    target_line = getattr(node, "lineno", 0)
    best = ""
    best_line = -1
    for info in module.functions.values():
        if info.node.lineno <= target_line and info.node.lineno > best_line:
            end = getattr(info.node, "end_lineno", info.node.lineno)
            if target_line <= end:
                best, best_line = info.qualname, info.node.lineno
    for cls in module.classes.values():
        for info in cls.methods.values():
            if info.node.lineno <= target_line \
                    and info.node.lineno > best_line:
                end = getattr(info.node, "end_lineno", info.node.lineno)
                if target_line <= end:
                    best, best_line = info.qualname, info.node.lineno
    return best
