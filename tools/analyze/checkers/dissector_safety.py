"""Dissector-safety checker.

DeepFlow's zero-code claim (§3.3.1) makes the dissectors the agent's
attack surface: they run on arbitrary wire bytes, so every byte access
must be provably in bounds or wrapped in a malformed-payload
containment scope, every loop over the payload must make provable
progress, and containment handlers must not swallow programming errors.

Rules (all severity ``error``):

* ``ds-unguarded-read`` — a scalar subscript on a bytes value that no
  dominating length check covers and no containment scope encloses.
* ``ds-unguarded-unpack`` — a ``struct.unpack`` whose buffer slice is
  not provably available (or whose width cannot match the format).
* ``ds-unguarded-decode`` — ``.decode(...)`` without ``errors=`` and
  without a containment scope: one bad byte raises
  ``UnicodeDecodeError`` out of the parser.
* ``ds-loop-progress`` — a ``while`` loop with a body path back to the
  header along which no loop variable provably advances: a crafted
  payload pins the agent.
* ``ds-broad-except`` — an ``except`` clause in ``repro.protocols``
  catching ``Exception``/``BaseException`` (or bare): containment must
  name the parse-error types (``ValueError``, ``IndexError``,
  ``struct.error``, ``UnicodeDecodeError``) so programming errors
  surface instead of reading as malformed payloads.

Scope: byte-access rules run over the call-graph closure of every
``ProtocolSpec`` subclass's ``parse``/``infer`` (the same registry the
fuzz suite enumerates — see :func:`dissector_entry_points`); the
broad-except rule covers the whole protocols package.  Guard proofs
come from the :mod:`tools.analyze.dataflow` guard domain: branch-edge
facts, ``and``/``or`` short-circuit facts inside one expression, slice
derivations, and unique-definition substitution (so ``offset = 10 +
client_len`` guarded by ``10 + client_len + 2 <= len(body)`` proves
``body[offset:offset+2]``).  Containment is a ``try`` whose handler
covers the hazard's exception type, checked in the function itself or —
for helpers — at every call site inside the closure (depth ≤ 4).
"""

from __future__ import annotations

import ast
import struct as _struct
from typing import Iterator, Optional

from tools.analyze.cfg import CFG
from tools.analyze.checkers import Checker, register
from tools.analyze.dataflow import (
    GuardAnalysis, Lin, ReachingDefs, facts_from_cond, lin_of,
    nonneg_producer, proves_len_ge, solve_forward)
from tools.analyze.findings import Finding
from tools.analyze.project import ClassInfo, FunctionInfo, Project

CHECKER_NAME = "dissector-safety"

PROTOCOLS_PACKAGE = "protocols"
SPEC_BASE_CLASS = "ProtocolSpec"
ENTRY_METHODS = ("parse", "infer")

#: hazard kind → exception names whose handler contains it.
COVERS = {
    "index": frozenset({"IndexError", "LookupError", "Exception",
                        "BaseException"}),
    "struct": frozenset({"struct.error", "Exception", "BaseException"}),
    "decode": frozenset({"UnicodeDecodeError", "UnicodeError",
                         "ValueError", "Exception", "BaseException"}),
}

BROAD_TYPES = frozenset({"Exception", "BaseException"})

_INTERPROC_DEPTH = 4


# ---------------------------------------------------------------------------
# Registry


def spec_classes(project: Project) -> list[ClassInfo]:
    """Every ``ProtocolSpec`` subclass defined in ``repro.protocols`` —
    the dissector registry this checker and the fuzz suite share."""
    base = None
    for cls in project.classes.values():
        if cls.name == SPEC_BASE_CLASS \
                and cls.module.package == PROTOCOLS_PACKAGE:
            base = cls
            break
    if base is None:
        return []
    return [cls for cls in project.subclasses_of(base.qualname)
            if cls.module.package == PROTOCOLS_PACKAGE]


def dissector_entry_points(project: Project) -> list[FunctionInfo]:
    """The ``parse``/``infer`` methods of every registered dissector."""
    entries: list[FunctionInfo] = []
    for cls in spec_classes(project):
        for method_name in ENTRY_METHODS:
            method = cls.methods.get(method_name)
            if method is not None:
                entries.append(method)
    return entries


# ---------------------------------------------------------------------------
# Per-function facts: bytes-typed names, containment ranges


def bytes_typed_names(func: ast.FunctionDef | ast.AsyncFunctionDef
                      ) -> set[str]:
    """Names holding ``bytes`` in *func*: annotated parameters, plus
    aliases and slices of already-bytes names (to a fixpoint)."""
    names: set[str] = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        ann = arg.annotation
        if isinstance(ann, ast.Name) and ann.id == "bytes":
            names.add(arg.arg)
    for _ in range(4):
        added = False
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            value = node.value
            derived = (
                (isinstance(value, ast.Name) and value.id in names)
                or (isinstance(value, ast.Subscript)
                    and isinstance(value.slice, ast.Slice)
                    and isinstance(value.value, ast.Name)
                    and value.value.id in names))
            if derived and target not in names:
                names.add(target)
                added = True
        if not added:
            break
    return names


def _handler_type_names(handler: ast.ExceptHandler) -> frozenset[str]:
    if handler.type is None:
        return frozenset({"BaseException"})
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: set[str] = set()
    for node in types:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name):
            names.add(f"{node.value.id}.{node.attr}")
    return frozenset(names)


def containment_ranges(func: ast.AST
                       ) -> list[tuple[int, int, frozenset[str]]]:
    """(first line, last line, caught names) for every ``try`` body."""
    ranges: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.body:
            continue
        start = node.body[0].lineno
        end = max(getattr(stmt, "end_lineno", stmt.lineno)
                  for stmt in node.body)
        caught: set[str] = set()
        for handler in node.handlers:
            caught.update(_handler_type_names(handler))
        ranges.append((start, end, frozenset(caught)))
    return ranges


# ---------------------------------------------------------------------------
# The checker


class _Hazard:
    __slots__ = ("kind", "line", "message")

    def __init__(self, kind: str, line: int, message: str):
        self.kind = kind
        self.line = line
        self.message = message


class _FunctionScan:
    """One closure function's hazard scan over its solved guard facts."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        self.node = info.node
        self.cfg = CFG(info.node)
        self.rdefs = ReachingDefs(info.node)
        self.bytes_names = bytes_typed_names(info.node)
        self.states = solve_forward(self.cfg, GuardAnalysis())
        self.ranges = containment_ranges(info.node)
        self.hazards: list[_Hazard] = []
        self._scan()

    # -- traversal ---------------------------------------------------------

    def _scan(self) -> None:
        analysis = GuardAnalysis()
        for block in self.cfg.blocks:
            state = self.states.get(block.id)
            if state is None:
                continue
            for stmt in block.stmts:
                for expr in _stmt_exprs(stmt):
                    self._scan_expr(expr, state)
                state = analysis.transfer_stmt(stmt, state)
            seen_conds: set[int] = set()
            for edge in block.edges:
                if edge.cond is not None \
                        and id(edge.cond) not in seen_conds:
                    seen_conds.add(id(edge.cond))
                    self._scan_expr(edge.cond, state)

    def _scan_expr(self, expr: ast.expr, state: frozenset) -> None:
        if isinstance(expr, ast.BoolOp):
            branch = isinstance(expr.op, ast.Or)
            # In ``A and B``, B runs with A known true; in ``A or B``,
            # B runs with A known false.
            acc = state
            for value in expr.values:
                self._scan_expr(value, acc)
                acc = acc | facts_from_cond(value, not branch)
            return
        if isinstance(expr, ast.IfExp):
            self._scan_expr(expr.test, state)
            self._scan_expr(expr.body,
                            state | facts_from_cond(expr.test, True))
            self._scan_expr(expr.orelse,
                            state | facts_from_cond(expr.test, False))
            return
        if isinstance(expr, ast.Subscript):
            self._check_subscript(expr, state)
        elif isinstance(expr, ast.Call):
            self._check_call(expr, state)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, state)
            elif isinstance(child, ast.comprehension):
                self._scan_expr(child.iter, state)
                for cond in child.ifs:
                    self._scan_expr(cond, state)

    # -- hazard checks -----------------------------------------------------

    def _check_subscript(self, node: ast.Subscript,
                         state: frozenset) -> None:
        if isinstance(node.slice, ast.Slice):
            return  # slices clamp; they cannot raise
        if not isinstance(node.value, ast.Name) \
                or node.value.id not in self.bytes_names:
            return
        if not isinstance(node.ctx, ast.Load):
            return
        base = node.value.id
        idx = lin_of(node.slice)
        proven = False
        if idx is not None:
            if idx.is_const and idx.const < 0:
                proven = proves_len_ge(state, base, Lin(-idx.const),
                                       self.rdefs)
            else:
                proven = proves_len_ge(state, base, idx + Lin(1),
                                       self.rdefs)
        if not proven:
            self.hazards.append(_Hazard(
                "index", node.lineno,
                f"byte read {base}[...] has no dominating length "
                f"guard and no containment scope"))

    def _check_call(self, node: ast.Call, state: frozenset) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "decode":
            if not any(kw.arg == "errors" for kw in node.keywords):
                self.hazards.append(_Hazard(
                    "decode", node.lineno,
                    ".decode() without errors= can raise "
                    "UnicodeDecodeError on arbitrary payload bytes"))
            return
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("unpack", "unpack_from")
                and isinstance(func.value, ast.Name)
                and func.value.id == "struct"):
            return
        if not (node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and len(node.args) >= 2):
            return
        try:
            size = _struct.calcsize(node.args[0].value)
        except _struct.error:
            return
        if func.attr == "unpack_from":
            self._check_unpack_from(node, state, size)
            return
        arg = node.args[1]
        if isinstance(arg, ast.Subscript) \
                and isinstance(arg.slice, ast.Slice) \
                and isinstance(arg.value, ast.Name):
            self._check_unpack_slice(node, arg, state, size)
            return
        # A non-slice buffer needs an exact-length proof the guard
        # domain cannot express; require containment.
        self.hazards.append(_Hazard(
            "struct", node.lineno,
            f"struct.unpack({node.args[0].value!r}, ...) on a buffer "
            f"of unproven length"))

    def _check_unpack_slice(self, node: ast.Call, arg: ast.Subscript,
                            state: frozenset, size: int) -> None:
        base = arg.value.id
        sl = arg.slice
        lower = lin_of(sl.lower) if sl.lower is not None else Lin(0)
        upper = lin_of(sl.upper) if sl.upper is not None else None
        fmt = node.args[0].value
        if lower is None or upper is None:
            self.hazards.append(_Hazard(
                "struct", node.lineno,
                f"struct.unpack({fmt!r}, {base}[...]) slice bounds "
                f"are not analyzable; guard or contain it"))
            return
        width = upper - lower
        if width.is_const and width.const != size:
            # The slice can never produce calcsize(fmt) bytes even on a
            # long payload: an always-wrong width, not a guard issue.
            self.hazards.append(_Hazard(
                "struct", node.lineno,
                f"struct.unpack({fmt!r}) needs {size} bytes but the "
                f"slice width is {width.const}"))
            return
        if not proves_len_ge(state, base, upper, self.rdefs):
            self.hazards.append(_Hazard(
                "struct", node.lineno,
                f"struct.unpack({fmt!r}, {base}[...]) may see a short "
                f"slice: len({base}) >= {upper} is not proven"))

    def _check_unpack_from(self, node: ast.Call, state: frozenset,
                           size: int) -> None:
        offset = lin_of(node.args[2]) if len(node.args) >= 3 else Lin(0)
        fmt = node.args[0].value
        buf = node.args[1]
        if offset is None or not isinstance(buf, ast.Name):
            self.hazards.append(_Hazard(
                "struct", node.lineno,
                f"struct.unpack_from({fmt!r}, ...) bounds are not "
                f"analyzable; guard or contain it"))
            return
        if not proves_len_ge(state, buf.id, offset + Lin(size),
                             self.rdefs):
            self.hazards.append(_Hazard(
                "struct", node.lineno,
                f"struct.unpack_from({fmt!r}, {buf.id}, ...) is not "
                f"proven to have {size} bytes available"))

    # -- loop progress -----------------------------------------------------

    def loop_findings(self) -> Iterator[_Hazard]:
        nonneg = self._function_nonneg_names()
        for loop in self.cfg.loops:
            if not loop.is_while:
                continue  # `for` over a finite iterable terminates
            test = loop.node.test
            infinite = (isinstance(test, ast.Constant)
                        and test.value is True)
            test_names: Optional[set[str]] = None
            if not infinite:
                test_names = {n.id for n in ast.walk(test)
                              if isinstance(n, ast.Name)}
            progress_blocks = {
                block_id for block_id in loop.body_blocks
                if any(self._is_progress(stmt, test_names, nonneg)
                       for stmt in self.cfg.blocks[block_id].stmts)}
            if self._progress_free_cycle(loop, progress_blocks):
                yield _Hazard(
                    "loop", loop.node.lineno,
                    "while loop has an iteration path that provably "
                    "advances no loop variable — a crafted payload "
                    "can pin the parser")

    def _function_nonneg_names(self) -> set[str]:
        """Names every one of whose assignments provably yields a
        non-negative int (bytes-subscript reads count: 0..255)."""
        producers: dict[str, bool] = {}
        for node in ast.walk(self.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            value = node.value
            ok = nonneg_producer(value) or (
                isinstance(value, ast.Subscript)
                and not isinstance(value.slice, ast.Slice)
                and isinstance(value.value, ast.Name)
                and value.value.id in self.bytes_names)
            producers[name] = producers.get(name, True) and ok
        return {name for name, ok in producers.items() if ok}

    def _is_progress(self, stmt: ast.stmt,
                     test_names: Optional[set[str]],
                     nonneg: set[str]) -> bool:
        if not (isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.op, (ast.Add, ast.Sub))):
            return False
        if test_names is not None and stmt.target.id not in test_names:
            return False
        lin = lin_of(stmt.value)
        if lin is None or lin.const < 1:
            return False
        return all(name in nonneg for name in lin.names())

    def _progress_free_cycle(self, loop, progress_blocks: set[int]
                             ) -> bool:
        """Can the body reach a back edge without passing progress?"""
        header_id = loop.header.id
        entry_ids = [edge.target.id for edge in loop.header.edges
                     if edge.target.id in loop.body_blocks]
        seen: set[int] = set()
        stack = [bid for bid in entry_ids if bid not in progress_blocks]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            for edge in self.cfg.blocks[bid].edges:
                target = edge.target.id
                if target == header_id:
                    return True
                if target in loop.body_blocks \
                        and target not in progress_blocks:
                    stack.append(target)
        return False


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions to hazard-scan for *stmt*.  Compound statements yield
    only their header expressions: their bodies live in other CFG blocks
    (and ``if``/``while`` tests arrive via edge conditions)."""
    if isinstance(stmt, (ast.While, ast.If)):
        return  # test is scanned from the edge conditions
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


@register
class DissectorSafetyChecker(Checker):
    name = CHECKER_NAME
    description = ("provable byte-access guards, loop progress, and "
                   "narrow containment in repro.protocols dissectors")

    def run(self, project: Project) -> Iterator[Finding]:
        entries = dissector_entry_points(project)
        closure = project.reachable_from(
            {entry.qualname for entry in entries})
        scans: dict[str, _FunctionScan] = {}
        for qualname in sorted(closure):
            info = project.functions.get(qualname)
            if info is None or info.module.package != PROTOCOLS_PACKAGE:
                continue
            scans[qualname] = _FunctionScan(info)
        contained_cache: dict[tuple[str, str], bool] = {}
        for qualname, scan in scans.items():
            info = scan.info
            path = info.module.rel_display(project.repo_root)
            for hazard in scan.hazards:
                if self._contained(project, scans, contained_cache,
                                   qualname, hazard.kind, hazard.line,
                                   _INTERPROC_DEPTH):
                    continue
                yield Finding(
                    path=path, line=hazard.line, checker=self.name,
                    rule=f"ds-unguarded-{_RULE_OF[hazard.kind]}",
                    message=hazard.message, function=qualname)
            for hazard in scan.loop_findings():
                yield Finding(
                    path=path, line=hazard.line, checker=self.name,
                    rule="ds-loop-progress", message=hazard.message,
                    function=qualname)
        yield from self._broad_excepts(project)

    # -- containment -------------------------------------------------------

    def _contained(self, project: Project,
                   scans: dict[str, "_FunctionScan"],
                   cache: dict[tuple[str, str], bool],
                   qualname: str, kind: str, line: int,
                   depth: int) -> bool:
        scan = scans.get(qualname)
        if scan is not None and _locally_contained(scan.ranges, kind,
                                                   line):
            return True
        if depth <= 0:
            return False
        key = (qualname, kind)
        if key in cache:
            return cache[key]
        cache[key] = False  # break call cycles conservatively
        sites = project.call_sites.get(qualname, ())
        in_closure = [site for site in sites
                      if site[0].qualname in scans]
        if not in_closure:
            return False
        contained = all(
            _locally_contained(scans[caller.qualname].ranges, kind,
                               call.lineno)
            or self._contained(project, scans, cache, caller.qualname,
                               kind, call.lineno, depth - 1)
            for caller, call in in_closure)
        cache[key] = contained
        return contained

    # -- broad handlers ----------------------------------------------------

    def _broad_excepts(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            if module.package != PROTOCOLS_PACKAGE:
                continue
            path = module.rel_display(project.repo_root)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = _handler_type_names(node)
                if node.type is None or (caught & BROAD_TYPES):
                    what = ("bare except" if node.type is None
                            else "except "
                                 + "/".join(sorted(caught & BROAD_TYPES)))
                    yield Finding(
                        path=path, line=node.lineno, checker=self.name,
                        rule="ds-broad-except",
                        message=(f"{what} swallows non-parse errors — "
                                 f"catch the parse-error types "
                                 f"(ValueError/IndexError/struct.error/"
                                 f"UnicodeDecodeError)"))


_RULE_OF = {"index": "read", "struct": "unpack", "decode": "decode"}


def _locally_contained(ranges, kind: str, line: int) -> bool:
    covers = COVERS[kind]
    return any(start <= line <= end and (caught & covers)
               for start, end, caught in ranges)
