"""Per-function control-flow graphs.

Structural CFG construction over the Python AST: one :class:`Block` is
a maximal straight-line statement run; edges carry the branch condition
they were taken under (``cond``/``branch``) so flow analyses can turn
``if len(payload) < 12: return None`` into a dominating guard fact on
the fall-through path.

Loops are recorded during construction (:class:`LoopInfo`), giving
checkers the header, the body block set, and the back-edge sources
without a separate dominator computation.  ``try`` bodies get
conservative edges from every body block to every handler entry —
an exception may occur anywhere — which makes facts at handler entries
the meet over the whole protected region.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Edge:
    """One CFG edge, optionally annotated with a branch condition."""

    target: "Block"
    cond: Optional[ast.expr] = None    #: test expression, when a branch edge
    branch: Optional[bool] = None      #: True/False arm of ``cond``


class Block:
    """A straight-line run of statements."""

    __slots__ = ("id", "stmts", "edges")

    def __init__(self, bid: int):
        self.id = bid
        self.stmts: list[ast.stmt] = []
        self.edges: list[Edge] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block {self.id} stmts={len(self.stmts)}>"


@dataclass
class LoopInfo:
    """One ``while``/``for`` loop's structure."""

    node: ast.stmt                 #: the While or For AST node
    header: Block
    body_blocks: set[int] = field(default_factory=set)

    @property
    def is_while(self) -> bool:
        return isinstance(self.node, ast.While)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.loops: list[LoopInfo] = []
        end = self._build_body(func.body, self.entry,
                               loop_stack=[], finally_stack=[])
        if end is not None:
            end.edges.append(Edge(self.exit))

    # -- construction ------------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _build_body(self, stmts: list[ast.stmt], current: Optional[Block],
                    loop_stack: list[tuple[Block, Block]],
                    finally_stack: list[list[ast.stmt]]
                    ) -> Optional[Block]:
        """Append *stmts* starting at *current*; returns the open block
        at the end, or None when every path terminated."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise; ignore.
                return None
            if isinstance(stmt, ast.If):
                current = self._build_if(stmt, current, loop_stack,
                                         finally_stack)
            elif isinstance(stmt, ast.While):
                current = self._build_while(stmt, current, loop_stack,
                                            finally_stack)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                current = self._build_for(stmt, current, loop_stack,
                                          finally_stack)
            elif isinstance(stmt, ast.Try):
                current = self._build_try(stmt, current, loop_stack,
                                          finally_stack)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current.stmts.append(stmt)
                current = self._build_body(stmt.body, current, loop_stack,
                                           finally_stack)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.stmts.append(stmt)
                current.edges.append(Edge(self.exit))
                current = None
            elif isinstance(stmt, ast.Break):
                current.stmts.append(stmt)
                if loop_stack:
                    current.edges.append(Edge(loop_stack[-1][1]))
                current = None
            elif isinstance(stmt, ast.Continue):
                current.stmts.append(stmt)
                if loop_stack:
                    current.edges.append(Edge(loop_stack[-1][0]))
                current = None
            else:
                current.stmts.append(stmt)
        return current

    def _build_if(self, stmt: ast.If, current: Block,
                  loop_stack, finally_stack) -> Optional[Block]:
        then_entry = self._new_block()
        current.edges.append(Edge(then_entry, cond=stmt.test, branch=True))
        then_end = self._build_body(stmt.body, then_entry, loop_stack,
                                    finally_stack)
        if stmt.orelse:
            else_entry = self._new_block()
            current.edges.append(
                Edge(else_entry, cond=stmt.test, branch=False))
            else_end = self._build_body(stmt.orelse, else_entry,
                                        loop_stack, finally_stack)
        else:
            else_end = None
        join: Optional[Block] = None
        if then_end is not None or else_end is not None or not stmt.orelse:
            join = self._new_block()
            if then_end is not None:
                then_end.edges.append(Edge(join))
            if stmt.orelse:
                if else_end is not None:
                    else_end.edges.append(Edge(join))
            else:
                current.edges.append(Edge(join, cond=stmt.test,
                                          branch=False))
        return join

    def _build_while(self, stmt: ast.While, current: Block,
                     loop_stack, finally_stack) -> Optional[Block]:
        header = self._new_block()
        header.stmts.append(stmt)   # marker: condition evaluation
        current.edges.append(Edge(header))
        after = self._new_block()
        body_entry = self._new_block()
        infinite = (isinstance(stmt.test, ast.Constant)
                    and stmt.test.value is True)
        header.edges.append(Edge(body_entry, cond=stmt.test, branch=True))
        if not infinite:
            header.edges.append(Edge(after, cond=stmt.test, branch=False))
        first_body_block = len(self.blocks) - 1
        body_end = self._build_body(stmt.body, body_entry,
                                    loop_stack + [(header, after)],
                                    finally_stack)
        if body_end is not None:
            body_end.edges.append(Edge(header))
        loop = LoopInfo(node=stmt, header=header)
        loop.body_blocks = {b.id for b in self.blocks[first_body_block:]
                            if b.id != after.id}
        self.loops.append(loop)
        if stmt.orelse:
            after = self._build_body(stmt.orelse, after, loop_stack,
                                     finally_stack) or self._new_block()
        return after

    def _build_for(self, stmt: ast.For | ast.AsyncFor, current: Block,
                   loop_stack, finally_stack) -> Optional[Block]:
        header = self._new_block()
        header.stmts.append(stmt)   # marker: iterator advance + bind
        current.edges.append(Edge(header))
        after = self._new_block()
        body_entry = self._new_block()
        header.edges.append(Edge(body_entry))
        header.edges.append(Edge(after))
        first_body_block = len(self.blocks) - 1
        body_end = self._build_body(stmt.body, body_entry,
                                    loop_stack + [(header, after)],
                                    finally_stack)
        if body_end is not None:
            body_end.edges.append(Edge(header))
        loop = LoopInfo(node=stmt, header=header)
        loop.body_blocks = {b.id for b in self.blocks[first_body_block:]
                            if b.id != after.id}
        self.loops.append(loop)
        if stmt.orelse:
            after = self._build_body(stmt.orelse, after, loop_stack,
                                     finally_stack) or self._new_block()
        return after

    def _build_try(self, stmt: ast.Try, current: Block,
                   loop_stack, finally_stack) -> Optional[Block]:
        body_entry = self._new_block()
        current.edges.append(Edge(body_entry))
        first_body_block = body_entry.id
        body_end = self._build_body(stmt.body, body_entry, loop_stack,
                                    finally_stack)
        body_blocks = [b for b in self.blocks[first_body_block:]
                       if b.id >= first_body_block]
        join = self._new_block()
        # An exception may surface anywhere in the protected region:
        # every body block feeds every handler entry.
        for handler in stmt.handlers:
            handler_entry = self._new_block()
            current.edges.append(Edge(handler_entry))
            for block in body_blocks:
                block.edges.append(Edge(handler_entry))
            handler_end = self._build_body(handler.body, handler_entry,
                                           loop_stack, finally_stack)
            if handler_end is not None:
                handler_end.edges.append(Edge(join))
        if body_end is not None:
            if stmt.orelse:
                body_end = self._build_body(stmt.orelse, body_end,
                                            loop_stack, finally_stack)
            if body_end is not None:
                body_end.edges.append(Edge(join))
        if stmt.finalbody:
            join = self._build_body(stmt.finalbody, join, loop_stack,
                                    finally_stack) or self._new_block()
        return join

    # -- queries -----------------------------------------------------------

    def predecessors(self) -> dict[int, list[tuple[Block, Edge]]]:
        """block id → [(pred block, edge into this block)]."""
        preds: dict[int, list[tuple[Block, Edge]]] = {
            b.id: [] for b in self.blocks}
        for block in self.blocks:
            for edge in block.edges:
                preds[edge.target.id].append((block, edge))
        return preds
