"""``tools.analyze`` — the repo's static-analysis framework.

Multi-pass pipeline (DESIGN.md §10):

1. **Project model** (:mod:`tools.analyze.project`) — parse every
   module under the root, build symbol tables, the import graph, and an
   approximate call graph.
2. **Per-function analyses** (:mod:`tools.analyze.cfg`,
   :mod:`tools.analyze.dataflow`) — CFGs with condition-annotated
   edges, reaching definitions, and the guard-fact abstract domain.
3. **Checkers** (:mod:`tools.analyze.checkers`) — plugins over the
   model producing :class:`~tools.analyze.findings.Finding` objects.
4. **Reporting** (:mod:`tools.analyze.findings`) — suppression
   (``# lint: ok``), the committed baseline, and the JSON report CI
   uploads.

Run it with ``python -m tools.analyze src/repro``.
"""

from __future__ import annotations

import time  # lint: ok — wall-clock timing of the analyzer itself
from pathlib import Path
from typing import Optional

from tools.analyze.checkers import iter_checkers
from tools.analyze.findings import Baseline, Finding, Report, suppressed
from tools.analyze.project import Project

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def run_analysis(root: Path = DEFAULT_ROOT,
                 checker_names: Optional[list[str]] = None,
                 baseline_path: Optional[Path] = DEFAULT_BASELINE,
                 repo_root: Optional[Path] = REPO_ROOT) -> Report:
    """Run the framework over *root* and return the report.

    ``report.findings`` holds the new (unbaselined, unsuppressed)
    findings; ``report.exit_code`` is nonzero iff any exist.
    """
    started = time.perf_counter()
    root = Path(root)
    if repo_root is not None:
        try:
            root.relative_to(repo_root)
        except ValueError:
            repo_root = None  # analyzing a tree outside the repo
    project = Project(root, repo_root=repo_root)
    checkers = list(iter_checkers(checker_names))
    raw: list[Finding] = []
    for checker in checkers:
        raw.extend(checker.run(project))
    source_map = {module.rel_display(repo_root): module.source_lines
                  for module in project.modules.values()}
    kept: list[Finding] = []
    suppressed_count = 0
    for finding in raw:
        lines = source_map.get(finding.path)
        if lines is not None and suppressed(lines, finding.line):
            suppressed_count += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    baseline = (Baseline.load(baseline_path)
                if baseline_path is not None else Baseline())
    new, baselined = baseline.split(kept)
    return Report(
        root=str(root),
        checkers=[checker.name for checker in checkers],
        findings=new,
        baselined=baselined,
        suppressed_count=suppressed_count,
        modules_analyzed=len(project.modules),
        elapsed_s=time.perf_counter() - started,
    )
