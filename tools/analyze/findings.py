"""Findings model: severities, suppression, baseline, JSON report.

A :class:`Finding` is one checker hit.  Its identity for baseline
purposes is the :meth:`Finding.fingerprint` — deliberately
line-number-free so that unrelated edits above a baselined finding do
not resurrect it.  The committed baseline
(``tools/analyze/baseline.json``) is the set of fingerprints the repo
has accepted; CI fails on any finding outside it.  The repo's policy is
that the baseline stays *empty* — it exists as the escape hatch for
landing the framework ahead of a fix, not as a parking lot.

Per-line suppression reuses the pre-existing lint marker: a trailing
``# lint: ok`` comment drops every finding on that line (reserved for
code the analyses cannot classify correctly; say why next to it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

#: Severity levels, in increasing order of concern.  ``error`` findings
#: are invariant violations (crashes, confinement breaks); ``warn`` are
#: discipline regressions (hot-path waste); ``info`` is advisory.
SEVERITIES = ("info", "warn", "error")

#: The suppression marker, shared with the original ``lint_repro`` tool
#: so one annotation syntax serves every static check in the repo.
SUPPRESS_MARKER = "lint: ok"


@dataclass(frozen=True)
class Finding:
    """One static-analysis hit."""

    path: str          #: file path as reported (relative to repo root in CI)
    line: int          #: 1-based line number
    checker: str       #: checker name, e.g. "dissector-safety"
    rule: str          #: rule id within the checker, e.g. "ds-unguarded-read"
    message: str       #: human-readable explanation
    severity: str = "error"
    function: str = ""  #: enclosing function qualname, when known

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: [{self.checker}/{self.rule}] "
                f"{self.message}")

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline."""
        return f"{self.path}::{self.rule}::{self.function}::{self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "checker": self.checker,
            "rule": self.rule,
            "severity": self.severity,
            "function": self.function,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


def suppressed(source_lines: list[str], line: int) -> bool:
    """Whether *line* (1-based) carries the suppression marker."""
    if 1 <= line <= len(source_lines):
        return SUPPRESS_MARKER in source_lines[line - 1]
    return False


@dataclass
class Baseline:
    """The committed set of accepted finding fingerprints."""

    fingerprints: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).exists():
            return cls()
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(fingerprints=set(data.get("findings", [])))

    def save(self, path: Path) -> None:
        payload = {"version": 1, "findings": sorted(self.fingerprints)}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    def split(self, findings: Iterable[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined) findings."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if finding.fingerprint() in self.fingerprints
             else new).append(finding)
        return new, old


@dataclass
class Report:
    """One analysis run's output, serializable for the CI artifact."""

    root: str
    checkers: list[str]
    findings: list[Finding]
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    modules_analyzed: int = 0
    elapsed_s: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> dict:
        by_severity: dict[str, int] = {s: 0 for s in SEVERITIES}
        for finding in self.findings:
            by_severity[finding.severity] += 1
        return {
            "root": self.root,
            "checkers": self.checkers,
            "modules_analyzed": self.modules_analyzed,
            "elapsed_s": round(self.elapsed_s, 3),
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed_count,
                "by_severity": by_severity,
            },
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
        }

    def write_json(self, path: Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8")
