"""CLI: ``python -m tools.analyze [root] [options]``.

Exit codes: 0 — no unbaselined findings; 1 — findings; 2 — bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.analyze import (
    DEFAULT_BASELINE, DEFAULT_ROOT, run_analysis)
from tools.analyze.checkers import REGISTRY, load_builtin_checkers
from tools.analyze.findings import Baseline


def main(argv: list[str]) -> int:
    load_builtin_checkers()
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Static analysis over the repro package.")
    parser.add_argument("root", nargs="?", default=str(DEFAULT_ROOT),
                        help="package tree to analyze (default: "
                             "src/repro)")
    parser.add_argument("--checkers", metavar="NAMES",
                        help="comma-separated subset to run "
                             f"(known: {', '.join(sorted(REGISTRY))})")
    parser.add_argument("--json", metavar="PATH", type=Path,
                        help="write the full JSON report here")
    parser.add_argument("--baseline", metavar="PATH", type=Path,
                        default=DEFAULT_BASELINE,
                        help="baseline file (default: committed "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report everything")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings into --baseline "
                             "and exit 0")
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        print(f"analyze: no such directory: {root}", file=sys.stderr)
        return 2
    checker_names = (args.checkers.split(",") if args.checkers
                     else None)
    try:
        report = run_analysis(
            root=root, checker_names=checker_names,
            baseline_path=None if args.no_baseline else args.baseline)
    except KeyError as exc:
        print(f"analyze: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline = Baseline.load(args.baseline)
        baseline.fingerprints.update(
            finding.fingerprint() for finding in report.findings)
        baseline.save(args.baseline)
        print(f"analyze: baselined {len(report.findings)} finding(s) "
              f"into {args.baseline}")
        return 0

    for finding in report.findings:
        print(finding)
    if args.json is not None:
        report.write_json(args.json)
    summary = (f"analyze: {len(report.findings)} finding(s), "
               f"{len(report.baselined)} baselined, "
               f"{report.suppressed_count} suppressed — "
               f"{report.modules_analyzed} modules, "
               f"{len(report.checkers)} checkers, "
               f"{report.elapsed_s:.2f}s")
    print(summary, file=sys.stderr if report.findings else sys.stdout)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
