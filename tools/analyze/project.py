"""Project model: modules, symbol tables, import graph, call graph.

Pass 1 parses every ``*.py`` under the analysis root into a
:class:`Module`.  Pass 2 builds per-module symbol tables — top-level
functions, classes with their methods, and each class's *private
attribute surface* (every ``self._name`` its own methods assign).
Pass 3 resolves project-internal imports into an import graph and an
approximate call graph.

The call graph is name-based and deliberately modest: it resolves
``f(...)`` to a module-level function (local or from-imported),
``self.m(...)`` / ``cls.m(...)`` within the enclosing class (including
project-local base classes), ``mod.f(...)`` through module imports, and
``ClassName(...)`` to ``__init__``.  Calls through dynamic dispatch
(dicts of callables, locals aliasing methods) are invisible — checkers
that need those edges seed them explicitly.  Unresolved calls produce
no edge, which every consumer treats conservatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str                  #: "repro.protocols.dns._decode_qname"
    name: str
    node: ast.AST                  #: FunctionDef | AsyncFunctionDef
    module: "Module"
    class_name: Optional[str] = None   #: unqualified, for methods

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    qualname: str
    name: str
    node: ast.ClassDef
    module: "Module"
    #: raw base-class expressions, dotted ("base.ProtocolSpec") or plain.
    base_names: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: every attribute name assigned as ``self.<name> = ...`` in a method
    #: (or annotated at class level); the class's state surface.
    self_attrs: set[str] = field(default_factory=set)

    @property
    def private_attrs(self) -> set[str]:
        return {a for a in self.self_attrs
                if a.startswith("_") and not a.startswith("__")}


@dataclass
class Module:
    """One parsed source file."""

    path: Path
    name: str                      #: dotted module name, e.g. "repro.agent.agent"
    package: str                   #: first component under the root ("" at root)
    tree: ast.Module
    source_lines: list[str]
    #: local alias → imported module dotted name (``import x.y as z``)
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local alias → (module dotted name, original symbol) for
    #: ``from x import y [as z]``
    symbol_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def rel_display(self, repo_root: Optional[Path]) -> str:
        if repo_root is not None:
            try:
                return str(self.path.relative_to(repo_root))
            except ValueError:
                pass
        return str(self.path)


class Project:
    """Every module under one analysis root, with cross-module graphs."""

    def __init__(self, root: Path, repo_root: Optional[Path] = None):
        self.root = Path(root)
        self.repo_root = repo_root
        #: top package name the root directory maps to ("repro").
        self.top_package = self.root.name
        self.modules: dict[str, Module] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: module name → project-internal module names it imports.
        self.import_graph: dict[str, set[str]] = {}
        #: caller qualname → {callee qualname}.
        self.call_graph: dict[str, set[str]] = {}
        #: callee qualname → [(caller FunctionInfo, ast.Call node)].
        self.call_sites: dict[str, list[tuple[FunctionInfo, ast.Call]]] = {}
        self._load()
        self._link()

    # -- pass 1+2: parse and build symbol tables --------------------------

    def _load(self) -> None:
        for file_path in sorted(self.root.rglob("*.py")):
            rel = file_path.relative_to(self.root)
            parts = list(rel.parts)
            package = parts[0] if len(parts) > 1 else ""
            dotted = [self.top_package] + parts[:-1]
            if parts[-1] != "__init__.py":
                dotted.append(parts[-1][:-3])
            name = ".".join(dotted)
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:
                # Surfaced by the engine as a finding; skip the module.
                continue
            module = Module(path=file_path, name=name, package=package,
                            tree=tree, source_lines=source.splitlines())
            self._build_symbols(module)
            self.modules[name] = module

    def _build_symbols(self, module: Module) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{node.name}",
                    name=node.name, node=node, module=module)
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._build_class(module, node)
        # Function-level imports matter for layering; record them too.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) \
                    and node not in module.tree.body:
                self._record_import(module, node)

    def _build_class(self, module: Module, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{module.name}.{node.name}", name=node.name,
            node=node, module=module,
            base_names=[_dotted(b) for b in node.bases if _dotted(b)])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{info.qualname}.{item.name}",
                    name=item.name, node=item, module=module,
                    class_name=node.name)
                info.methods[item.name] = method
                self.functions[method.qualname] = method
                for sub in ast.walk(item):
                    if isinstance(sub, ast.Attribute) \
                            and isinstance(sub.ctx, ast.Store) \
                            and isinstance(sub.value, ast.Name) \
                            and sub.value.id == "self":
                        info.self_attrs.add(sub.attr)
            elif isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                info.self_attrs.add(item.target.id)
        module.classes[node.name] = info
        self.classes[info.qualname] = info

    def _record_import(self, module: Module,
                       node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.module_aliases[alias.asname
                                      or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    module.module_aliases[alias.asname] = alias.name
        else:
            mod = node.module or ""
            for alias in node.names:
                module.symbol_aliases[alias.asname or alias.name] = \
                    (mod, alias.name)

    # -- pass 3: graphs ----------------------------------------------------

    def _link(self) -> None:
        for module in self.modules.values():
            imported: set[str] = set()
            for target in module.module_aliases.values():
                if target in self.modules:
                    imported.add(target)
            for mod, symbol in module.symbol_aliases.values():
                if mod in self.modules:
                    imported.add(mod)
                if f"{mod}.{symbol}" in self.modules:
                    imported.add(f"{mod}.{symbol}")
            self.import_graph[module.name] = imported
        for function in list(self.functions.values()):
            self._link_calls(function)

    def _link_calls(self, function: FunctionInfo) -> None:
        edges = self.call_graph.setdefault(function.qualname, set())
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_call(function, node)
            if callee is not None:
                edges.add(callee.qualname)
                self.call_sites.setdefault(callee.qualname, []).append(
                    (function, node))

    def resolve_call(self, caller: FunctionInfo,
                     node: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call expression to a project
        function; None when the target is dynamic or external."""
        func = node.func
        module = caller.module
        if isinstance(func, ast.Name):
            name = func.id
            # Local class constructor → __init__.
            cls = module.classes.get(name)
            if cls is None:
                cls = self._imported_class(module, name)
            if cls is not None:
                return cls.methods.get("__init__")
            target = module.functions.get(name)
            if target is not None:
                return target
            origin = module.symbol_aliases.get(name)
            if origin is not None:
                mod, symbol = origin
                target_module = self.modules.get(mod)
                if target_module is not None:
                    return target_module.functions.get(symbol)
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and caller.class_name:
                    cls = module.classes.get(caller.class_name)
                    return self._resolve_method(cls, func.attr)
                # mod.f(...) through an imported project module.
                target_mod = self._imported_module(module, base.id)
                if target_mod is not None:
                    target = target_mod.functions.get(func.attr)
                    if target is not None:
                        return target
                    cls = target_mod.classes.get(func.attr)
                    if cls is not None:
                        return cls.methods.get("__init__")
                # ClassName.method(...) on a local or imported class.
                cls = module.classes.get(base.id) \
                    or self._imported_class(module, base.id)
                if cls is not None:
                    return self._resolve_method(cls, func.attr)
        return None

    def _resolve_method(self, cls: Optional[ClassInfo],
                        name: str) -> Optional[FunctionInfo]:
        seen = 0
        while cls is not None and seen < 8:
            method = cls.methods.get(name)
            if method is not None:
                return method
            cls = self._base_class(cls)
            seen += 1
        return None

    def _base_class(self, cls: ClassInfo) -> Optional[ClassInfo]:
        for base_name in cls.base_names:
            resolved = self.resolve_class_name(cls.module, base_name)
            if resolved is not None:
                return resolved
        return None

    def _imported_module(self, module: Module,
                         alias: str) -> Optional[Module]:
        dotted = module.module_aliases.get(alias)
        if dotted is not None and dotted in self.modules:
            return self.modules[dotted]
        origin = module.symbol_aliases.get(alias)
        if origin is not None:
            mod, symbol = origin
            return self.modules.get(f"{mod}.{symbol}")
        return None

    def _imported_class(self, module: Module,
                        name: str) -> Optional[ClassInfo]:
        origin = module.symbol_aliases.get(name)
        if origin is not None:
            mod, symbol = origin
            target_module = self.modules.get(mod)
            if target_module is not None:
                return target_module.classes.get(symbol)
        return None

    def resolve_class_name(self, module: Module,
                           dotted: str) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class reference in *module*."""
        parts = dotted.split(".")
        if len(parts) == 1:
            cls = module.classes.get(parts[0])
            if cls is not None:
                return cls
            return self._imported_class(module, parts[0])
        target_mod = self._imported_module(module, parts[0])
        if target_mod is not None and len(parts) == 2:
            return target_mod.classes.get(parts[1])
        return None

    # -- queries -----------------------------------------------------------

    def subclasses_of(self, qualname: str) -> list[ClassInfo]:
        """Every project class transitively deriving from *qualname*."""
        out: list[ClassInfo] = []
        for cls in self.classes.values():
            current: Optional[ClassInfo] = cls
            depth = 0
            while current is not None and depth < 8:
                base = self._base_class(current)
                if base is not None and base.qualname == qualname:
                    out.append(cls)
                    break
                current = base
                depth += 1
        return out

    def reachable_from(self, seeds: set[str]) -> set[str]:
        """Transitive call-graph closure from *seeds* (qualnames)."""
        seen = set(seed for seed in seeds if seed in self.functions)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for callee in self.call_graph.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


def _dotted(node: ast.expr) -> str:
    """Dotted name of an expression, or "" when not a name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
