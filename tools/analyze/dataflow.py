"""Intraprocedural dataflow: worklist solver + two built-in domains.

The solver (:func:`solve_forward`) runs any :class:`ForwardAnalysis`
to a fixpoint over a :class:`~tools.analyze.cfg.CFG`.  Two domains ship
with the framework:

* :class:`ReachingDefs` — name → set of assignment sites; checkers use
  the *unique definition* query to substitute a variable's defining
  expression into symbolic comparisons (``offset = 10 + client_len``).
* :class:`GuardAnalysis` — the abstract domain behind dissector safety:
  sets of *guard facts* ``len(x) >= <linear expr>`` and ``name >= 0``,
  generated from branch conditions and slice derivations, killed by
  reassignment, met by set intersection.

Linear symbolic expressions (:class:`Lin`) are ``const + Σ coeff·name``
with a tiny normalizer over ``+``/``-``/names/ints.  They are exactly
expressive enough for wire-format arithmetic (``offset + 9``,
``10 + client_len + 2``) without becoming a real SMT problem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from tools.analyze.cfg import CFG, Block, Edge

# ---------------------------------------------------------------------------
# Linear symbolic expressions


@dataclass(frozen=True)
class Lin:
    """``const + Σ coeff·name`` over integer-valued names."""

    const: int = 0
    terms: frozenset[tuple[str, int]] = frozenset()

    def __add__(self, other: "Lin") -> "Lin":
        merged = dict(self.terms)
        for name, coeff in other.terms:
            merged[name] = merged.get(name, 0) + coeff
        return Lin(self.const + other.const,
                   frozenset((n, c) for n, c in merged.items() if c))

    def __neg__(self) -> "Lin":
        return Lin(-self.const,
                   frozenset((n, -c) for n, c in self.terms))

    def __sub__(self, other: "Lin") -> "Lin":
        return self + (-other)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def names(self) -> set[str]:
        return {n for n, _ in self.terms}

    def __str__(self) -> str:  # pragma: no cover - debug aid
        parts = [str(self.const)] if self.const or not self.terms else []
        parts += [f"{c}*{n}" if c != 1 else n
                  for n, c in sorted(self.terms)]
        return " + ".join(parts) or "0"


def lin_of(node: ast.expr) -> Optional[Lin]:
    """Normalize an expression to a :class:`Lin`, or None."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return Lin(const=node.value)
        return None
    if isinstance(node, ast.Name):
        return Lin(terms=frozenset({(node.id, 1)}))
    if isinstance(node, ast.BinOp):
        left, right = lin_of(node.left), lin_of(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = lin_of(node.operand)
        return -inner if inner is not None else None
    return None


def len_arg(node: ast.expr) -> Optional[str]:
    """The name ``x`` when *node* is ``len(x)``, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "len" and len(node.args) == 1 \
            and not node.keywords and isinstance(node.args[0], ast.Name):
        return node.args[0].id
    return None


# ---------------------------------------------------------------------------
# Guard facts

#: Fact kinds: ("len_ge", base, Lin) — len(base) >= Lin;
#:             ("ge0", name)         — name >= 0.
Fact = tuple


def _cmp_facts(left: ast.expr, op: ast.cmpop,
               right: ast.expr) -> list[Fact]:
    """Facts implied by ``left <op> right`` being *true*."""
    facts: list[Fact] = []
    lbase, rbase = len_arg(left), len_arg(right)
    llin, rlin = lin_of(left), lin_of(right)
    # len(x) >= E  /  len(x) > E  /  len(x) == E
    if lbase is not None and rlin is not None:
        if isinstance(op, (ast.GtE, ast.Eq)):
            facts.append(("len_ge", lbase, rlin))
        elif isinstance(op, ast.Gt):
            facts.append(("len_ge", lbase, rlin + Lin(1)))
    # E <= len(x)  /  E < len(x)  /  E == len(x)
    if rbase is not None and llin is not None:
        if isinstance(op, (ast.LtE, ast.Eq)):
            facts.append(("len_ge", rbase, llin))
        elif isinstance(op, ast.Lt):
            facts.append(("len_ge", rbase, llin + Lin(1)))
    # len(x) - E <op> C rearrangements are handled by lin_of returning
    # None for len() inside BinOp; normalize the common written form
    # ``len(x) - offset < 9`` explicitly:
    if isinstance(left, ast.BinOp) and isinstance(left.op, ast.Sub):
        inner_base = len_arg(left.left)
        sub = lin_of(left.right)
        if inner_base is not None and sub is not None \
                and rlin is not None:
            # len(x) - S <op> R
            if isinstance(op, (ast.GtE, ast.Eq)):
                facts.append(("len_ge", inner_base, rlin + sub))
            elif isinstance(op, ast.Gt):
                facts.append(("len_ge", inner_base, rlin + sub + Lin(1)))
    # name >= 0 facts from chained range checks (0 <= name).
    if llin is not None and llin.is_const and isinstance(right, ast.Name):
        if isinstance(op, (ast.LtE, ast.Lt)) and llin.const >= 0:
            facts.append(("ge0", right.id))
    if rlin is not None and rlin.is_const and isinstance(left, ast.Name):
        if isinstance(op, (ast.GtE, ast.Gt)) and rlin.const >= 0:
            facts.append(("ge0", left.id))
    return facts


def _negate_cmp(op: ast.cmpop) -> Optional[ast.cmpop]:
    table = {ast.Lt: ast.GtE(), ast.LtE: ast.Gt(), ast.Gt: ast.LtE(),
             ast.GtE: ast.Lt(), ast.Eq: ast.NotEq(), ast.NotEq: ast.Eq()}
    for src, dst in table.items():
        if isinstance(op, src):
            return dst
    return None


def facts_from_cond(cond: ast.expr, branch: bool) -> set[Fact]:
    """Guard facts known when *cond* evaluated to *branch*."""
    facts: set[Fact] = set()
    if isinstance(cond, ast.Compare):
        # Chained comparisons decompose into pairwise conjuncts — all
        # hold on the true branch; on the false branch only a single
        # comparison can be negated soundly.
        pairs = list(zip([cond.left] + cond.comparators[:-1],
                         cond.ops, cond.comparators))
        if branch:
            for left, op, right in pairs:
                facts.update(_cmp_facts(left, op, right))
        elif len(pairs) == 1:
            left, op, right = pairs[0]
            negated = _negate_cmp(op)
            if negated is not None:
                facts.update(_cmp_facts(left, negated, right))
    elif isinstance(cond, ast.BoolOp):
        if branch and isinstance(cond.op, ast.And):
            for value in cond.values:
                facts.update(facts_from_cond(value, True))
        elif not branch and isinstance(cond.op, ast.Or):
            # not (A or B)  ⇒  ¬A ∧ ¬B
            for value in cond.values:
                facts.update(facts_from_cond(value, False))
    elif isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
        facts.update(facts_from_cond(cond.operand, not branch))
    return facts


def kills_of_fact(fact: Fact) -> set[str]:
    """Names whose reassignment invalidates *fact*."""
    if fact[0] == "len_ge":
        return {fact[1]} | fact[2].names()
    return {fact[1]}


# ---------------------------------------------------------------------------
# Generic forward solver


class ForwardAnalysis:
    """Interface for a forward dataflow over block-entry states."""

    def initial(self) -> object:
        raise NotImplementedError

    def unreachable(self) -> object:
        """State for blocks with no processed predecessor yet (⊤)."""
        raise NotImplementedError

    def meet(self, a: object, b: object) -> object:
        raise NotImplementedError

    def transfer_stmt(self, stmt: ast.stmt, state: object) -> object:
        raise NotImplementedError

    def transfer_edge(self, edge: Edge, state: object) -> object:
        return state


def solve_forward(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, object]:
    """Fixpoint block-entry states for *analysis* over *cfg*."""
    entry_state: dict[int, object] = {}
    entry_state[cfg.entry.id] = analysis.initial()
    worklist: list[Block] = [cfg.entry]
    iterations = 0
    limit = 40 * max(1, len(cfg.blocks))
    while worklist and iterations < limit:
        iterations += 1
        block = worklist.pop()
        state = entry_state.get(block.id)
        if state is None:
            continue
        for stmt in block.stmts:
            state = analysis.transfer_stmt(stmt, state)
        for edge in block.edges:
            out = analysis.transfer_edge(edge, state)
            target = edge.target
            old = entry_state.get(target.id)
            new = out if old is None else analysis.meet(old, out)
            if old is None or new != old:
                entry_state[target.id] = new
                worklist.append(target)
    return entry_state


# ---------------------------------------------------------------------------
# Reaching definitions


class ReachingDefs:
    """Flow-insensitive definition census with a unique-def query.

    For symbolic substitution the solver-level precision is not needed:
    a name is substitutable iff the function assigns it exactly once
    and the defining expression is itself linear.  (Loop-carried names
    fail the once test; conditionally-divergent names fail it too.)
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.defs: dict[str, list[ast.expr]] = {}
        self.aug_targets: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._record(node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    self.aug_targets.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._record(node.target, None)
            elif isinstance(node, (ast.withitem,)) \
                    and node.optional_vars is not None:
                self._record(node.optional_vars, None)

    def _record(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.defs.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record(element, None if value is None else value)

    def unique_def(self, name: str) -> Optional[ast.expr]:
        """The sole defining expression of *name*, or None."""
        if name in self.aug_targets:
            return None
        defs = self.defs.get(name)
        if defs is not None and len(defs) == 1:
            return defs[0]
        return None

    def substituted_lin(self, expr: ast.expr,
                        depth: int = 3) -> Optional[Lin]:
        """``lin_of`` with unique single-assignment names substituted."""
        lin = lin_of(expr)
        if lin is None or depth <= 0:
            return lin
        out = Lin(lin.const)
        for name, coeff in lin.terms:
            definition = self.unique_def(name)
            sub = None
            if definition is not None:
                sub = self.substituted_lin(definition, depth - 1)
            if sub is None:
                out = out + Lin(terms=frozenset({(name, coeff)}))
            else:
                scaled = Lin(sub.const * coeff,
                             frozenset((n, c * coeff)
                                       for n, c in sub.terms))
                out = out + scaled
        return out


# ---------------------------------------------------------------------------
# Guard analysis (the dissector-safety abstract domain)

#: struct formats are unsigned unless they contain a signed code.
_SIGNED_STRUCT_CODES = set("bhilq")


def _unsigned_struct_fmt(fmt: str) -> bool:
    return not any(ch in _SIGNED_STRUCT_CODES for ch in fmt)


def nonneg_producer(value: Optional[ast.expr]) -> bool:
    """Whether *value* provably yields a non-negative integer."""
    if value is None:
        return False
    if isinstance(value, ast.Constant):
        return isinstance(value.value, int) and value.value >= 0
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id == "len":
            return True
        if isinstance(func, ast.Attribute):
            # int.from_bytes(...) is unsigned unless signed=True.
            if func.attr == "from_bytes":
                for kw in value.keywords:
                    if kw.arg == "signed" and not (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is False):
                        return False
                return True
            # struct.unpack with an all-unsigned format string.
            if func.attr == "unpack" and value.args \
                    and isinstance(value.args[0], ast.Constant) \
                    and isinstance(value.args[0].value, str):
                return _unsigned_struct_fmt(value.args[0].value)
    if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.Add, ast.Mult, ast.BitAnd, ast.RShift,
                       ast.BitOr, ast.LShift, ast.Mod, ast.FloorDiv)):
        # Conservative: arithmetic over non-negative operands.
        return nonneg_producer(value.left) and nonneg_producer(value.right)
    return False


class GuardAnalysis(ForwardAnalysis):
    """Forward set-of-facts analysis; meet is intersection.

    States are frozensets of facts.  Branch edges generate facts from
    their condition; assignments kill facts over the reassigned name
    and derive slice-length facts (``body = payload[4:]`` under
    ``len(payload) >= 5`` yields ``len(body) >= 1``).
    """

    def __init__(self, nonneg_names: Optional[set[str]] = None):
        self.nonneg_names = nonneg_names or set()

    def initial(self) -> frozenset:
        return frozenset(("ge0", name) for name in self.nonneg_names)

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer_edge(self, edge: Edge, state: frozenset) -> frozenset:
        if edge.cond is None or edge.branch is None:
            return state
        return state | facts_from_cond(edge.cond, edge.branch)

    def transfer_stmt(self, stmt: ast.stmt, state: frozenset) -> frozenset:
        assigned = _assigned_names(stmt)
        if not assigned:
            return state
        kept = frozenset(fact for fact in state
                         if not (kills_of_fact(fact) & assigned))
        gen: set[Fact] = set()
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            gen.update(self._derive(stmt.targets[0].id, stmt.value, kept))
        # Restore standing non-negativity for counters that stay
        # provably non-negative through the assignment.
        for name in assigned:
            if name in self.nonneg_names:
                gen.add(("ge0", name))
        return kept | gen

    def _derive(self, target: str, value: ast.expr,
                state: frozenset) -> set[Fact]:
        facts: set[Fact] = set()
        if nonneg_producer(value):
            facts.add(("ge0", target))
        # y = x[<lower>:<upper>] — derive len(y) facts.
        if isinstance(value, ast.Subscript) \
                and isinstance(value.slice, ast.Slice) \
                and isinstance(value.value, ast.Name):
            base = value.value.id
            lower = (lin_of(value.slice.lower)
                     if value.slice.lower is not None else Lin(0))
            upper = (lin_of(value.slice.upper)
                     if value.slice.upper is not None else None)
            if lower is None:
                return facts
            if upper is None:
                # y = x[l:] ⇒ len(y) >= len(x) - l
                for fact in state:
                    if fact[0] == "len_ge" and fact[1] == base:
                        facts.add(("len_ge", target, fact[2] - lower))
            else:
                # y = x[l:u] ⇒ len(y) == u - l when len(x) >= u.
                for fact in state:
                    if fact[0] == "len_ge" and fact[1] == base:
                        slack = fact[2] - upper
                        if slack.is_const and slack.const >= 0:
                            facts.add(("len_ge", target, upper - lower))
                            break
        # y = x ⇒ copy len facts (bytes aliasing).
        if isinstance(value, ast.Name):
            for fact in state:
                if fact[0] == "len_ge" and fact[1] == value.id:
                    facts.add(("len_ge", target, fact[2]))
        return facts


def _assigned_names(stmt: ast.stmt) -> set[str]:
    names: set[str] = set()
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for node in ast.walk(stmt.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    elif isinstance(stmt, (ast.While,)):
        pass   # header marker: the test assigns nothing
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for node in ast.walk(item.optional_vars):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
    return names


def proves_len_ge(state: frozenset, base: str, needed: Lin,
                  rdefs: Optional[ReachingDefs] = None) -> bool:
    """Whether the facts in *state* prove ``len(base) >= needed``.

    Tries each ``len_ge`` fact for *base*; the comparison succeeds when
    ``fact - needed`` is a non-negative constant, optionally after
    substituting unique definitions into both sides.
    """
    candidates = [needed]
    for fact in state:
        if fact[0] != "len_ge" or fact[1] != base:
            continue
        have = fact[2]
        for want in candidates:
            diff = have - want
            if diff.is_const and diff.const >= 0:
                return True
            if rdefs is not None:
                have_sub = _substitute_lin(have, rdefs)
                want_sub = _substitute_lin(want, rdefs)
                diff = have_sub - want_sub
                if diff.is_const and diff.const >= 0:
                    return True
    return False


def _substitute_lin(lin: Lin, rdefs: ReachingDefs, depth: int = 3) -> Lin:
    out = Lin(lin.const)
    for name, coeff in lin.terms:
        definition = rdefs.unique_def(name)
        sub = None
        if definition is not None and depth > 0:
            inner = lin_of(definition)
            if inner is not None:
                sub = _substitute_lin(inner, rdefs, depth - 1)
        if sub is None:
            out = out + Lin(terms=frozenset({(name, coeff)}))
        else:
            out = out + Lin(sub.const * coeff,
                            frozenset((n, c * coeff) for n, c in sub.terms))
    return out
