#!/usr/bin/env python
"""AST lint enforcing the repo's own static invariants (DESIGN.md §5).

Two of the reproduction's design rules are load-bearing for correctness
but were, until this tool, prose:

* **Determinism** (decision 1): all randomness and all notion of time flow
  through the simulator's seeded RNG and virtual clock.  Wall-clock reads
  (``time.time``, ``datetime.now``, ...) or module-level ``random``
  calls anywhere outside ``repro.sim`` silently break bit-for-bit
  reproducibility.
* **Layering / no tracing back-channel** (decisions 2–3): the tracing
  planes may only see what the kernel hooks expose.  If ``repro.agent``
  or ``repro.server`` imported ``repro.apps``, trace assembly could cheat
  by reaching into application objects instead of reconstructing
  causality from wire bytes + kernel identifiers.  More generally each
  package may only import from layers at or below it.

Usage::

    python tools/lint_repro.py            # lint src/repro, exit 1 on hit
    python tools/lint_repro.py <root>     # lint another tree (tests)

Also importable: ``tests/test_lint_invariants.py`` runs the same checks
as part of the tier-1 suite.  A line may opt out with a trailing
``# lint: ok`` comment (reserved for annotations the AST walk cannot
distinguish from violations).
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"

#: Wall-clock / nondeterminism sources: module → banned attributes
#: (``*`` = every callable attribute of the module).
BANNED_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "sleep", "clock_gettime"},
    "datetime": {"now", "utcnow", "today"},
    "random": {"*"},
    "secrets": {"*"},
    "uuid": {"uuid1", "uuid4"},
    "os": {"urandom", "getrandom"},
}

#: Packages exempt from the determinism/RNG rules: repro.sim owns the
#: seeded RNG and the virtual clock.
DETERMINISM_EXEMPT = {"sim"}

#: Layering: package → packages it may import from ``repro.*``.
#: Anything absent means "may import nothing from repro".  The agent and
#: server knowing nothing about repro.apps is the paper's zero-code
#: claim made structural: the tracer cannot reach into application state.
ALLOWED_IMPORTS = {
    "sim": {"sim"},
    "core": {"core", "sim"},
    "kernel": {"kernel", "network", "sim", "core"},
    "network": {"kernel", "network", "sim", "core"},
    "protocols": {"protocols", "core", "sim"},
    "agent": {"agent", "core", "kernel", "network", "protocols", "sim"},
    "server": {"server", "agent", "core", "kernel", "network",
               "protocols", "sim"},
    "apps": {"apps", "kernel", "network", "protocols", "sim", "core"},
    "baselines": {"baselines", "core", "sim"},
    "survey": {"survey", "core"},
    "analysis": {"analysis", "agent", "apps", "baselines", "core",
                 "kernel", "network", "protocols", "server", "sim",
                 "survey"},
}

#: The planes that must never see application internals, with the design
#: rule each violation breaks (used for the error message).
BACK_CHANNEL = {
    ("agent", "apps"): "the agent may only read what the hooks expose",
    ("server", "apps"): "trace assembly must reconstruct causality "
                        "from spans alone",
}


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class _FileLinter(ast.NodeVisitor):
    """Single-module pass collecting violations."""

    def __init__(self, path: str, package: str, source_lines: list[str]):
        self.path = path
        self.package = package  # first component under repro/, "" at root
        self.source_lines = source_lines
        self.violations: list[Violation] = []
        #: local alias → banned (module, attr) from `from X import Y`.
        self._from_aliases: dict[str, tuple[str, str]] = {}
        #: local alias → banned module from `import X as Y`.
        self._module_aliases: dict[str, str] = {}

    # -- helpers ----------------------------------------------------------

    def _suppressed(self, line: int) -> bool:
        if 1 <= line <= len(self.source_lines):
            return "lint: ok" in self.source_lines[line - 1]
        return False

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not self._suppressed(line):
            self.violations.append(
                Violation(self.path, line, rule, message))

    @property
    def _determinism_applies(self) -> bool:
        return self.package not in DETERMINISM_EXEMPT

    # -- imports ----------------------------------------------------------

    def _check_repro_import(self, node: ast.AST, target: str) -> None:
        parts = target.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return
        imported_pkg = parts[1]
        if not self.package:  # files directly under repro/ (public API)
            return
        allowed = ALLOWED_IMPORTS.get(self.package)
        if allowed is not None and imported_pkg not in allowed:
            reason = BACK_CHANNEL.get((self.package, imported_pkg))
            detail = (f" — no tracing back-channel: {reason}"
                      if reason else "")
            self._report(
                node, "layering",
                f"repro.{self.package} must not import "
                f"repro.{imported_pkg}{detail}")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_repro_import(node, alias.name)
            top = alias.name.split(".")[0]
            if top in BANNED_CALLS and self._determinism_applies:
                self._module_aliases[alias.asname or top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        self._check_repro_import(node, module)
        top = module.split(".")[0]
        if top in BANNED_CALLS and self._determinism_applies:
            banned = BANNED_CALLS[top]
            for alias in node.names:
                if alias.name in banned or "*" in banned:
                    self._from_aliases[alias.asname or alias.name] = \
                        (top, alias.name)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if self._determinism_applies:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain:
                root = self._module_aliases.get(chain[0], chain[0])
                banned = BANNED_CALLS.get(root)
                # Only flag when the base really is the module (it was
                # imported in this file), not a same-named local object.
                if banned and (chain[0] in self._module_aliases
                               or self._is_imported_module(chain[0])):
                    attr = chain[-1]
                    if attr in banned or "*" in banned:
                        self._report(
                            node, "determinism",
                            f"call to {'.'.join(chain)}() — "
                            f"nondeterministic outside repro.sim; use "
                            f"the simulator's clock/RNG")
        elif isinstance(func, ast.Name):
            origin = self._from_aliases.get(func.id)
            if origin is not None:
                self._report(
                    node, "determinism",
                    f"call to {func.id}() (from {origin[0]} import "
                    f"{origin[1]}) — nondeterministic outside repro.sim")

    def _is_imported_module(self, name: str) -> bool:
        return name in self._module_aliases

    # datetime.datetime.now() reaches here as chain
    # ("datetime", "datetime", "now") and is caught by the attr check.


def _attr_chain(node: ast.Attribute) -> tuple[str, ...]:
    parts: list[str] = [node.attr]
    obj = node.value
    while isinstance(obj, ast.Attribute):
        parts.append(obj.attr)
        obj = obj.value
    if isinstance(obj, ast.Name):
        parts.append(obj.id)
        return tuple(reversed(parts))
    return ()


def lint_source(source: str, path: str, package: str) -> list[Violation]:
    """Lint one module's *source*; *package* is its repro subpackage."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "syntax", str(exc))]
    linter = _FileLinter(path, package, source.splitlines())
    linter.visit(tree)
    return sorted(linter.violations, key=lambda v: (v.path, v.line))


def _package_of(file_path: Path, root: Path) -> str:
    rel = file_path.relative_to(root)
    return rel.parts[0] if len(rel.parts) > 1 else ""


def lint_tree(root: Path = DEFAULT_ROOT) -> list[Violation]:
    """Lint every ``*.py`` under *root* (a ``repro`` package tree)."""
    root = Path(root)
    violations: list[Violation] = []
    for file_path in sorted(root.rglob("*.py")):
        package = _package_of(file_path, root)
        violations.extend(
            lint_source(file_path.read_text(encoding="utf-8"),
                        str(file_path), package))
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else DEFAULT_ROOT
    if not root.is_dir():
        print(f"lint_repro: no such directory: {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_repro: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_repro: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
