#!/usr/bin/env python
"""Back-compat CLI for the determinism/layering lint (DESIGN.md §5).

The checks themselves now live in the shared static-analysis framework
(``tools.analyze``, DESIGN.md §10) as the *discipline* checker; this
module keeps the original entry points and output stable:

* ``lint_source(source, path, package)`` / ``lint_tree(root)`` return
  :class:`Violation` objects with the historical ``determinism`` /
  ``layering`` rule names and messages.
* ``python tools/lint_repro.py [root]`` exits 1 on violations.
* the ``# lint: ok`` suppression marker keeps working.

New code should run ``python -m tools.analyze`` instead, which adds the
dissector-safety, hot-path, and confinement checkers on top.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.analyze.checkers.discipline import (  # noqa: E402
    ALLOWED_IMPORTS, BACK_CHANNEL, BANNED_CALLS, DETERMINISM_EXEMPT,
    lint_module)
from tools.analyze.findings import suppressed  # noqa: E402

__all__ = ["ALLOWED_IMPORTS", "BACK_CHANNEL", "BANNED_CALLS",
           "DETERMINISM_EXEMPT", "DEFAULT_ROOT", "REPO_ROOT",
           "Violation", "lint_source", "lint_tree", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"

#: Rules this legacy surface reports; the framework's newer rules
#: (runtime-assert, …) are intentionally not exposed here.
_LEGACY_RULES = {"determinism", "layering"}


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def lint_source(source: str, path: str, package: str) -> list[Violation]:
    """Lint one module's *source*; *package* is its repro subpackage."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "syntax", str(exc))]
    source_lines = source.splitlines()
    violations = [
        Violation(f.path, f.line, f.rule, f.message)
        for f in lint_module(tree, path, package, assert_rule=False)
        if f.rule in _LEGACY_RULES
        and not suppressed(source_lines, f.line)]
    return sorted(violations, key=lambda v: (v.path, v.line))


def _package_of(file_path: Path, root: Path) -> str:
    rel = file_path.relative_to(root)
    return rel.parts[0] if len(rel.parts) > 1 else ""


def lint_tree(root: Path = DEFAULT_ROOT) -> list[Violation]:
    """Lint every ``*.py`` under *root* (a ``repro`` package tree)."""
    root = Path(root)
    violations: list[Violation] = []
    for file_path in sorted(root.rglob("*.py")):
        package = _package_of(file_path, root)
        violations.extend(
            lint_source(file_path.read_text(encoding="utf-8"),
                        str(file_path), package))
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else DEFAULT_ROOT
    if not root.is_dir():
        print(f"lint_repro: no such directory: {root}", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint_repro: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_repro: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
