"""Unit tests for the sharded span store: routing, tenancy, boundaries.

The equivalence of scatter-gather ``trace()`` with a single unsharded
store is property-tested in test_trace_index_properties.py; this file
pins the mechanics — deterministic routing, the seal/probe/merge phase
APIs the scaling benchmark prices separately, tenant label threading,
and the observability counters.
"""

import pytest

from repro.core.span import Span, SpanKind, SpanSide
from repro.server.database import SpanStore
from repro.server.sharding import MAX_SHARDS, ShardedSpanStore


def make_span(span_id, *, systrace=None, xreq=None, start=1.0, **extra):
    return Span(span_id=span_id, kind=SpanKind.SYSCALL,
                side=SpanSide.CLIENT, start_time=start,
                end_time=start + 0.01, systrace_id=systrace,
                x_request_id=xreq, **extra)


class TestRouting:
    def test_routing_is_deterministic(self):
        store = ShardedSpanStore(4)
        span = make_span(1, systrace=77)
        assert store._route(span, 0) == store._route(span, 0)

    def test_same_key_same_window_same_shard(self):
        store = ShardedSpanStore(8, window=60.0)
        spans = [make_span(i, systrace=42, start=float(i)) for i in range(20)]
        shards = {store._route(span, 0) for span in spans}
        assert len(shards) == 1

    def test_windows_split_one_key_across_shards(self):
        store = ShardedSpanStore(8, window=1.0)
        spans = [make_span(i, systrace=42, start=float(i) * 10)
                 for i in range(32)]
        shards = {store._route(span, 0) for span in spans}
        assert len(shards) > 1

    def test_keys_spread_across_shards(self):
        store = ShardedSpanStore(4)
        batches = store.route_batches(
            make_span(i, systrace=i) for i in range(400))
        sizes = [len(batch) for batch in batches]
        assert sum(sizes) == 400
        assert min(sizes) > 0
        # No shard should carry a wildly disproportionate share.
        assert max(sizes) < 3 * (400 // 4)

    def test_route_batches_is_pure(self):
        store = ShardedSpanStore(4)
        spans = [make_span(i, systrace=i) for i in range(10)]
        store.route_batches(spans)
        assert len(store) == 0

    def test_keyless_span_routes_by_span_id(self):
        store = ShardedSpanStore(4)
        spans = [make_span(i) for i in range(100)]
        store.insert_many(spans)
        assert len(store) == 100
        # Keyless spans are singleton components on whatever shard.
        assert store.component_ids(7) == {7}

    def test_tenant_salt_changes_spread(self):
        store = ShardedSpanStore(8)
        spans = [make_span(i, systrace=i) for i in range(200)]
        default = [store._route(s, 0) for s in spans]
        salted = [store._route(s, store._tenant_salt("acme")) for s in spans]
        assert default != salted

    def test_shard_count_bounds(self):
        with pytest.raises(ValueError):
            ShardedSpanStore(0)
        with pytest.raises(ValueError):
            ShardedSpanStore(MAX_SHARDS + 1)
        with pytest.raises(ValueError):
            ShardedSpanStore(2, window=0.0)


class TestIngest:
    def test_duplicate_id_on_same_shard_rejected(self):
        store = ShardedSpanStore(4)
        span = make_span(5, systrace=1)
        store.insert(span)
        with pytest.raises(ValueError):
            store.insert(make_span(5, systrace=1))

    def test_get_probes_shards(self):
        store = ShardedSpanStore(4)
        spans = [make_span(i, systrace=i) for i in range(50)]
        store.insert_many(spans)
        for span in spans:
            assert store.get(span.span_id) is span
        assert store.get(999) is None
        assert store.shard_of(999) is None
        owner = store.shard_of(3)
        assert store.shards[owner].get(3) is spans[3]

    def test_all_spans_unions_shards(self):
        store = ShardedSpanStore(3)
        spans = [make_span(i, systrace=i % 7) for i in range(60)]
        store.insert_many(spans)
        assert {s.span_id for s in store.all_spans()} == set(range(60))
        assert len(store) == 60


class TestBoundaryPhases:
    def build(self):
        # Two spans per systrace id, windows forced apart so each pair
        # straddles shards with high likelihood.
        store = ShardedSpanStore(4, window=1.0)
        spans = []
        for trace_id in range(30):
            spans.append(make_span(2 * trace_id, systrace=trace_id,
                                   start=0.5))
            spans.append(make_span(2 * trace_id + 1, systrace=trace_id,
                                   start=100.5))
        store.insert_many(spans)
        return store, spans

    def test_seal_then_probe_then_merge(self):
        store, spans = self.build()
        sealed = sum(store.seal_shard(i) for i in range(store.shard_count))
        assert sealed > 0  # every distinct (key, shard) logged once
        links = []
        for partition in range(store.partition_count):
            links.extend(store.probe_partition(partition))
        assert links  # straddling keys were found
        store.apply_boundary_links(links)
        for trace_id in range(30):
            assert store.component_ids(2 * trace_id) == {
                2 * trace_id, 2 * trace_id + 1}

    def test_flush_is_equivalent_and_idempotent(self):
        store, spans = self.build()
        store.flush()
        store.flush()
        stats = store.shard_stats()
        assert stats["boundary_keys"] > 0
        for trace_id in range(30):
            assert store.component_ids(2 * trace_id) == {
                2 * trace_id, 2 * trace_id + 1}

    def test_queries_trigger_phases_lazily(self):
        store, spans = self.build()
        # No explicit flush/seal: component_ids must do it all.
        assert store.component_ids(0) == {0, 1}
        assert store.boundary_links > 0

    def test_shard_stats_shape(self):
        store, spans = self.build()
        store.flush()
        stats = store.shard_stats()
        assert stats["spans"] == 60
        assert stats["shards"] == 4
        assert sum(stats["shard_sizes"]) == 60
        assert stats["imbalance"] >= 1.0
        assert stats["boundary_spans"] >= stats["boundary_links"]


class TestTenancy:
    def test_tenant_label_stamped_and_filterable(self):
        store = ShardedSpanStore(4)
        acme = [make_span(i, systrace=i, start=1.0) for i in range(10)]
        globex = [make_span(100 + i, systrace=50 + i, start=2.0)
                  for i in range(10)]
        store.insert_many(acme, tenant="acme")
        store.insert_many(globex, tenant="globex")
        assert all(s.tags["tenant"] == "acme" for s in acme)
        listed = store.span_list(0.0, 10.0, tenant="acme")
        assert {s.span_id for s in listed} == set(range(10))
        # Time order is preserved inside the filter.
        both = store.span_list(0.0, 10.0)
        assert [s.span_id for s in both] == sorted(
            range(10)) + sorted(range(100, 110))

    def test_search_tenant_filter(self):
        from repro.server.database import AssociationFilter
        store = ShardedSpanStore(2)
        a = make_span(1, systrace=9)
        b = make_span(2, systrace=9)
        store.insert_many([a], tenant="acme")
        store.insert_many([b], tenant="globex")
        assoc = AssociationFilter()
        assoc.absorb(a)
        assert store.search(assoc) == {1, 2}
        assoc2 = AssociationFilter()
        assoc2.absorb(a)
        assert store.search(assoc2, tenant="acme") == {1}

    def test_labels_do_not_partition_traces(self):
        """Labels are filters, not walls: two tenants' spans sharing an
        association key still form one component (the multi-cluster
        deployment shares the backbone)."""
        store = ShardedSpanStore(4)
        a = make_span(1, xreq="shared")
        b = make_span(2, xreq="shared")
        store.insert_many([a], tenant="acme")
        store.insert_many([b], tenant="globex")
        assert store.component_ids(1) == {1, 2}


class TestSingleShardDegenerate:
    def test_one_shard_matches_plain_store(self):
        spans = [make_span(i, systrace=i % 5) for i in range(40)]
        single = SpanStore()
        single.insert_many(spans)
        sharded = ShardedSpanStore(1)
        sharded.insert_many(spans)
        for span in spans:
            assert (sharded.component_ids(span.span_id)
                    == single.component_ids(span.span_id))
        assert sharded.boundary_links == 0  # nothing can straddle
