"""Property-based tests for the BPF verifier (hypothesis).

Three safety properties, over randomly generated programs:

* a program with a planted back-edge that has no provable trip bound is
  **always rejected**, whatever surrounds it;
* a program the verifier **accepts never traps** in the interpreter, and
  never executes more instructions than the verified worst case — for
  any context values;
* verification is **deterministic**: same bytecode, same verdict.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.bpf_isa import (
    CTX_FIELDS,
    ProgramBuilder,
    R0,
    R1,
    R5,
    R6,
    R7,
    R8,
    execute,
)
from repro.kernel.verifier import VerifierError, verify_bytecode

SCRATCH = (R7, R8)
ALU_IMM = ("add_imm", "sub_imm", "mul_imm", "and_imm", "or_imm",
           "lsh_imm", "rsh_imm")
ALU_REG = ("add_reg", "sub_reg", "xor_reg")
FIELDS = tuple(sorted(CTX_FIELDS))

# -- random-program generation ----------------------------------------------
# Ops are abstract descriptors; the builder below lowers them to valid
# bytecode, inserting initializing moves where an operand would otherwise
# be uninitialized (so generated programs are verifiable by construction).

_reg = st.sampled_from(SCRATCH)
_imm = st.integers(min_value=0, max_value=1 << 20)

_simple_op = st.one_of(
    st.tuples(st.just("const"), _reg, _imm),
    st.tuples(st.just("ldctx"), _reg, st.sampled_from(FIELDS)),
    st.tuples(st.just("alu_imm"), st.sampled_from(ALU_IMM), _reg,
              st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("alu_reg"), st.sampled_from(ALU_REG), _reg, _reg),
)

_op = st.one_of(
    _simple_op,
    st.tuples(st.just("store"), st.integers(0, 7), _reg),
    st.tuples(st.just("load"), _reg, st.integers(0, 7)),
    st.tuples(st.just("loop"), st.integers(1, 12),
              st.lists(_simple_op, min_size=1, max_size=4)),
    st.tuples(st.just("branch"), _reg, _imm,
              st.lists(_simple_op, min_size=1, max_size=4)),
    st.tuples(st.just("ktime")),
    st.tuples(st.just("submit")),
)

_program_ops = st.lists(_op, min_size=0, max_size=12)


class _Lowering:
    """Lower op descriptors to bytecode, tracking initialization."""

    def __init__(self) -> None:
        self.b = ProgramBuilder()
        self.b.mov_reg(R6, R1)  # keep ctx across helper calls
        self.inited: set[int] = set()
        self.slots: set[int] = set()
        self.labels = 0

    def _need(self, reg: int) -> None:
        if reg not in self.inited:
            self.b.mov_imm(reg, 1)
            self.inited.add(reg)

    def _lower_simple(self, op) -> None:
        kind = op[0]
        if kind == "const":
            self.b.mov_imm(op[1], op[2])
            self.inited.add(op[1])
        elif kind == "ldctx":
            self.b.ld_ctx(op[1], op[2], ctx_reg=R6)
            self.inited.add(op[1])
        elif kind == "alu_imm":
            _, name, reg, imm = op
            self._need(reg)
            getattr(self.b, name)(reg, imm)
        elif kind == "alu_reg":
            _, name, dst, src = op
            self._need(dst)
            self._need(src)
            getattr(self.b, name)(dst, src)

    def lower(self, op) -> None:
        kind = op[0]
        if kind in ("const", "ldctx", "alu_imm", "alu_reg"):
            self._lower_simple(op)
        elif kind == "store":
            _, slot, reg = op
            self._need(reg)
            self.b.stack_store(-8 * (slot + 1), reg)
            self.slots.add(slot)
        elif kind == "load":
            _, reg, slot = op
            if slot not in self.slots:
                self._need(reg)
                self.b.stack_store(-8 * (slot + 1), reg)
                self.slots.add(slot)
            self.b.stack_load(reg, -8 * (slot + 1))
            self.inited.add(reg)
        elif kind == "loop":
            _, trips, body = op
            self.b.bounded_loop(
                R5, trips,
                lambda bb: [self._lower_simple(o) for o in body])
        elif kind == "branch":
            _, reg, imm, body = op
            self._need(reg)
            label = f"skip{self.labels}"
            self.labels += 1
            before = set(self.inited)
            self.b.jeq_imm(reg, imm, label)
            for o in body:
                self._lower_simple(o)
            self.b.label(label)
            # Registers first written inside the branch are only
            # conditionally initialized — forget them at the join.
            self.inited = before
        elif kind == "ktime":
            self.b.call("ktime_get_ns")
            self.inited.add(R0)
            self.inited.discard(R5)
        elif kind == "submit":
            self.b.mov_reg(R1, R6)
            self.b.call("perf_submit")
            self.inited.add(R0)
            self.inited.discard(R5)


def _lower_program(ops) -> tuple:
    low = _Lowering()
    for op in ops:
        low.lower(op)
    low.b.mov_imm(R0, 0)
    low.b.exit()
    return low.b.assemble()


class _Ctx:
    def __init__(self, values: dict):
        for name, value in values.items():
            setattr(self, name, value)


_ctx_values = st.fixed_dictionaries({
    name: st.integers(min_value=0, max_value=(1 << 32) - 1)
    for name in ("pid", "tid", "coroutine_id", "socket_id", "tcp_seq",
                 "byte_len", "ret")
})


# -- property 1: verified programs never trap -------------------------------

@settings(max_examples=150, deadline=None)
@given(ops=_program_ops, ctx_values=_ctx_values)
def test_verified_programs_never_trap(ops, ctx_values):
    bytecode = _lower_program(ops)
    report = verify_bytecode(bytecode)  # must accept by construction
    result = execute(bytecode, _Ctx(ctx_values))
    assert result.steps <= report.worst_case_instructions
    assert result.return_value == 0


# -- property 2: planted unbounded back-edges are always rejected -----------

_spin_kinds = st.sampled_from(["ja_self", "guard_unknown", "diverging"])


@settings(max_examples=150, deadline=None)
@given(ops=_program_ops, kind=_spin_kinds,
       field=st.sampled_from(FIELDS))
def test_planted_unbounded_backedge_always_rejected(ops, kind, field):
    low = _Lowering()
    for op in ops:
        low.lower(op)
    b = low.b
    if kind == "ja_self":
        b.label("spin")
        b.ja("spin")
    elif kind == "guard_unknown":
        # Guard register comes from ctx and is never written in the
        # loop: the abstract state recurs, no trip bound exists.
        b.ld_ctx(R7, field, ctx_reg=R6)
        b.label("spin")
        b.mov_imm(R8, 3)
        b.jne_imm(R7, 0, "spin")
    else:  # diverging: state changes forever, exhausts the budget
        b.ld_ctx(R7, field, ctx_reg=R6)
        b.mov_imm(R8, 0)
        b.label("spin")
        b.add_imm(R8, 1)
        b.jne_imm(R7, 0, "spin")
    b.mov_imm(R0, 0)
    b.exit()
    with pytest.raises(VerifierError):
        verify_bytecode(b.assemble(), state_budget=20_000)


# -- property 3: verification is deterministic ------------------------------

@settings(max_examples=100, deadline=None)
@given(ops=_program_ops)
def test_verification_deterministic_on_accepted(ops):
    bytecode = _lower_program(ops)
    assert verify_bytecode(bytecode) == verify_bytecode(bytecode)


@settings(max_examples=50, deadline=None)
@given(ops=_program_ops, field=st.sampled_from(FIELDS))
def test_verification_deterministic_on_rejected(ops, field):
    low = _Lowering()
    for op in ops:
        low.lower(op)
    low.b.ld_ctx(R7, field, ctx_reg=R6)
    low.b.label("spin")
    low.b.jne_imm(R7, 0, "spin")
    low.b.mov_imm(R0, 0)
    low.b.exit()
    bytecode = low.b.assemble()
    errors = set()
    for _ in range(3):
        with pytest.raises(VerifierError) as excinfo:
            verify_bytecode(bytecode, state_budget=20_000)
        errors.add(str(excinfo.value))
    assert len(errors) == 1
