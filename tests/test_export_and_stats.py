"""Trace export formats and agent pipeline statistics."""

import json

import pytest

from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.export import (FORMATS, decode_otlp_json, register_format,
                               trace_to_jaeger, trace_to_json,
                               trace_to_otlp, trace_to_otlp_json)
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def traced_world():
    sim = Simulator(seed=123)
    builder = ClusterBuilder(node_count=2)
    lg_pod = builder.add_pod(0, "lg")
    svc_pod = builder.add_pod(1, "svc")
    cluster = builder.build()
    Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)
    service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                          service_time=0.001)

    @service.route("/")
    def home(worker, request):
        yield from worker.work(0.0001)
        return Response(200)

    service.start()
    generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=10,
                              duration=0.4, connections=1, pod=lg_pod,
                              name="client")
    report = sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    for agent in agents:
        agent.flush()
    trace = server.trace(server.slowest_span().span_id)
    return server, agents, trace, report


class TestJaegerExport:
    def test_structure(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_jaeger(trace)
        assert len(payload["spans"]) == len(trace)
        assert payload["traceID"]
        assert set(payload["processes"]) == {"p-client", "p-svc"}

    def test_parent_references(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_jaeger(trace)
        span_ids = {span["spanID"] for span in payload["spans"]}
        child_refs = [span for span in payload["spans"]
                      if span["references"]]
        assert len(child_refs) == len(trace) - 1  # all but the root
        for span in child_refs:
            assert span["references"][0]["refType"] == "CHILD_OF"
            assert span["references"][0]["spanID"] in span_ids

    def test_tags_and_metrics_exported(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_jaeger(trace)
        svc_span = next(span for span in payload["spans"]
                        if span["processID"] == "p-svc")
        keys = {tag["key"] for tag in svc_span["tags"]}
        assert "pod" in keys
        assert "tcp.connect_rtt" in keys
        assert "http.status_code" in keys

    def test_durations_in_microseconds(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_jaeger(trace)
        for exported, span in zip(
                payload["spans"], trace):
            assert exported["duration"] == pytest.approx(
                max(1, int(span.duration * 1e6)))


class TestOtlpExport:
    def test_flat_span_list(self, traced_world):
        _server, _agents, trace, _report = traced_world
        spans = trace_to_otlp(trace)
        assert len(spans) == len(trace)
        kinds = {span["kind"] for span in spans}
        assert kinds == {"SPAN_KIND_SERVER", "SPAN_KIND_CLIENT"}
        assert all(span["status"]["code"] == "STATUS_CODE_OK"
                   for span in spans)

    def test_parent_ids_resolve(self, traced_world):
        _server, _agents, trace, _report = traced_world
        spans = trace_to_otlp(trace)
        ids = {span["spanId"] for span in spans}
        roots = [span for span in spans if not span["parentSpanId"]]
        assert len(roots) == 1
        for span in spans:
            if span["parentSpanId"]:
                assert span["parentSpanId"] in ids


class TestOtlpJsonExport:
    """The canonical resourceSpans form the continuous pipeline emits."""

    def test_resource_scope_span_structure(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_otlp_json(trace)
        services = set()
        spans = []
        for entry in payload["resourceSpans"]:
            attrs = {a["key"]: a["value"]
                     for a in entry["resource"]["attributes"]}
            services.add(attrs["service.name"]["stringValue"])
            (scope_entry,) = entry["scopeSpans"]
            assert scope_entry["scope"]["name"] == "repro.deepflow"
            spans.extend(scope_entry["spans"])
        assert services == {"client", "svc"}
        assert len(spans) == len(trace)

    def test_hex_ids_and_int64_strings(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_otlp_json(trace)
        for entry in payload["resourceSpans"]:
            for span in entry["scopeSpans"][0]["spans"]:
                assert len(span["traceId"]) == 32
                assert len(span["spanId"]) == 16
                assert isinstance(span["startTimeUnixNano"], str)
                assert (int(span["endTimeUnixNano"])
                        >= int(span["startTimeUnixNano"]))

    def test_status_mapping_reports_ok(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_otlp_json(trace)
        codes = {span["status"]["code"]
                 for entry in payload["resourceSpans"]
                 for span in entry["scopeSpans"][0]["spans"]}
        assert codes == {"STATUS_CODE_OK"}

    def test_decoder_round_trips_live_payload(self, traced_world):
        _server, _agents, trace, _report = traced_world
        payload = trace_to_otlp_json(trace)
        decoded = decode_otlp_json(json.loads(json.dumps(payload)))
        total = sum(len(resource["spans"])
                    for resource in decoded["resources"])
        assert total == len(trace)


class TestJsonSerialization:
    def test_round_trips_through_json(self, traced_world):
        _server, _agents, trace, _report = traced_world
        for fmt in ("jaeger", "otlp", "otlp-json"):
            text = trace_to_json(trace, fmt=fmt)
            assert json.loads(text)

    def test_unknown_format_lists_supported(self, traced_world):
        _server, _agents, trace, _report = traced_world
        with pytest.raises(ValueError) as excinfo:
            trace_to_json(trace, fmt="zipkin-thrift")
        message = str(excinfo.value)
        assert "zipkin-thrift" in message
        for fmt in sorted(FORMATS):
            assert fmt in message

    def test_registry_extends_without_code_changes(self, traced_world):
        _server, _agents, trace, _report = traced_world
        register_format("span-count", lambda t: {"spans": len(t)})
        try:
            payload = json.loads(trace_to_json(trace, fmt="span-count"))
            assert payload == {"spans": len(trace)}
        finally:
            del FORMATS["span-count"]


class TestAgentStats:
    def test_counters_reflect_traffic(self, traced_world):
        _server, agents, _trace, report = traced_world
        totals = {key: sum(agent.stats[key] for agent in agents)
                  for key in agents[0].stats}
        assert totals["events_processed"] > 0
        # Two sessions per request, each endpoint sees 2 syscalls.
        assert totals["syscall_records"] >= report.completed * 4
        assert totals["spans_emitted"] == totals["spans_shipped"]
        assert totals["spans_emitted"] >= report.completed * 2

    def test_stats_are_per_agent(self, traced_world):
        _server, agents, _trace, _report = traced_world
        assert agents[0].stats is not agents[1].stats


class TestHookStats:
    """Kernel-side observability: hook_stats() exposes per-program fault
    counters and what the verifier did (faults are contained, not lost)."""

    @pytest.fixture()
    def fresh_agent(self):
        sim = Simulator(seed=7)
        builder = ClusterBuilder(node_count=1)
        builder.add_pod(0, "p")
        cluster = builder.build()
        Network(sim, cluster)
        node = cluster.nodes[0]
        agent = DeepFlowServer().new_agent(node.kernel, node=node)
        agent.deploy()
        return node, agent

    def test_every_deployed_program_is_verified(self, fresh_agent):
        _node, agent = fresh_agent
        stats = agent.hook_stats()
        assert stats["programs"]
        assert all(p["verified"] for p in stats["programs"])
        assert stats["verifier_rejections"] == 0
        assert stats["runtime_faults"] == 0
        # Instruction counts are verifier-derived worst-case path
        # lengths, hitting the configured Fig 13 budgets exactly.
        budgets = {p["instructions"] for p in stats["programs"]}
        config = agent.config
        assert (config.trace_instructions
                + config.parser_instructions) in budgets

    def test_runtime_faults_surface_per_program(self, fresh_agent):
        node, agent = fresh_agent
        # A context without the expected fields crashes the handler;
        # containment turns that into a counted per-program fault.
        node.kernel.hooks.fire("sys_enter_read", object())
        stats = agent.hook_stats()
        faulted = [p for p in stats["programs"] if p["runtime_faults"]]
        assert faulted
        assert stats["runtime_faults"] == sum(
            p["runtime_faults"] for p in stats["programs"])
        assert stats["runtime_faults"] > 0

    def test_verifier_rejections_counted(self, fresh_agent):
        from repro.kernel.bpf_isa import ProgramBuilder, R0
        from repro.kernel.ebpf import BPFProgram, VerifierError

        node, agent = fresh_agent
        b = ProgramBuilder()
        b.label("spin")
        b.ja("spin")
        b.mov_imm(R0, 0)
        b.exit()
        bad = BPFProgram("spin", lambda ctx: None, bytecode=b.assemble())
        with pytest.raises(VerifierError):
            node.kernel.hooks.attach("sys_enter_read", bad)
        assert agent.hook_stats()["verifier_rejections"] == 1
        assert bad not in node.kernel.hooks._hooks.get("sys_enter_read", [])
