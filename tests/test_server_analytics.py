"""Tag-grouped analytics (§3.4) and client-side TLS uprobe coverage."""

import pytest

from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import SpanKind, SpanSide
from repro.kernel.syscalls import Direction
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1, tls
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def analytics_world():
    """Two backend pods behind a caller; one pod is slow, one errors."""
    sim = Simulator(seed=88)
    builder = ClusterBuilder(node_count=3)
    lg_pod = builder.add_pod(0, "lg")
    fast_pod = builder.add_pod(1, "backend-fast",
                               labels={"app": "backend"})
    slow_pod = builder.add_pod(2, "backend-slow",
                               labels={"app": "backend"})
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)

    for pod, service_time, status in ((fast_pod, 0.001, 200),
                                      (slow_pod, 0.02, 500)):
        service = HttpService(pod.name, pod.node, 9000, pod=pod,
                              service_time=service_time)

        def handler(worker, request, _status=status):
            yield from worker.work(0.0001)
            return Response(_status)

        service.route("/")(handler)
        service.start()

    for pod in (fast_pod, slow_pod):
        generator = LoadGenerator(lg_pod.node, pod.ip, 9000, rate=20,
                                  duration=0.4, connections=2,
                                  pod=lg_pod, name=f"client-{pod.name}")
        sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    for agent in agents:
        agent.flush()
    return server


class TestTagAnalytics:
    def test_latency_by_pod_exposes_slow_pod(self):
        server = analytics_world()
        stats = server.latency_by_tag("pod")
        assert set(stats) == {"backend-fast", "backend-slow"}
        assert (stats["backend-slow"]["mean"]
                > 5 * stats["backend-fast"]["mean"])
        assert stats["backend-fast"]["count"] > 0
        assert (stats["backend-slow"]["p95"]
                >= stats["backend-slow"]["mean"])

    def test_error_rate_by_pod(self):
        server = analytics_world()
        rates = server.error_rate_by_tag("pod")
        assert rates["backend-slow"] == 1.0
        assert rates["backend-fast"] == 0.0

    def test_latency_by_custom_label(self):
        server = analytics_world()
        stats = server.latency_by_tag("app")
        assert "backend" in stats

    def test_unknown_tag_returns_empty(self):
        server = analytics_world()
        assert server.latency_by_tag("nonexistent") == {}
        assert server.error_rate_by_tag("nonexistent") == {}


class TestClientSideTls:
    """The uprobe extension on the *calling* side: an HTTPS client whose
    egress plaintext is lifted from ssl_write before encryption."""

    def test_client_span_recovered_from_ssl_write(self):
        sim = Simulator(seed=89)
        builder = ClusterBuilder(node_count=2)
        client_pod = builder.add_pod(0, "https-client-pod")
        server_pod = builder.add_pod(1, "tls-endpoint-pod")
        cluster = builder.build()
        network = Network(sim, cluster)
        deepflow = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = deepflow.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        # uprobes on the client process only.
        agents[0].attach_uprobe("https-client", "ssl_write")
        agents[0].attach_uprobe("https-client", "ssl_read")

        # A raw TLS echo endpoint (unmonitored semantics).
        kernel_s = network.kernel_for_node(server_pod.node.name)
        process_s = kernel_s.create_process("tls-endpoint", server_pod.ip)
        thread_s = kernel_s.create_thread(process_s)
        listener = kernel_s.listen(process_s, 8443)

        def endpoint():
            fd = yield from kernel_s.accept(thread_s, listener)
            yield from kernel_s.read(thread_s, fd)
            yield 0.001
            yield from kernel_s.write(
                thread_s, fd,
                tls.encrypt(http1.encode_response(201, body=b"made")))

        sim.spawn(endpoint(), name="endpoint")

        kernel_c = network.kernel_for_node(client_pod.node.name)
        process_c = kernel_c.create_process("https-client", client_pod.ip)
        thread_c = kernel_c.create_thread(process_c)

        def client():
            fd = yield from kernel_c.connect(thread_c, server_pod.ip,
                                             8443)
            request = http1.encode_request("POST", "/things")
            yield from kernel_c.user_function(
                thread_c, "ssl_write", request, Direction.EGRESS, fd)
            yield from kernel_c.write(thread_c, fd, tls.encrypt(request))
            ciphertext = yield from kernel_c.read(thread_c, fd)
            plaintext = tls.decrypt(ciphertext)
            yield from kernel_c.user_function(
                thread_c, "ssl_read", plaintext, Direction.INGRESS, fd)
            return plaintext

        result = sim.run_process(sim.spawn(client()))
        assert b"made" in result
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        spans = deepflow.find_spans(process_name="https-client")
        assert len(spans) == 1
        span = spans[0]
        assert span.kind is SpanKind.UPROBE
        assert span.side is SpanSide.CLIENT
        assert span.operation == "POST"
        assert span.resource == "/things"
        assert span.status_code == 201
        # The unmonitored endpoint produced nothing.
        assert deepflow.find_spans(process_name="tls-endpoint") == []
