"""Tests for the static-analysis framework (``tools.analyze``).

Each checker is proven against a *seeded* violation in a synthetic
``repro`` package tree: a deliberately unguarded byte read for
dissector-safety, a direct ``store._memtable`` access from outside
``repro.server`` for confinement, and so on.  A guarded twin of each
seed pins the checker's precision (no false positive on correct code).
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import run_analysis  # noqa: E402
from tools.analyze.findings import Baseline, Finding  # noqa: E402

SPEC_BASE = '''
import abc


class ProtocolSpec(abc.ABC):
    name = ""

    def infer(self, payload: bytes) -> bool:
        return False

    def parse(self, payload: bytes):
        return None
'''


def _seed_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize a synthetic ``repro`` package tree under *tmp_path*.

    The root directory must be named ``repro`` — the project model maps
    the root directory name to the top package.
    """
    root = tmp_path / "repro"
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    for package_dir in {p.parent for p in root.rglob("*.py")} | {root}:
        init = package_dir / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def _analyze(root: Path, checkers: list[str]):
    return run_analysis(root=root, checker_names=checkers,
                        baseline_path=None)


# ---------------------------------------------------------------------------
# Dissector-safety: seeded unguarded byte read


def test_dissector_safety_catches_unguarded_read(tmp_path):
    root = _seed_tree(tmp_path, {
        "protocols/base.py": SPEC_BASE,
        "protocols/bad.py": '''
            from repro.protocols.base import ProtocolSpec


            class BadSpec(ProtocolSpec):
                name = "bad"

                def parse(self, payload: bytes):
                    return payload[5]
            ''',
    })
    report = _analyze(root, ["dissector-safety"])
    rules = [f.rule for f in report.findings]
    assert "ds-unguarded-read" in rules, report.findings
    hit = next(f for f in report.findings if f.rule == "ds-unguarded-read")
    assert hit.path.endswith("protocols/bad.py")
    assert hit.severity == "error"


def test_dissector_safety_accepts_guarded_read(tmp_path):
    root = _seed_tree(tmp_path, {
        "protocols/base.py": SPEC_BASE,
        "protocols/good.py": '''
            from repro.protocols.base import ProtocolSpec


            class GoodSpec(ProtocolSpec):
                name = "good"

                def parse(self, payload: bytes):
                    if len(payload) < 6:
                        return None
                    return payload[5]
            ''',
    })
    report = _analyze(root, ["dissector-safety"])
    assert report.findings == [], [str(f) for f in report.findings]


def test_dissector_safety_catches_broad_except(tmp_path):
    root = _seed_tree(tmp_path, {
        "protocols/base.py": SPEC_BASE,
        "protocols/sloppy.py": '''
            from repro.protocols.base import ProtocolSpec


            class SloppySpec(ProtocolSpec):
                name = "sloppy"

                def parse(self, payload: bytes):
                    try:
                        return payload[:1]
                    except Exception:
                        return None
            ''',
    })
    report = _analyze(root, ["dissector-safety"])
    rules = [f.rule for f in report.findings]
    assert rules == ["ds-broad-except"], report.findings


def test_dissector_safety_catches_stuck_loop(tmp_path):
    root = _seed_tree(tmp_path, {
        "protocols/base.py": SPEC_BASE,
        "protocols/spin.py": '''
            from repro.protocols.base import ProtocolSpec


            class SpinSpec(ProtocolSpec):
                name = "spin"

                def parse(self, payload: bytes):
                    offset = 0
                    total = 0
                    while offset < len(payload):
                        if len(payload) < offset + 1:
                            return None
                        total += payload[offset]
                    return total
            ''',
    })
    report = _analyze(root, ["dissector-safety"])
    rules = [f.rule for f in report.findings]
    assert "ds-loop-progress" in rules, report.findings


# ---------------------------------------------------------------------------
# Confinement: seeded private-state access from outside repro.server


CONFINEMENT_FILES = {
    "server/database.py": '''
        class SpanStore:
            def __init__(self):
                self._memtable = {}

            def insert(self, span):
                self._memtable[span.span_id] = span
        ''',
    "agent/leak.py": '''
        def peek(store):
            return store._memtable
        ''',
}


def test_confinement_catches_external_private_access(tmp_path):
    root = _seed_tree(tmp_path, CONFINEMENT_FILES)
    report = _analyze(root, ["confinement"])
    assert len(report.findings) == 1, report.findings
    hit = report.findings[0]
    assert hit.rule == "confinement"
    assert hit.path.endswith("agent/leak.py")
    assert "_memtable" in hit.message
    assert "SpanStore" in hit.message


def test_confinement_allows_owner_package_and_self(tmp_path):
    root = _seed_tree(tmp_path, {
        "server/database.py": CONFINEMENT_FILES["server/database.py"],
        "server/query.py": '''
            def scan(store):
                return list(store._memtable.values())
            ''',
    })
    report = _analyze(root, ["confinement"])
    assert report.findings == [], [str(f) for f in report.findings]


# ---------------------------------------------------------------------------
# Discipline: runtime-assert rule, suppression, baseline


def test_discipline_flags_bare_assert(tmp_path):
    root = _seed_tree(tmp_path, {
        "agent/check.py": '''
            def validate(x):
                assert x > 0
                return x
            ''',
    })
    report = _analyze(root, ["discipline"])
    rules = [f.rule for f in report.findings]
    assert "runtime-assert" in rules, report.findings


def test_suppression_marker_silences_finding(tmp_path):
    root = _seed_tree(tmp_path, {
        "agent/check.py": '''
            def validate(x):
                assert x > 0  # lint: ok
                return x
            ''',
    })
    report = _analyze(root, ["discipline"])
    assert report.findings == []
    assert report.suppressed_count == 1


def test_baseline_absorbs_known_findings(tmp_path):
    root = _seed_tree(tmp_path, CONFINEMENT_FILES)
    first = _analyze(root, ["confinement"])
    assert len(first.findings) == 1
    baseline_path = tmp_path / "baseline.json"
    Baseline(fingerprints={
        f.fingerprint() for f in first.findings}).save(baseline_path)
    second = run_analysis(root=root, checker_names=["confinement"],
                          baseline_path=baseline_path)
    assert second.findings == []
    assert len(second.baselined) == 1
    assert second.exit_code == 0


def test_baseline_fingerprint_survives_line_shift(tmp_path):
    """Fingerprints omit line numbers, so unrelated edits above a
    baselined finding do not resurface it."""
    root = _seed_tree(tmp_path, CONFINEMENT_FILES)
    first = _analyze(root, ["confinement"])
    (root / "agent" / "leak.py").write_text(textwrap.dedent('''
        """Docstring pushing the access down a few lines."""


        def peek(store):
            return store._memtable
        '''), encoding="utf-8")
    second = _analyze(root, ["confinement"])
    assert (first.findings[0].fingerprint()
            == second.findings[0].fingerprint())
    assert first.findings[0].line != second.findings[0].line


# ---------------------------------------------------------------------------
# Hot-path: the overload guards must stay allocation-free (whole body)


def test_hot_path_flags_allocation_in_overload_guard(tmp_path):
    root = _seed_tree(tmp_path, {
        "agent/overload.py": '''
            class HeadSampler:
                def __init__(self):
                    self._sockets = {}

                def admit(self, socket_id, five_tuple, direction):
                    state = self._sockets.get(socket_id)
                    if state is None:
                        state = [direction, 0, 1, False, direction]
                        self._sockets[socket_id] = state
                    return 1
            ''',
    })
    report = _analyze(root, ["hot-path"])
    rules = [f.rule for f in report.findings]
    assert "hp-alloc-in-guard" in rules, report.findings
    hit = next(f for f in report.findings
               if f.rule == "hp-alloc-in-guard")
    assert hit.severity == "error"
    assert "admit" in hit.function


def test_hot_path_accepts_allocation_free_guard(tmp_path):
    root = _seed_tree(tmp_path, {
        "agent/overload.py": '''
            class HeadSampler:
                def __init__(self):
                    self._sockets = {}

                def admit(self, socket_id, five_tuple, direction):
                    state = self._sockets.get(socket_id)
                    if state is None:
                        state = self._open(socket_id, direction)
                    return 1 if state[2] else 0

                def _open(self, socket_id, direction):
                    state = [direction, 0, 1, False, direction]
                    self._sockets[socket_id] = state
                    return state
            ''',
    })
    report = _analyze(root, ["hot-path"])
    assert report.findings == [], [str(f) for f in report.findings]


def test_hot_path_guard_flags_fstring_and_call(tmp_path):
    root = _seed_tree(tmp_path, {
        "kernel/ebpf.py": '''
            class TokenBucket:
                def __init__(self, rate, burst):
                    self.rate = rate
                    self.tokens = burst

                def allow(self, now):
                    label = f"bucket-{now}"
                    history = list(label)
                    return bool(history)
            ''',
    })
    report = _analyze(root, ["hot-path"])
    rules = sorted(f.rule for f in report.findings)
    assert rules == ["hp-alloc-in-guard", "hp-alloc-in-guard"], \
        report.findings


# ---------------------------------------------------------------------------
# The repo itself and the CLI


def test_repo_has_no_unbaselined_findings():
    report = run_analysis()
    assert report.findings == [], "\n".join(str(f) for f in report.findings)
    assert report.exit_code == 0


def test_cli_json_report_and_exit_code(tmp_path):
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "src/repro",
         "--json", str(out)],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["findings"] == []
    assert set(payload["checkers"]) == {
        "confinement", "discipline", "dissector-safety", "hot-path"}


def test_legacy_lint_shim_reports_only_legacy_rules(tmp_path):
    """tools/lint_repro.py keeps its historical surface: determinism and
    layering only — the framework's newer rules stay out of it."""
    from tools import lint_repro

    source = textwrap.dedent('''
        import time

        def now(x):
            assert x > 0
            return time.time()
        ''')
    violations = lint_repro.lint_source(source, "agent/clock.py", "agent")
    assert [v.rule for v in violations] == ["determinism"]
