"""The determinism/layering lint, run as part of the tier-1 suite.

``tools/lint_repro.py`` turns two DESIGN.md §5 rules into static checks:
no wall-clock or unseeded randomness outside ``repro.sim``, and no
layering violations (in particular no agent/server import of
``repro.apps`` — the "no tracing back-channel" rule).  These tests (a)
keep the shipped tree clean, and (b) pin the lint's detection behaviour
so the invariants cannot silently rot.
"""

import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.lint_repro import (  # noqa: E402
    DEFAULT_ROOT,
    lint_source,
    lint_tree,
)

LINT_CLI = REPO_ROOT / "tools" / "lint_repro.py"


class TestShippedTreeIsClean:
    def test_src_repro_has_no_violations(self):
        violations = lint_tree(DEFAULT_ROOT)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_cli_exits_zero_on_shipped_tree(self):
        proc = subprocess.run(
            [sys.executable, str(LINT_CLI)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestDeterminismRule:
    def test_wall_clock_call_flagged(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        violations = lint_source(source, "agent/x.py", "agent")
        assert len(violations) == 1
        assert violations[0].rule == "determinism"
        assert "time.time" in violations[0].message

    def test_from_import_alias_flagged(self):
        source = ("from time import monotonic as mono\n"
                  "def f():\n    return mono()\n")
        violations = lint_source(source, "server/x.py", "server")
        assert [v.rule for v in violations] == ["determinism"]

    def test_module_level_random_flagged(self):
        source = "import random\nJITTER = random.random()\n"
        violations = lint_source(source, "network/x.py", "network")
        assert [v.rule for v in violations] == ["determinism"]

    def test_sim_package_exempt(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(source, "sim/clock.py", "sim") == []

    def test_annotation_not_flagged(self):
        source = ("import random\n"
                  "def f(rng: random.Random) -> int:\n"
                  "    return rng.randrange(4)\n")
        assert lint_source(source, "core/x.py", "core") == []

    def test_lint_ok_suppression(self):
        source = ("import time\n"
                  "def f():\n"
                  "    return time.time()  # lint: ok\n")
        assert lint_source(source, "agent/x.py", "agent") == []


class TestLayeringRule:
    def test_agent_importing_apps_is_back_channel(self):
        source = "from repro.apps.http_app import HTTPServerApp\n"
        violations = lint_source(source, "agent/x.py", "agent")
        assert len(violations) == 1
        assert violations[0].rule == "layering"
        assert "back-channel" in violations[0].message

    def test_server_importing_apps_is_back_channel(self):
        source = "import repro.apps.topology\n"
        violations = lint_source(source, "server/x.py", "server")
        assert [v.rule for v in violations] == ["layering"]

    def test_function_level_import_flagged(self):
        source = ("def sneak():\n"
                  "    from repro.apps import topology\n"
                  "    return topology\n")
        violations = lint_source(source, "agent/x.py", "agent")
        assert [v.rule for v in violations] == ["layering"]

    def test_allowed_import_passes(self):
        source = "from repro.kernel.ebpf import BPFProgram\n"
        assert lint_source(source, "agent/x.py", "agent") == []


class TestSeededViolationTripsCLI:
    """End-to-end: inject time.time() into a copy of the tree → exit 1."""

    def test_cli_exits_nonzero_on_seeded_violation(self, tmp_path):
        seeded = tmp_path / "repro"
        shutil.copytree(DEFAULT_ROOT, seeded)
        victim = seeded / "agent" / "seeded_violation.py"
        victim.write_text(
            "import time\n\n\ndef now() -> float:\n"
            "    return time.time()\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(LINT_CLI), str(seeded)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 1
        assert "seeded_violation.py" in proc.stdout
        assert "determinism" in proc.stdout
