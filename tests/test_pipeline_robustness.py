"""Failure injection and robustness tests for the agent pipeline.

Stability is one of the paper's five requirements (Table 1): the agent
must degrade gracefully — drop data, never crash or corrupt — under
buffer overflow, buggy programs, message loss, chunked messages, and
live attach/detach.
"""

import pytest

from repro.agent.agent import AgentConfig, DeepFlowAgent
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import SpanKind, SpanSide
from repro.kernel.ebpf import BPFProgram
from repro.network.faults import DropFault
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def small_world(seed=91, agent_config=None):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=2)
    client_pod = builder.add_pod(0, "client-pod")
    service_pod = builder.add_pod(1, "svc-pod")
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = DeepFlowAgent(node.kernel, server.register_agent(),
                              server=server, node=node,
                              config=agent_config)
        agent.deploy()
        agents.append(agent)
    service = HttpService("svc", service_pod.node, 9000, pod=service_pod,
                          service_time=0.001)

    @service.route("/")
    def home(worker, request):
        yield from worker.work(0.0001)
        return Response(200)

    service.start()
    return sim, cluster, network, server, agents, client_pod, service_pod


def drive(sim, agents, client_pod, service_pod, rate=20, duration=0.5):
    generator = LoadGenerator(client_pod.node, service_pod.ip, 9000,
                              rate=rate, duration=duration, connections=2,
                              pod=client_pod, name="client")
    report = sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    for agent in agents:
        agent.flush(expire=True)
    return report


class TestPerfBufferOverflow:
    def test_overflow_drops_records_but_agent_survives(self):
        config = AgentConfig(perf_buffer_capacity=8)
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world(agent_config=config)
        report = drive(sim, agents, client_pod, service_pod, rate=40,
                       duration=0.5)
        assert report.errors == 0  # the app is unaffected
        total_dropped = sum(agent.perf.dropped for agent in agents)
        assert total_dropped > 0
        # Spans were lost, not corrupted: whatever was stored is valid.
        for span in server.store.all_spans():
            assert span.end_time >= span.start_time

    def test_ample_buffer_drops_nothing(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world()
        drive(sim, agents, client_pod, service_pod)
        assert all(agent.perf.dropped == 0 for agent in agents)


class TestBuggyProgramContainment:
    def test_third_party_program_crash_does_not_break_tracing(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world()

        def buggy(ctx):
            raise RuntimeError("bug in third-party BPF program")

        program = BPFProgram("buggy", buggy)
        for node in cluster.nodes:
            node.kernel.hooks.attach("sys_enter_read", program)
        report = drive(sim, agents, client_pod, service_pod, rate=10,
                       duration=0.3)
        assert report.errors == 0
        assert program.runtime_faults > 0
        # DeepFlow's own spans still complete.
        assert server.find_spans(process_name="svc")


class TestAttachDetachLifecycle:
    def test_redeploy_resumes_collection(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world()
        drive(sim, agents, client_pod, service_pod, rate=10, duration=0.2)
        first_count = len(server.store)
        assert first_count > 0
        for agent in agents:
            agent.undeploy()
        drive(sim, agents, client_pod, service_pod, rate=10, duration=0.2)
        assert len(server.store) == first_count
        for agent in agents:
            agent.deploy()
        drive(sim, agents, client_pod, service_pod, rate=10, duration=0.2)
        assert len(server.store) > first_count

    def test_double_deploy_rejected(self):
        sim, cluster, network, server, agents, *_ = small_world()
        with pytest.raises(RuntimeError, match="already deployed"):
            agents[0].deploy()

    def test_attach_mid_traffic_misses_inflight_enter(self):
        """Attaching while a syscall is blocked: its exit has no enter —
        the record is skipped, nothing crashes (the documented race)."""
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world()
        for agent in agents:
            agent.undeploy()

        kernel = network.kernel_for_node(client_pod.node.name)
        process = kernel.create_process("early", client_pod.ip)
        thread = kernel.create_thread(process)

        def early_client():
            fd = yield from kernel.connect(thread, service_pod.ip, 9000)
            from repro.protocols import http1
            yield from kernel.write(thread, fd,
                                    http1.encode_request("GET", "/"))
            # Blocked in read when the agent attaches below.
            return (yield from kernel.read(thread, fd))

        client = sim.spawn(early_client())
        sim.run(until=0.0005)  # connect done, read blocked
        for agent in agents:
            agent.deploy()
        result = sim.run_process(client)
        assert result  # the app is fine
        sim.run(until=sim.now + 0.2)
        for agent in agents:
            agent.flush()
        # No half-merged garbage: any span stored is well-formed.
        for span in server.store.all_spans():
            assert span.end_time >= span.start_time


class TestPollingMode:
    def test_background_polling_ships_spans(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world()
        for agent in agents:
            agent.start_polling(interval=0.01)
        generator = LoadGenerator(client_pod.node, service_pod.ip, 9000,
                                  rate=20, duration=0.3, connections=2,
                                  pod=client_pod, name="client")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.1)  # pollers run on their own
        assert report.errors == 0
        assert len(server.store) > 0
        for agent in agents:
            agent.stop_polling()


class TestChunkedMessages:
    def test_multi_syscall_message_produces_single_span(self):
        """§3.3.1: only the first syscall of a message is processed;
        later chunks are absorbed as continuations."""
        sim = Simulator(seed=92)
        builder = ClusterBuilder(node_count=2)
        client_pod = builder.add_pod(0, "client-pod")
        service_pod = builder.add_pod(1, "svc-pod")
        cluster = builder.build()
        network = Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        service = HttpService("svc", service_pod.node, 9000,
                              pod=service_pod, service_time=0.001)

        @service.route("/upload")
        def upload(worker, request):
            yield from worker.work(0.0001)
            return Response(200, body=b"stored")

        service.start()
        kernel = network.kernel_for_node(client_pod.node.name)
        process = kernel.create_process("uploader", client_pod.ip)
        thread = kernel.create_thread(process)

        from repro.apps.runtime import WorkerContext

        class _Shim:
            pass

        shim = _Shim()
        shim.kernel = kernel
        shim.ingress_abi = "read"
        shim.egress_abi = "write"
        shim.sim = sim
        worker = WorkerContext(shim, thread, None)

        def uploader():
            body = b"x" * 4000
            response = yield from worker.call_http(
                service_pod.ip, 9000, "POST", "/upload", body=body,
                chunk_size=512)  # 8+ syscalls for one message
            return response

        response = sim.run_process(sim.spawn(uploader()))
        assert response.status_code == 200
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        uploader_spans = server.find_spans(process_name="uploader")
        assert len(uploader_spans) == 1
        span = uploader_spans[0]
        assert span.side is SpanSide.CLIENT
        # The request byte count covers every chunk, not just the first.
        assert span.request_bytes > 4000
        svc_spans = server.find_spans(process_name="svc")
        assert len(svc_spans) == 1
        assert svc_spans[0].request_bytes > 4000


class TestLossyNetwork:
    def test_retransmissions_do_not_duplicate_spans(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world(seed=93)
        # Tap the path and make it lossy: captured duplicates must be
        # deduplicated by (direction, seq).
        path = network.route(client_pod.ip, service_pod.ip)
        for device in path:
            agents[0].enable_capture(device)
        cluster.tor.add_fault(DropFault(0.3))
        report = drive(sim, agents, client_pod, service_pod, rate=10,
                       duration=0.4)
        assert report.errors == 0
        flow_metrics = network.metrics.all()
        assert sum(m.retransmissions for m in flow_metrics) > 0
        assert agents[0].flow_builder.duplicates > 0
        # Exactly one network span per (device, message) pair.
        net_spans = [span for span in server.store.all_spans()
                     if span.kind is SpanKind.NETWORK]
        keys = [(span.device_name, span.flow_key, span.req_tcp_seq)
                for span in net_spans]
        assert len(keys) == len(set(keys))

    def test_spans_carry_retransmission_metrics(self):
        sim, cluster, network, server, agents, client_pod, service_pod = \
            small_world(seed=94)
        cluster.tor.add_fault(DropFault(0.3))
        drive(sim, agents, client_pod, service_pod, rate=10, duration=0.4)
        spans = server.find_spans(process_name="svc")
        assert any(span.metrics.get("tcp.retransmissions", 0) > 0
                   for span in spans)
