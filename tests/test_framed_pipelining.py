"""Pipelined binary-framed requests (Kafka, Dubbo) split correctly."""

import pytest

from repro.apps.extra_services import DubboService, KafkaService
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import dubbo, kafka
from repro.sim.engine import Simulator


def _world(seed):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=2)
    client_pod = builder.add_pod(0, "c")
    svc_pod = builder.add_pod(1, "s")
    network = Network(sim, builder.build())
    kernel = network.kernel_for_node(client_pod.node.name)
    process = kernel.create_process("client", client_pod.ip)
    thread = kernel.create_thread(process)
    return sim, svc_pod, kernel, thread


def test_kafka_pipelined_burst_split(seed=63):
    sim, svc_pod, kernel, thread = _world(seed)
    broker = KafkaService("kafka", svc_pod.node, 9092, pod=svc_pod)
    broker.start()

    def client():
        fd = yield from kernel.connect(thread, svc_pod.ip, 9092)
        burst = (kafka.encode_request(kafka.API_PRODUCE, 1, "t1")
                 + kafka.encode_request(kafka.API_PRODUCE, 2, "t2")
                 + kafka.encode_request(kafka.API_PRODUCE, 3, "t3"))
        yield from kernel.write(thread, fd, burst)
        replies = []
        buffer = b""
        while len(replies) < 3:
            buffer += yield from kernel.read(thread, fd)
            while len(buffer) >= 4:
                size = int.from_bytes(buffer[:4], "big")
                if len(buffer) < size + 4:
                    break
                replies.append(kafka.KafkaSpec().parse(buffer[:size + 4]))
                buffer = buffer[size + 4:]
        return replies

    replies = sim.run_process(sim.spawn(client()))
    assert [reply.stream_id for reply in replies] == [1, 2, 3]
    assert all(reply.status == "ok" for reply in replies)
    assert broker.topics == {"t1": 1, "t2": 1, "t3": 1}


def test_dubbo_pipelined_burst_split(seed=64):
    sim, svc_pod, kernel, thread = _world(seed)
    provider = DubboService("dubbo", svc_pod.node, 20880, pod=svc_pod)
    provider.register_method("ping", b"pong")
    provider.start()

    def client():
        fd = yield from kernel.connect(thread, svc_pod.ip, 20880)
        burst = (dubbo.encode_request(10, "svc", "ping")
                 + dubbo.encode_request(11, "svc", "ping"))
        yield from kernel.write(thread, fd, burst)
        replies = []
        buffer = b""
        while len(replies) < 2:
            buffer += yield from kernel.read(thread, fd)
            while len(buffer) >= 16:
                body_len = int.from_bytes(buffer[12:16], "big")
                if len(buffer) < 16 + body_len:
                    break
                replies.append(
                    dubbo.DubboSpec().parse(buffer[:16 + body_len]))
                buffer = buffer[16 + body_len:]
        return replies

    replies = sim.run_process(sim.spawn(client()))
    assert [reply.stream_id for reply in replies] == [10, 11]
    assert provider.invocations == 2
