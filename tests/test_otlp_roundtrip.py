"""Property tests on the canonical OTLP/JSON export form.

Two invariants the continuous pipeline leans on, checked over
adversarial span populations:

* **Fixed point.**  ``export -> decode -> re-export`` must reproduce
  the original payload byte-for-byte (after JSON round-trip), so a
  downstream consumer that validates-then-forwards is lossless.
* **Attribute conventions.**  Every exported attribute key is either an
  exact entry of :data:`repro.core.export.SPAN_ATTRIBUTE_CONVENTIONS`
  or namespaced under :data:`repro.core.export.SPAN_ATTRIBUTE_PREFIXES`
  with the declared value type — no unreviewed keys can leak into the
  export surface.

Plus deterministic negative tests: corrupted payloads must fail the
schema decoder with :class:`repro.core.export.OtlpDecodeError`, never
decode loosely.
"""

import copy
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.export import (
    OtlpDecodeError,
    SPAN_ATTRIBUTE_CONVENTIONS,
    SPAN_ATTRIBUTE_PREFIXES,
    SPAN_KIND_VALUES,
    STATUS_CODE_VALUES,
    decode_otlp_json,
    decode_otlp_metrics,
    decompose_trace,
    encode_decoded,
    metrics_to_otlp_json,
    span_attribute_tuples,
    trace_to_otlp_json,
)
from repro.core.ids import IdAllocator
from repro.core.metrics import PipelineMetrics
from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.server.assembler import assign_parents

_ids = IdAllocator(13)

_TYPE_OF_VALUE = {str: "string", int: "int", float: "double"}


@st.composite
def export_span(draw):
    """A span exercising every branch of the attribute builder."""
    side = draw(st.sampled_from([SpanSide.CLIENT, SpanSide.SERVER,
                                 SpanSide.NETWORK, SpanSide.APP]))
    kind = draw(st.sampled_from(list(SpanKind)))
    start = draw(st.floats(min_value=0.0, max_value=100.0,
                           allow_nan=False))
    duration = draw(st.floats(min_value=0.0, max_value=2.0,
                              allow_nan=False))
    protocol = draw(st.sampled_from(
        ["", "http", "http2", "grpc", "mysql", "redis", "dns",
         "amqp", "kafka", "mqtt"]))
    status = draw(st.sampled_from(["", "ok", "error"]))
    tags = draw(st.dictionaries(
        st.text(alphabet="abcdefghijk._-", min_size=1, max_size=8),
        st.text(max_size=12), max_size=4))
    metrics = draw(st.dictionaries(
        st.text(alphabet="lmnopqrstuv._-", min_size=1, max_size=8),
        st.floats(allow_nan=False, allow_infinity=False,
                  width=32), max_size=4))
    if status == "error" and draw(st.booleans()):
        tags["error.kind"] = draw(st.sampled_from(
            ["timeout", "reset", ""]))
    return Span(
        span_id=_ids.next_id(),
        kind=kind, side=side,
        start_time=start, end_time=start + duration,
        host=draw(st.sampled_from(["", "node-1", "node-2"])),
        process_name=draw(st.sampled_from(["", "svc-a", "svc-b"])),
        pid=draw(st.integers(min_value=0, max_value=1 << 20)),
        device_name=draw(st.sampled_from(["", "eth0"])),
        protocol=protocol,
        operation=draw(st.sampled_from(["", "GET", "SELECT"])),
        resource=draw(st.sampled_from(["", "/api/items", "orders"])),
        status=status,
        status_code=draw(st.one_of(
            st.none(), st.integers(min_value=0, max_value=599))),
        request_bytes=draw(st.integers(min_value=0, max_value=1 << 30)),
        response_bytes=draw(st.integers(min_value=0, max_value=1 << 30)),
        systrace_id=draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=5))),
        x_request_id=draw(st.one_of(
            st.none(), st.sampled_from(["x1", "x2"]))),
        tags=tags, metrics=metrics,
    )


def _assembled_trace(spans):
    assign_parents(spans)
    return Trace(spans)


class TestRoundTripProperties:
    @given(spans=st.lists(export_span(), min_size=1, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_export_decode_reexport_fixed_point(self, spans):
        trace = _assembled_trace(spans)
        payload = trace_to_otlp_json(trace)
        # The wire form must survive JSON serialization untouched.
        wire = json.loads(json.dumps(payload))
        decoded = decode_otlp_json(wire)
        assert encode_decoded(decoded) == payload
        # And the decoded structure is exactly the decomposed trace —
        # decode is the inverse of encode, not a lossy projection.
        assert decoded == decompose_trace(trace)

    @given(spans=st.lists(export_span(), min_size=1, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_attribute_keys_follow_conventions(self, spans):
        for span in spans:
            attrs = span_attribute_tuples(span)
            keys = [key for key, _type, _value in attrs]
            assert keys == sorted(keys)
            assert len(set(keys)) == len(keys)
            for key, value_type, value in attrs:
                if key in SPAN_ATTRIBUTE_CONVENTIONS:
                    expected = SPAN_ATTRIBUTE_CONVENTIONS[key][0]
                else:
                    prefix = next(
                        (p for p in SPAN_ATTRIBUTE_PREFIXES
                         if key.startswith(p)), None)
                    assert prefix is not None, \
                        f"unreviewed attribute key {key!r}"
                    expected = SPAN_ATTRIBUTE_PREFIXES[prefix][0]
                assert value_type == expected
                assert isinstance(
                    value, {"string": str, "int": int,
                            "double": float}[value_type])

    @given(spans=st.lists(export_span(), min_size=1, max_size=12))
    @settings(max_examples=120, deadline=None)
    def test_payload_schema_invariants(self, spans):
        trace = _assembled_trace(spans)
        payload = trace_to_otlp_json(trace)
        seen = 0
        for resource in payload["resourceSpans"]:
            for scope in resource["scopeSpans"]:
                for span in scope["spans"]:
                    seen += 1
                    assert len(span["traceId"]) == 32
                    assert len(span["spanId"]) == 16
                    assert span["parentSpanId"] == "" \
                        or len(span["parentSpanId"]) == 16
                    assert span["kind"] in SPAN_KIND_VALUES
                    assert span["status"]["code"] in STATUS_CODE_VALUES
                    start = int(span["startTimeUnixNano"])
                    assert int(span["endTimeUnixNano"]) >= start
        assert seen == len(spans)


def _first_span(payload):
    return payload["resourceSpans"][0]["scopeSpans"][0]["spans"][0]


@pytest.fixture()
def valid_payload():
    span = Span(span_id=7, kind=SpanKind.SYSCALL, side=SpanSide.SERVER,
                start_time=1.0, end_time=2.0, host="n1",
                process_name="svc", protocol="http", operation="GET",
                resource="/", status="ok", status_code=200,
                tags={"pod": "p1"}, metrics={"rtt": 0.5})
    assign_parents([span])
    return trace_to_otlp_json(Trace([span]))


class TestDecoderRejections:
    """Every corruption class must raise OtlpDecodeError."""

    def _reject(self, payload):
        with pytest.raises(OtlpDecodeError):
            decode_otlp_json(payload)

    def test_valid_payload_decodes(self, valid_payload):
        decode_otlp_json(valid_payload)
        decode_otlp_json(json.dumps(valid_payload))

    def test_not_json(self):
        self._reject("{not json")

    def test_unexpected_top_level_key(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        bad["extra"] = 1
        self._reject(bad)

    def test_uppercase_hex_id(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["spanId"] = "000000000000000A"
        self._reject(bad)

    def test_short_trace_id(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["traceId"] = "abc"
        self._reject(bad)

    def test_int64_as_number(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["startTimeUnixNano"] = 10 ** 9
        self._reject(bad)

    def test_non_canonical_int64(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["startTimeUnixNano"] = "0001"
        self._reject(bad)

    def test_end_before_start(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["endTimeUnixNano"] = "0"
        self._reject(bad)

    def test_unknown_span_kind(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["kind"] = "SPAN_KIND_BANANA"
        self._reject(bad)

    def test_unknown_status_code(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["status"]["code"] = "STATUS_CODE_MAYBE"
        self._reject(bad)

    def test_unsorted_attribute_keys(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        attrs = _first_span(bad)["attributes"]
        attrs[0], attrs[-1] = attrs[-1], attrs[0]
        self._reject(bad)

    def test_attribute_with_two_typed_values(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["attributes"][0]["value"] = {
            "stringValue": "x", "intValue": "1"}
        self._reject(bad)

    def test_non_finite_double(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        _first_span(bad)["attributes"].append(
            {"key": "zzz", "value": {"doubleValue": float("inf")}})
        self._reject(bad)

    def test_missing_span_field(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        del _first_span(bad)["status"]
        self._reject(bad)

    def test_two_scopes_rejected(self, valid_payload):
        bad = copy.deepcopy(valid_payload)
        scopes = bad["resourceSpans"][0]["scopeSpans"]
        scopes.append(copy.deepcopy(scopes[0]))
        self._reject(bad)


class TestMetricsRoundTrip:
    def test_metrics_payload_decodes_to_registry_values(self):
        registry = PipelineMetrics()
        registry.counter("a.count").inc(41)
        registry.counter("a.count").inc()
        registry.gauge("b.level").set(2.5)
        hist = registry.histogram("c.lag_s")
        for value in (0.001, 0.002, 0.5, 90.0):
            hist.observe(value)
        payload = metrics_to_otlp_json(registry, now=12.5)
        summary = decode_otlp_metrics(json.loads(json.dumps(payload)))
        assert summary["a.count"] == {"kind": "counter", "value": 42}
        assert summary["b.level"] == {"kind": "gauge", "value": 2.5}
        hist_summary = summary["c.lag_s"]
        assert hist_summary["kind"] == "histogram"
        assert hist_summary["count"] == 4
        assert hist_summary["sum"] == pytest.approx(90.503)
        assert sum(hist_summary["buckets"]) == 4

    def test_corrupt_metrics_payload_rejected(self):
        registry = PipelineMetrics()
        registry.counter("a.count").inc()
        payload = metrics_to_otlp_json(registry, now=1.0)
        entry = payload["resourceMetrics"][0]["scopeMetrics"][0]
        entry["metrics"][0]["sum"]["dataPoints"][0]["asInt"] = 1
        with pytest.raises(OtlpDecodeError):
            decode_otlp_metrics(payload)
