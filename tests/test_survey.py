"""Unit tests for the Appendix C survey dataset and derivations."""

from repro.survey.questionnaire import (
    ADVANTAGE_RUBRIC,
    DURATION_ORDER,
    LOC_ORDER,
    Q11_ANSWERS,
    RAW_ANSWERS,
    fig9_effort_series,
    fig10a_locate_series,
    fig10b_advantages,
    improvement_summary,
)


class TestRawData:
    def test_ten_questions_ten_answers_each(self):
        assert sorted(RAW_ANSWERS) == list(range(1, 11))
        for question, answers in RAW_ANSWERS.items():
            assert len(answers) == 10, question

    def test_q1_open_source_split(self):
        # Table 4: seven open-source (O), three self-developed (S).
        assert RAW_ANSWERS[1].count("O") == 7
        assert RAW_ANSWERS[1].count("S") == 3

    def test_q3_all_use_two_to_five_languages(self):
        assert set(RAW_ANSWERS[3]) == {"2-5"}

    def test_q11_has_ten_entries_one_empty(self):
        assert len(Q11_ANSWERS) == 10
        assert Q11_ANSWERS.count("") == 1  # respondent 9 left it blank


class TestDerivations:
    def test_fig9_buckets_cover_all_answers(self):
        series = fig9_effort_series()
        assert sum(series["time_per_component"].values()) == 10
        assert sum(series["loc_per_component"].values()) == 10
        assert list(series["time_per_component"]) == list(DURATION_ORDER)
        assert list(series["loc_per_component"]) == list(LOC_ORDER)

    def test_fig10a_buckets_cover_all_answers(self):
        series = fig10a_locate_series()
        assert sum(series["before_deepflow"].values()) == 10
        assert sum(series["with_deepflow"].values()) == 10

    def test_fig10b_rubric_counts_match_section4(self):
        counts = fig10b_advantages()
        assert counts == {"network coverage": 5,
                          "non-intrusive instrumentation": 4,
                          "closed-source tracing": 3}

    def test_rubric_categories_are_stable(self):
        assert set(ADVANTAGE_RUBRIC) == set(fig10b_advantages())

    def test_improvement_summary(self):
        summary = improvement_summary()
        assert summary["respondents"] == 10
        assert summary["users_spending_hours_or_days_instrumenting"] == 6
        assert 0 < summary["users_locating_faster"] <= 10
