"""Tests for the workload applications and the load generator."""

import pytest

from repro.apps import bookinfo, springboot
from repro.apps.loadgen import LoadGenerator
from repro.apps.proxy import NginxProxy
from repro.apps.runtime import HttpService, Response
from repro.apps.services import DnsService, MysqlService, RedisService
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import dns as dns_proto
from repro.protocols import mysql as mysql_proto
from repro.protocols import redis as redis_proto
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def simple_world(node_count=2, seed=47):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=node_count)
    return sim, builder


def run_client(sim, network, pod, requests):
    """Run an ad-hoc client process; *requests* is a generator factory
    taking (kernel, thread) and returning the client body."""
    kernel = network.kernel_for_node(pod.node.name)
    process = kernel.create_process("client", pod.ip)
    thread = kernel.create_thread(process)
    return sim.run_process(sim.spawn(requests(kernel, thread)))


class TestBackendServices:
    def test_dns_resolves_and_nxdomain(self):
        sim, builder = simple_world()
        client_pod = builder.add_pod(0, "c")
        dns_pod = builder.add_pod(1, "dns")
        network = Network(sim, builder.build())
        service = DnsService("coredns", dns_pod.node, 53, pod=dns_pod)
        service.add_record("svc.local", "10.9.9.9")
        service.start()

        def client(kernel, thread):
            fd = yield from kernel.connect(thread, dns_pod.ip, 53)
            yield from kernel.sendto(thread, fd,
                                     dns_proto.encode_query(1, "svc.local"))
            good = yield from kernel.recvfrom(thread, fd)
            yield from kernel.sendto(thread, fd,
                                     dns_proto.encode_query(2, "nope"))
            bad = yield from kernel.recvfrom(thread, fd)
            return good, bad

        good, bad = run_client(sim, network, client_pod, client)
        assert dns_proto.decode_address(good) == "10.9.9.9"
        parsed = dns_proto.DnsSpec().parse(bad)
        assert parsed.status_code == dns_proto.RCODE_NXDOMAIN

    def test_redis_get_set_del(self):
        sim, builder = simple_world()
        client_pod = builder.add_pod(0, "c")
        redis_pod = builder.add_pod(1, "r")
        network = Network(sim, builder.build())
        service = RedisService("redis", redis_pod.node, 6379,
                               pod=redis_pod)
        service.start()

        def client(kernel, thread):
            fd = yield from kernel.connect(thread, redis_pod.ip, 6379)
            yield from kernel.write(
                thread, fd, redis_proto.encode_request("SET", "k", "v1"))
            yield from kernel.read(thread, fd)
            yield from kernel.write(
                thread, fd, redis_proto.encode_request("GET", "k"))
            got = yield from kernel.read(thread, fd)
            yield from kernel.write(
                thread, fd, redis_proto.encode_request("DEL", "k"))
            deleted = yield from kernel.read(thread, fd)
            yield from kernel.write(
                thread, fd, redis_proto.encode_request("GET", "k"))
            missing = yield from kernel.read(thread, fd)
            return got, deleted, missing

        got, deleted, missing = run_client(sim, network, client_pod,
                                           client)
        assert redis_proto.decode_response(got) == "v1"
        assert redis_proto.decode_response(deleted) == "1"
        assert missing == b"$-1\r\n"
        assert service.hits == 1 and service.misses == 1

    def test_mysql_select_and_missing_table(self):
        sim, builder = simple_world()
        client_pod = builder.add_pod(0, "c")
        db_pod = builder.add_pod(1, "db")
        network = Network(sim, builder.build())
        service = MysqlService("mysql", db_pod.node, 3306, pod=db_pod)
        service.add_table("users", rows=5)
        service.fail_table = "ghosts"
        service.start()

        def client(kernel, thread):
            fd = yield from kernel.connect(thread, db_pod.ip, 3306)
            yield from kernel.write(
                thread, fd,
                mysql_proto.encode_query("SELECT * FROM users"))
            ok = yield from kernel.read(thread, fd)
            yield from kernel.write(
                thread, fd,
                mysql_proto.encode_query("SELECT * FROM ghosts"))
            err = yield from kernel.read(thread, fd)
            return ok, err

        ok, err = run_client(sim, network, client_pod, client)
        spec = mysql_proto.MysqlSpec()
        assert spec.parse(ok).status == "ok"
        parsed_err = spec.parse(err)
        assert parsed_err.status == "error"
        assert parsed_err.status_code == 1146
        assert service.queries_served == 2


class TestProxy:
    def test_round_robin_over_upstreams(self):
        sim, builder = simple_world(node_count=3)
        lg_pod = builder.add_pod(0, "lg")
        proxy_pod = builder.add_pod(0, "px")
        a_pod = builder.add_pod(1, "a")
        b_pod = builder.add_pod(2, "b")
        network = Network(sim, builder.build())
        hits = {"a": 0, "b": 0}
        for key, pod in (("a", a_pod), ("b", b_pod)):
            service = HttpService(key, pod.node, 9000, pod=pod)

            def handler(worker, request, _key=key):
                hits[_key] += 1
                yield from worker.work(0.0001)
                return Response(200)

            service.route("/")(handler)
            service.start()
        proxy = NginxProxy("nginx", proxy_pod.node, 8080, pod=proxy_pod)
        proxy.add_route("/", [(a_pod.ip, 9000), (b_pod.ip, 9000)])
        proxy.start()
        generator = LoadGenerator(lg_pod.node, proxy_pod.ip, 8080,
                                  rate=20, duration=0.5, connections=1,
                                  pod=lg_pod)
        report = sim.run_process(generator.run())
        assert report.errors == 0
        assert hits["a"] == pytest.approx(hits["b"], abs=1)
        assert hits["a"] + hits["b"] == report.completed

    def test_proxy_injects_x_request_id(self):
        sim, builder = simple_world()
        lg_pod = builder.add_pod(0, "lg")
        proxy_pod = builder.add_pod(0, "px")
        up_pod = builder.add_pod(1, "up")
        network = Network(sim, builder.build())
        seen = []
        service = HttpService("up", up_pod.node, 9000, pod=up_pod)

        @service.route("/")
        def handler(worker, request):
            seen.append(request.headers.get("x-request-id"))
            yield from worker.work(0.0001)
            return Response(200)

        service.start()
        proxy = NginxProxy("nginx", proxy_pod.node, 8080, pod=proxy_pod)
        proxy.add_route("/", [(up_pod.ip, 9000)])
        proxy.start()
        generator = LoadGenerator(lg_pod.node, proxy_pod.ip, 8080,
                                  rate=10, duration=0.3, connections=1,
                                  pod=lg_pod)
        report = sim.run_process(generator.run())
        assert report.completed > 0
        assert all(value for value in seen)
        assert len(set(seen)) == len(seen)  # unique per request

    def test_proxy_502_when_no_upstream(self):
        sim, builder = simple_world()
        lg_pod = builder.add_pod(0, "lg")
        proxy_pod = builder.add_pod(1, "px")
        network = Network(sim, builder.build())
        proxy = NginxProxy("nginx", proxy_pod.node, 8080, pod=proxy_pod)
        proxy.start()
        generator = LoadGenerator(lg_pod.node, proxy_pod.ip, 8080,
                                  rate=5, duration=0.2, connections=1,
                                  pod=lg_pod)
        report = sim.run_process(generator.run())
        assert report.completed == 0
        assert report.errors == report.sent


class TestLoadGenerator:
    def _echo_target(self, service_time=0.0005):
        sim, builder = simple_world()
        lg_pod = builder.add_pod(0, "lg")
        svc_pod = builder.add_pod(1, "svc")
        network = Network(sim, builder.build())
        service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                              service_time=service_time)

        @service.route("/")
        def handler(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        service.start()
        return sim, lg_pod, svc_pod

    def test_constant_rate_is_respected(self):
        sim, lg_pod, svc_pod = self._echo_target()
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=50,
                                  duration=1.0, connections=4, pod=lg_pod)
        report = sim.run_process(generator.run())
        assert report.sent == 50
        assert report.throughput == pytest.approx(50, rel=0.1)

    def test_coordinated_omission_correction(self):
        """A stalling server inflates recorded latency, not just spacing."""
        sim, lg_pod, svc_pod = self._echo_target(service_time=0.1)
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=40,
                                  duration=0.5, connections=1, pod=lg_pod)
        report = sim.run_process(generator.run())
        # Offered 40/s on one connection of a 10/s server: queueing delay
        # must appear in the tail.
        assert report.p90 > 0.2

    def test_percentiles_ordered(self):
        sim, lg_pod, svc_pod = self._echo_target()
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=30,
                                  duration=0.5, connections=2, pod=lg_pod)
        report = sim.run_process(generator.run())
        assert report.p50 <= report.p90 <= report.p99

    def test_invalid_parameters_rejected(self):
        sim, lg_pod, svc_pod = self._echo_target()
        with pytest.raises(ValueError):
            LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=0,
                          duration=1.0)


class TestSpringBootDemo:
    def test_end_to_end_requests_succeed(self):
        demo = springboot.build()
        generator = LoadGenerator(
            demo.pods["loadgen"].node, demo.entry_ip, demo.entry_port,
            rate=20, duration=0.5, connections=4,
            pod=demo.pods["loadgen"], path="/api/orders")
        report = demo.sim.run_process(generator.run())
        assert report.errors == 0
        assert report.completed == report.sent
        assert demo.components["redis"].hits >= 1
        assert demo.components["mysql"].queries_served >= 1

    def test_deepflow_traces_cover_all_tiers(self):
        sim = Simulator(seed=3)
        demo = springboot.build(sim)
        server = DeepFlowServer()
        agents = []
        for node in demo.cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        generator = LoadGenerator(
            demo.pods["loadgen"].node, demo.entry_ip, demo.entry_port,
            rate=10, duration=0.4, connections=2,
            pod=demo.pods["loadgen"], path="/api/orders", name="loadgen")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        # loadgen->gw, gw->order, order->redis, order->user, order->mysql:
        # five sessions observed from both ends.
        assert len(trace) == 10
        protocols = {span.protocol for span in trace}
        assert protocols == {"http", "redis", "mysql"}
        assert len(trace.roots()) == 1


class TestBookinfo:
    def test_end_to_end_requests_succeed(self):
        app = bookinfo.build()
        generator = LoadGenerator(
            app.pods["loadgen"].node, app.entry_ip, app.entry_port,
            rate=10, duration=0.5, connections=2,
            pod=app.pods["loadgen"], path="/productpage")
        report = app.sim.run_process(generator.run())
        assert report.errors == 0
        assert report.completed == report.sent

    def test_deepflow_trace_includes_sidecars(self):
        sim = Simulator(seed=4)
        app = bookinfo.build(sim)
        server = DeepFlowServer()
        agents = []
        for node in app.cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        generator = LoadGenerator(
            app.pods["loadgen"].node, app.entry_ip, app.entry_port,
            rate=8, duration=0.4, connections=2,
            pod=app.pods["loadgen"], path="/productpage", name="loadgen")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        names = {span.process_name for span in trace}
        assert {"istio-ingress", "productpage-sidecar", "productpage",
                "details-sidecar", "details", "reviews-sidecar",
                "reviews", "ratings-sidecar", "ratings"} <= names
        # 9 sessions observed from both ends = 18 eBPF spans.
        assert len(trace) == 18
        assert len(trace.roots()) == 1
