"""HTTP/1.1 pipelining: coalesced requests served and traced correctly.

A pipelined client writes several requests back to back; the server may
receive them in a single read.  The runtime must split at message
boundaries, answer in order, and the agent must still produce one span
per exchange (pipeline session matching, §3.3.1).
"""

import pytest

from repro.apps.runtime import (
    HttpService,
    Response,
    http_message_complete,
    http_message_length,
)
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


class TestMessageSplitting:
    def test_length_of_complete_message(self):
        raw = http1.encode_request("POST", "/x", body=b"hello")
        assert http_message_length(raw) == len(raw)

    def test_length_none_for_partial(self):
        raw = http1.encode_request("POST", "/x", body=b"hello")
        assert http_message_length(raw[:-2]) is None
        assert http_message_length(raw[:10]) is None

    def test_length_of_first_in_pipeline(self):
        first = http1.encode_request("GET", "/a")
        second = http1.encode_request("GET", "/b")
        assert http_message_length(first + second) == len(first)

    def test_complete_is_consistent_with_length(self):
        raw = http1.encode_response(200, body=b"ok")
        assert http_message_complete(raw)
        assert not http_message_complete(raw[:-1])


class TestPipelinedRequests:
    def test_pipelined_requests_answered_in_order_and_traced(self):
        sim = Simulator(seed=61)
        builder = ClusterBuilder(node_count=2)
        client_pod = builder.add_pod(0, "client-pod")
        svc_pod = builder.add_pod(1, "svc-pod")
        cluster = builder.build()
        network = Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                              service_time=0.001)

        @service.route("/")
        def echo(worker, request):
            yield from worker.work(0.0001)
            return Response(200, body=request.path.encode())

        service.start()
        kernel = network.kernel_for_node(client_pod.node.name)
        process = kernel.create_process("pipeliner", client_pod.ip)
        thread = kernel.create_thread(process)

        def client():
            fd = yield from kernel.connect(thread, svc_pod.ip, 9000)
            # Three requests in ONE write: maximal coalescing.
            burst = (http1.encode_request("GET", "/one")
                     + http1.encode_request("GET", "/two")
                     + http1.encode_request("GET", "/three"))
            yield from kernel.write(thread, fd, burst)
            bodies = []
            buffer = b""
            while len(bodies) < 3:
                data = yield from kernel.read(thread, fd)
                buffer += data
                while True:
                    length = http_message_length(buffer)
                    if length is None:
                        break
                    raw, buffer = buffer[:length], buffer[length:]
                    bodies.append(raw.rpartition(b"\r\n\r\n")[2])
            return bodies

        bodies = sim.run_process(sim.spawn(client()))
        assert bodies == [b"/one", b"/two", b"/three"]
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        server_spans = server.find_spans(process_name="svc")
        # One coalesced kernel message at the server, so the agent sees
        # a single ingress syscall carrying the burst: the first parsed
        # request forms the span, later ones are continuation bytes
        # (§3.3.1's first-syscall rule).  The responses, written
        # separately, pair in pipeline order.
        assert len(server_spans) >= 1
        assert all(span.side is SpanSide.SERVER for span in server_spans)
        assert server_spans[0].resource == "/one"
        assert service.requests_handled == 3

    def test_chunked_writes_still_pipeline(self):
        """Requests arriving in separate writes each get their own span."""
        sim = Simulator(seed=62)
        builder = ClusterBuilder(node_count=2)
        client_pod = builder.add_pod(0, "client-pod")
        svc_pod = builder.add_pod(1, "svc-pod")
        cluster = builder.build()
        network = Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                              service_time=0.001)

        @service.route("/")
        def echo(worker, request):
            yield from worker.work(0.0001)
            return Response(200, body=request.path.encode())

        service.start()
        kernel = network.kernel_for_node(client_pod.node.name)
        process = kernel.create_process("pipeliner", client_pod.ip)
        thread = kernel.create_thread(process)

        def client():
            fd = yield from kernel.connect(thread, svc_pod.ip, 9000)
            for path in ("/a", "/b"):
                yield from kernel.write(
                    thread, fd, http1.encode_request("GET", path))
                yield 0.005  # separate syscalls, distinct messages
            bodies = []
            buffer = b""
            while len(bodies) < 2:
                data = yield from kernel.read(thread, fd)
                buffer += data
                while True:
                    length = http_message_length(buffer)
                    if length is None:
                        break
                    raw, buffer = buffer[:length], buffer[length:]
                    bodies.append(raw.rpartition(b"\r\n\r\n")[2])
            return bodies

        bodies = sim.run_process(sim.spawn(client()))
        assert bodies == [b"/a", b"/b"]
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        spans = server.find_spans(process_name="svc")
        assert {span.resource for span in spans} == {"/a", "/b"}
        assert all(span.status == "ok" for span in spans)
