"""Shared fixtures: a small two-node cluster with attached kernels."""

import pytest

from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def cluster():
    builder = ClusterBuilder(node_count=2)
    builder.add_pod(0, "client-pod", labels={"app": "client"})
    builder.add_pod(1, "server-pod", labels={"app": "server"})
    return builder.build()


@pytest.fixture
def network(sim, cluster):
    return Network(sim, cluster)


@pytest.fixture
def kernels(network, cluster):
    return [network.kernel_for_node(node.name) for node in cluster.nodes]
