"""Tests for the per-connection protocol inference engine."""

from repro.protocols import DEFAULT_SPECS, ProtocolInferenceEngine
from repro.protocols import amqp, dns, dubbo, http1, http2, kafka
from repro.protocols import mqtt, mysql, redis, tls
from repro.protocols.base import MessageType


def _engine():
    return ProtocolInferenceEngine()


SAMPLES = {
    "http": http1.encode_request("GET", "/x"),
    "http2": http2.encode_request("GET", "/x", stream_id=1,
                                  with_preface=True),
    "dns": dns.encode_query(9, "svc.local"),
    "redis": redis.encode_request("GET", "k"),
    "mysql": mysql.encode_query("SELECT 1"),
    "kafka": kafka.encode_request(kafka.API_FETCH, 1, "topic"),
    "mqtt": mqtt.encode_publish(2, "t", b"x"),
    "dubbo": dubbo.encode_request(3, "svc", "m"),
    "amqp": amqp.encode_publish(1, 4, "q"),
    "tls": tls.encrypt(b"secret"),
}


class TestClassification:
    def test_every_protocol_classified_correctly(self):
        engine = _engine()
        for index, (expected, payload) in enumerate(SAMPLES.items()):
            spec = engine.classify(index, payload)
            assert spec is not None, expected
            assert spec.name == expected

    def test_classification_is_sticky(self):
        engine = _engine()
        engine.classify(1, SAMPLES["redis"])
        # Even an HTTP-looking payload now parses with the sticky spec.
        assert engine.spec_for(1).name == "redis"
        spec = engine.classify(1, SAMPLES["http"])
        assert spec.name == "redis"

    def test_one_time_inference_per_connection(self):
        engine = _engine()
        engine.classify(5, SAMPLES["http"])
        attempts = engine.inference_attempts
        engine.classify(5, SAMPLES["http"])
        engine.classify(5, SAMPLES["http"])
        assert engine.inference_attempts == attempts

    def test_unknown_payload_stays_unclassified(self):
        engine = _engine()
        assert engine.classify(2, b"\x00\x00") is None
        assert engine.spec_for(2) is None

    def test_forget_allows_reclassification(self):
        engine = _engine()
        engine.classify(3, SAMPLES["redis"])
        engine.forget(3)
        assert engine.classify(3, SAMPLES["http"]).name == "http"

    def test_user_supplied_spec_takes_priority(self):
        from repro.protocols.base import ParsedMessage, ProtocolSpec

        class GreedySpec(ProtocolSpec):
            name = "custom"

            def infer(self, payload):
                return payload.startswith(b"GET")

            def parse(self, payload):
                return ParsedMessage(protocol="custom",
                                     msg_type=MessageType.REQUEST)

        engine = ProtocolInferenceEngine(user_specs=[GreedySpec()])
        assert engine.classify(1, SAMPLES["http"]).name == "custom"


class TestParsing:
    def test_parse_classifies_then_parses(self):
        engine = _engine()
        message = engine.parse(1, SAMPLES["dns"])
        assert message.protocol == "dns"
        assert message.msg_type is MessageType.REQUEST

    def test_parse_empty_payload_returns_none(self):
        assert _engine().parse(1, b"") is None

    def test_continuation_segment_returns_none(self):
        engine = _engine()
        engine.parse(1, SAMPLES["http2"])
        data_frame = http2._frame(http2.FRAME_DATA, 0, 1, b"more body")
        assert engine.parse(1, data_frame) is None

    def test_response_parsed_with_request_inferred_spec(self):
        engine = _engine()
        engine.parse(1, SAMPLES["kafka"])
        message = engine.parse(1, kafka.encode_response(1))
        assert message.protocol == "kafka"
        assert message.msg_type is MessageType.RESPONSE


class TestCrossInference:
    def test_no_sample_misclassified_by_another_spec(self):
        """Each sample must classify as its own protocol, fresh engine."""
        for expected, payload in SAMPLES.items():
            engine = _engine()
            assert engine.classify(0, payload).name == expected

    def test_default_specs_cover_eleven_protocols(self):
        assert len(DEFAULT_SPECS) == 11
        names = {spec.name for spec in DEFAULT_SPECS}
        assert names == {"grpc", "http", "http2", "dns", "redis", "mysql",
                         "kafka", "mqtt", "dubbo", "amqp", "tls"}

    def test_multiplexed_flags(self):
        multiplexed = {spec.name for spec in DEFAULT_SPECS
                       if spec.multiplexed}
        assert multiplexed == {"grpc", "http2", "dns", "kafka", "mqtt",
                               "dubbo", "amqp"}

    def test_grpc_takes_priority_over_plain_http2(self):
        from repro.protocols import grpc
        engine = _engine()
        payload = grpc.encode_request("shop.Cart", "AddItem", stream_id=1,
                                      with_preface=True)
        assert engine.classify(1, payload).name == "grpc"
        # Plain HTTP/2 still classifies as http2.
        engine2 = _engine()
        assert engine2.classify(1, SAMPLES["http2"]).name == "http2"
