"""Multi-cluster deployments: tracing across a WAN backbone.

The paper: "DeepFlow currently supports rapid deployment in a single or
across multiple Kubernetes clusters via Helm."  Cross-cluster requests
traverse both fabrics plus the shared backbone; agents in both clusters
contribute spans to one trace, and backbone taps fill in the WAN hops.
"""

import pytest

from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import SpanKind
from repro.network.topology import ClusterBuilder, Device, DeviceKind
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def build_two_clusters(shards=1, cluster_labels=False):
    sim = Simulator(seed=44)
    builder_a = ClusterBuilder(name="cluster-a", node_count=2)
    lg_pod = builder_a.add_pod(0, "loadgen-pod")
    fe_pod = builder_a.add_pod(1, "frontend-pod")
    cluster_a = builder_a.build()
    network = Network(sim, cluster_a)

    builder_b = ClusterBuilder(name="cluster-b", node_count=2,
                               node_prefix="b-node", subnet="10.4")
    be_pod = builder_b.add_pod(0, "backend-pod")
    cluster_b = builder_b.build()
    backbone = [Device("wan-gw-a", DeviceKind.L4_GATEWAY,
                       latency=200e-6, tags={"cluster": "cluster-a"}),
                Device("wan-gw-b", DeviceKind.L4_GATEWAY,
                       latency=200e-6, tags={"cluster": "cluster-b"})]
    network.add_cluster(cluster_b, backbone=backbone)

    server = DeepFlowServer(shards=shards)
    agents = []
    for cluster in network.clusters:
        for node in cluster.nodes:
            agent = server.new_agent(
                node.kernel, node=node,
                cluster=cluster.name if cluster_labels else None)
            agent.deploy()
            agents.append(agent)

    backend = HttpService("backend", be_pod.node, 9000, pod=be_pod,
                          service_time=0.002)

    @backend.route("/")
    def api(worker, request):
        yield from worker.work(0.0005)
        return Response(200, body=b"cross-cluster ok")

    backend.start()

    frontend = HttpService("frontend", fe_pod.node, 8000, pod=fe_pod,
                           service_time=0.001)

    @frontend.route("/")
    def home(worker, request):
        upstream = yield from worker.call_http(be_pod.ip, 9000, "GET",
                                               "/api")
        return Response(upstream.status_code, body=upstream.body)

    frontend.start()
    return (sim, network, server, agents, lg_pod, fe_pod, be_pod,
            backbone)


class TestCrossClusterRouting:
    def test_path_includes_both_fabrics_and_backbone(self):
        sim, network, server, agents, lg_pod, fe_pod, be_pod, backbone = \
            build_two_clusters()
        path = network.route(fe_pod.ip, be_pod.ip)
        names = [device.name for device in path]
        assert "cluster-a/tor" in names
        assert "cluster-b/tor" in names
        assert names.index("wan-gw-a") < names.index("wan-gw-b")
        assert (names.index("cluster-a/tor") < names.index("wan-gw-a")
                < names.index("cluster-b/tor"))

    def test_intra_cluster_path_avoids_backbone(self):
        sim, network, server, agents, lg_pod, fe_pod, be_pod, backbone = \
            build_two_clusters()
        path = network.route(lg_pod.ip, fe_pod.ip)
        assert all(device not in backbone for device in path)


class TestCrossClusterTracing:
    def run_traffic(self, shards=1, cluster_labels=False):
        (sim, network, server, agents, lg_pod, fe_pod, be_pod,
         backbone) = build_two_clusters(shards=shards,
                                        cluster_labels=cluster_labels)
        # Tap the backbone (WAN mirroring).
        for device in backbone:
            agents[0].enable_capture(device)
        generator = LoadGenerator(lg_pod.node, fe_pod.ip, 8000, rate=10,
                                  duration=0.4, connections=2,
                                  pod=lg_pod, name="loadgen")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        return report, server, backbone

    def test_requests_succeed_across_clusters(self):
        report, _server, _backbone = self.run_traffic()
        assert report.errors == 0
        assert report.completed == report.sent

    def test_single_trace_spans_both_clusters(self):
        report, server, backbone = self.run_traffic()
        trace = server.trace(server.slowest_span().span_id)
        hosts = {span.host for span in trace
                 if span.kind is SpanKind.SYSCALL}
        assert len(trace.roots()) == 1
        # frontend spans come from cluster-a nodes, backend from
        # cluster-b (both named node-1/node-2 in their own clusters but
        # processes differ).
        processes = {span.process_name for span in trace
                     if span.kind is SpanKind.SYSCALL}
        assert {"loadgen", "frontend", "backend"} <= processes

    def test_backbone_spans_join_the_trace(self):
        report, server, backbone = self.run_traffic()
        trace = server.trace(server.slowest_span().span_id)
        wan_spans = [span for span in trace
                     if span.kind is SpanKind.NETWORK]
        assert {span.device_name for span in wan_spans} == {
            "wan-gw-a", "wan-gw-b"}
        # Ordered along the path and fully parented.
        ordered = sorted(wan_spans, key=lambda span: span.path_index)
        assert ordered[1].parent_id == ordered[0].span_id


class TestShardedMulticluster:
    """The same two-cluster deployment against a sharded server: the
    scatter-gather trace must equal the unsharded one span for span,
    and cluster labels must thread from agents into the query filters.
    """

    def test_sharded_trace_equals_unsharded(self):
        runner = TestCrossClusterTracing()
        _report, plain, _ = runner.run_traffic()
        _report, sharded, _ = runner.run_traffic(shards=4)
        # Deterministic sim: both runs produce identical span sets.
        start = plain.slowest_span().span_id
        assert sharded.slowest_span().span_id == start
        plain_ids = sorted(s.span_id for s in plain.trace(start))
        sharded_ids = sorted(s.span_id for s in sharded.trace(start))
        assert plain_ids == sharded_ids
        assert sharded.store.shard_stats()["boundary_spans"] >= 0

    def test_sharded_trace_spans_both_clusters(self):
        runner = TestCrossClusterTracing()
        _report, server, _ = runner.run_traffic(shards=8,
                                                cluster_labels=True)
        trace = server.trace(server.slowest_span().span_id)
        assert len(trace.roots()) == 1
        processes = {span.process_name for span in trace
                     if span.kind is SpanKind.SYSCALL}
        assert {"loadgen", "frontend", "backend"} <= processes

    def test_cluster_labels_filter_span_list(self):
        runner = TestCrossClusterTracing()
        _report, server, _ = runner.run_traffic(shards=4,
                                                cluster_labels=True)
        everything = server.span_list(0.0, float("inf"))
        only_a = server.span_list(0.0, float("inf"), cluster="cluster-a")
        only_b = server.span_list(0.0, float("inf"), cluster="cluster-b")
        assert only_a and only_b
        assert all(s.tags.get("cluster") == "cluster-a" for s in only_a)
        assert all(s.tags.get("cluster") == "cluster-b" for s in only_b)
        assert len(only_a) + len(only_b) <= len(everything)
        # frontend runs in cluster-a, backend in cluster-b.
        assert "frontend" in {s.process_name for s in only_a}
        assert "backend" in {s.process_name for s in only_b}
        # Labels filter views; they never split the assembled trace.
        trace = server.trace(server.slowest_span().span_id)
        clusters = {s.tags.get("cluster") for s in trace} - {None}
        assert clusters == {"cluster-a", "cluster-b"}
