"""Property-based fuzzing of every protocol parser.

The agent parses payloads captured from arbitrary processes; a malformed
(or adversarial) payload must never crash the pipeline — parsers return
None or a message, never raise.

The dissector registry is cross-checked against the static-analysis
framework (``tools.analyze``): every ``ProtocolSpec`` subclass the
dissector-safety checker discovers must be deployed in ``DEFAULT_SPECS``
and must claim at least one valid sample here, so a new protocol cannot
ship unfuzzed or unchecked.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import DEFAULT_SPECS, ProtocolInferenceEngine
from repro.protocols import amqp, dns, dubbo, grpc, http1, http2, kafka
from repro.protocols import mqtt, mysql, redis, tls
from repro.protocols.base import MessageType, ParsedMessage

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

VALID_SAMPLES = [
    http1.encode_request("GET", "/x"),
    http1.encode_response(200),
    http2.encode_request("GET", "/x", stream_id=1),
    http2.encode_response(200, stream_id=1),
    dns.encode_query(1, "a.b"),
    dns.encode_response(1, "a.b", "1.2.3.4"),
    redis.encode_request("GET", "k"),
    redis.encode_response("OK"),
    mysql.encode_query("SELECT 1"),
    mysql.encode_ok(),
    kafka.encode_request(0, 1, "t"),
    kafka.encode_response(1),
    mqtt.encode_publish(1, "t"),
    mqtt.encode_puback(1),
    dubbo.encode_request(1, "s", "m"),
    dubbo.encode_response(1),
    amqp.encode_publish(1, 1, "q"),
    amqp.encode_ack(1, 1),
    grpc.encode_request("svc.Api", "Call", stream_id=1),
    grpc.encode_response(1),
    tls.encrypt(b"x"),
]


def test_fuzz_registry_matches_checker_registry():
    """Every dissector the static checker analyzes is deployed here.

    ``spec_classes`` is the same discovery the dissector-safety checker
    runs over; if it finds a ``ProtocolSpec`` subclass that is not in
    ``DEFAULT_SPECS``, the fuzz tests below would silently skip it.
    """
    from tools.analyze.checkers.dissector_safety import spec_classes
    from tools.analyze.project import Project

    project = Project(REPO_ROOT / "src" / "repro")
    discovered = {cls.name for cls in spec_classes(project)}
    deployed = {type(spec).__name__ for spec in DEFAULT_SPECS}
    assert discovered, "checker registry found no dissectors"
    assert discovered == deployed, (
        f"undeployed dissectors: {discovered - deployed}; "
        f"unchecked specs: {deployed - discovered}")


def test_every_spec_claims_a_valid_sample():
    """Each deployed dissector recognizes at least one sample, so the
    truncation/bitflip/concatenation tests exercise its parse path."""
    unclaimed = [spec.name for spec in DEFAULT_SPECS
                 if not any(spec.infer(sample) for sample in VALID_SAMPLES)]
    assert not unclaimed, unclaimed


def test_every_spec_parses_its_own_sample():
    """Each dissector fully parses at least one sample it claims —
    infer-only coverage would leave the parse body unfuzzed."""
    for spec in DEFAULT_SPECS:
        parsed = [spec.parse(sample) for sample in VALID_SAMPLES
                  if spec.infer(sample)]
        assert any(isinstance(m, ParsedMessage) for m in parsed), spec.name


@given(payload=st.binary(min_size=0, max_size=300))
@settings(max_examples=300)
def test_no_parser_raises_on_arbitrary_bytes(payload):
    for spec in DEFAULT_SPECS:
        inferred = spec.infer(payload)
        assert inferred in (True, False)
        result = spec.parse(payload)
        assert result is None or isinstance(result, ParsedMessage)


@given(payload=st.binary(min_size=0, max_size=300),
       socket_id=st.integers(min_value=0, max_value=10))
@settings(max_examples=200)
def test_inference_engine_never_raises(payload, socket_id):
    engine = ProtocolInferenceEngine()
    result = engine.parse(socket_id, payload)
    assert result is None or isinstance(result, ParsedMessage)


@given(sample=st.sampled_from(VALID_SAMPLES),
       cut=st.integers(min_value=0, max_value=300))
@settings(max_examples=200)
def test_truncated_valid_messages_never_crash(sample, cut):
    """Prefixes of valid messages (partial reads) parse or return None."""
    prefix = sample[:cut]
    for spec in DEFAULT_SPECS:
        result = spec.parse(prefix)
        assert result is None or isinstance(result, ParsedMessage)


@given(sample=st.sampled_from(VALID_SAMPLES),
       flips=st.lists(st.tuples(st.integers(min_value=0, max_value=299),
                                st.integers(min_value=0, max_value=255)),
                      max_size=4))
@settings(max_examples=200)
def test_bitflipped_messages_never_crash(sample, flips):
    data = bytearray(sample)
    for position, value in flips:
        if position < len(data):
            data[position] = value
    payload = bytes(data)
    engine = ProtocolInferenceEngine()
    result = engine.parse(1, payload)
    assert result is None or isinstance(result, ParsedMessage)


@given(a=st.sampled_from(VALID_SAMPLES), b=st.sampled_from(VALID_SAMPLES))
@settings(max_examples=150)
def test_concatenated_messages_never_crash(a, b):
    """Coalesced reads can glue two messages together."""
    for spec in DEFAULT_SPECS:
        result = spec.parse(a + b)
        assert result is None or isinstance(result, ParsedMessage)


@given(payload=st.binary(min_size=1, max_size=100))
@settings(max_examples=150)
def test_at_most_reasonable_specs_claim_random_bytes(payload):
    """Random bytes should rarely satisfy a structured-format check;
    never more than two specs at once (http1's text heuristic and one
    binary format can occasionally coincide)."""
    claimants = [spec.name for spec in DEFAULT_SPECS
                 if spec.infer(payload)]
    assert len(claimants) <= 2, claimants


def test_mysql_truncated_err_packet_returns_message():
    """Regression: an ERR packet whose header promises more bytes than
    the body carries must not raise struct.error (found by the
    dissector-safety checker)."""
    result = mysql.MysqlSpec().parse(b"\x01\x00\x00\x01\xff")
    assert isinstance(result, ParsedMessage)
    assert result.status == "error"
    assert result.status_code is None


def test_amqp_truncated_publish_body_returns_none():
    """Regression: a method frame claiming basic.publish with a body too
    short for the delivery-tag/queue-length fields must return None, not
    raise (found by the dissector-safety checker)."""
    import struct
    body = struct.pack(">HH", amqp.CLASS_BASIC, amqp.METHOD_PUBLISH) + b"\x00" * 8
    frame = (struct.pack(">BHI", amqp.FRAME_METHOD, 1, len(body))
             + body + bytes([amqp.FRAME_END]))
    assert amqp.AmqpSpec().parse(frame) is None


@given(sample=st.sampled_from(VALID_SAMPLES))
@settings(max_examples=60)
def test_parsed_message_types_are_classified(sample):
    engine = ProtocolInferenceEngine()
    message = engine.parse(1, sample)
    assert message is not None
    assert message.msg_type in (MessageType.REQUEST, MessageType.RESPONSE,
                                MessageType.UNKNOWN)
    assert message.size == len(sample)
