"""Property-based tests on the trace assembler's parent assignment."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import IdAllocator
from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.server.assembler import assign_parents

_ids = IdAllocator(12)

_side = st.sampled_from([SpanSide.CLIENT, SpanSide.SERVER,
                         SpanSide.NETWORK])


@st.composite
def random_span(draw):
    side = draw(_side)
    kind = (SpanKind.NETWORK if side is SpanSide.NETWORK
            else SpanKind.SYSCALL)
    start = draw(st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False))
    duration = draw(st.floats(min_value=0.001, max_value=1.0,
                              allow_nan=False))
    return Span(
        span_id=_ids.next_id(),
        kind=kind,
        side=side,
        start_time=start,
        end_time=start + duration,
        host=draw(st.sampled_from(["n1", "n2"])),
        pid=draw(st.integers(min_value=1, max_value=3)),
        protocol=draw(st.sampled_from(["http", "amqp"])),
        resource=draw(st.sampled_from(["/a", "/b", "q"])),
        systrace_id=draw(st.one_of(st.none(),
                                   st.integers(min_value=1, max_value=5))),
        pseudo_thread_key=None,
        x_request_id=draw(st.one_of(st.none(),
                                    st.sampled_from(["x1", "x2"]))),
        flow_key=draw(st.one_of(st.none(),
                                st.sampled_from([("f1",), ("f2",)]))),
        req_tcp_seq=draw(st.one_of(st.none(),
                                   st.integers(min_value=1, max_value=4))),
        resp_tcp_seq=draw(st.one_of(st.none(),
                                    st.integers(min_value=1,
                                                max_value=4))),
        path_index=draw(st.integers(min_value=0, max_value=5)),
        message_id=draw(st.one_of(st.none(),
                                  st.integers(min_value=1, max_value=3))),
    )


@given(spans=st.lists(random_span(), min_size=0, max_size=25))
@settings(max_examples=150)
def test_parent_assignment_never_creates_cycles(spans):
    """Whatever adversarial association keys spans carry, the parent
    relation must stay a forest: no cycles, parents inside the set or
    treated as roots."""
    assign_parents(spans)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        assert span.parent_id != span.span_id
        seen = {span.span_id}
        current = span
        while current.parent_id is not None:
            assert current.parent_id not in seen, "cycle detected"
            seen.add(current.parent_id)
            next_span = by_id.get(current.parent_id)
            if next_span is None:
                break
            current = next_span


@given(spans=st.lists(random_span(), min_size=1, max_size=25))
@settings(max_examples=100)
def test_assignment_is_deterministic(spans):
    import copy
    copy_a = copy.deepcopy(spans)
    copy_b = copy.deepcopy(spans)
    assign_parents(copy_a)
    assign_parents(copy_b)
    assert ([span.parent_id for span in copy_a]
            == [span.parent_id for span in copy_b])


@given(spans=st.lists(random_span(), min_size=1, max_size=25))
@settings(max_examples=100)
def test_assignment_is_order_insensitive(spans):
    """Shuffling the input list must not change who parents whom."""
    import copy
    forward = copy.deepcopy(spans)
    backward = copy.deepcopy(spans)
    backward_view = list(reversed(backward))
    assign_parents(forward)
    assign_parents(backward_view)
    parents_forward = {span.span_id: span.parent_id for span in forward}
    parents_backward = {span.span_id: span.parent_id for span in backward}
    assert parents_forward == parents_backward


@given(spans=st.lists(random_span(), min_size=1, max_size=25))
@settings(max_examples=100)
def test_trace_renders_whatever_the_assignment(spans):
    """Trace rendering is total: any assignment yields a printable tree."""
    assign_parents(spans)
    trace = Trace(spans)
    text = trace.to_text()
    assert isinstance(text, str)
    assert len(trace.roots()) >= 1
