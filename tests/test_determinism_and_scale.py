"""Determinism and scale: the reproduction's own invariants.

DESIGN.md decision 1: every experiment is reproducible bit-for-bit from
its seed.  These tests run whole tracing scenarios twice and compare the
complete observable output, then push a larger topology through the
pipeline to check nothing degrades structurally.
"""

import pytest

from repro.apps import springboot
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def _run_springboot(seed):
    sim = Simulator(seed=seed)
    demo = springboot.build(sim)
    server = DeepFlowServer()
    agents = []
    for node in demo.cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)
    generator = LoadGenerator(demo.pods["loadgen"].node, demo.entry_ip,
                              demo.entry_port, rate=25, duration=0.4,
                              connections=3, pod=demo.pods["loadgen"],
                              path="/api/orders", name="loadgen")
    report = sim.run_process(generator.run())
    sim.run(until=sim.now + 0.5)
    for agent in agents:
        agent.flush()
    return report, server


def _fingerprint(server):
    """Every observable field of every span, order-independent."""
    rows = []
    for span in server.store.all_spans():
        rows.append((span.span_id, span.kind.value, span.side.value,
                     span.process_name, span.protocol, span.operation,
                     span.resource, span.status, span.status_code,
                     round(span.start_time, 12), round(span.end_time, 12),
                     span.systrace_id, span.req_tcp_seq,
                     span.resp_tcp_seq, span.x_request_id,
                     tuple(sorted(span.tags.items()))))
    return sorted(rows)


class TestDeterminism:
    def test_identical_seeds_produce_identical_spans(self):
        report_a, server_a = _run_springboot(seed=5150)
        report_b, server_b = _run_springboot(seed=5150)
        assert report_a.completed == report_b.completed
        assert report_a.latencies == report_b.latencies
        assert _fingerprint(server_a) == _fingerprint(server_b)

    def test_traces_assemble_identically(self):
        _report_a, server_a = _run_springboot(seed=5151)
        _report_b, server_b = _run_springboot(seed=5151)
        start_a = server_a.slowest_span()
        start_b = server_b.slowest_span()
        assert start_a.span_id == start_b.span_id
        trace_a = server_a.trace(start_a.span_id)
        trace_b = server_b.trace(start_b.span_id)
        assert ([(s.span_id, s.parent_id) for s in trace_a]
                == [(s.span_id, s.parent_id) for s in trace_b])


class TestScale:
    def test_wide_fanout_traces_complete(self):
        """A 6-node cluster, one aggregator fanning out to 8 leaves."""
        sim = Simulator(seed=71)
        builder = ClusterBuilder(node_count=6)
        lg_pod = builder.add_pod(0, "loadgen-pod")
        agg_pod = builder.add_pod(1, "aggregator-pod")
        leaf_pods = [builder.add_pod(2 + i % 4, f"leaf-{i}")
                     for i in range(8)]
        cluster = builder.build()
        Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        for index, pod in enumerate(leaf_pods):
            leaf = HttpService(f"leaf-{index}", pod.node, 9000, pod=pod,
                               service_time=0.001)

            def handler(worker, request):
                yield from worker.work(0.0002)
                return Response(200)

            leaf.route("/")(handler)
            leaf.start()

        aggregator = HttpService("aggregator", agg_pod.node, 8000,
                                 pod=agg_pod, service_time=0.001)

        @aggregator.route("/")
        def fan_out(worker, request):
            for pod in leaf_pods:
                reply = yield from worker.call_http(pod.ip, 9000, "GET",
                                                    "/part")
                if reply.status_code >= 400:
                    return Response(502)
            return Response(200)

        aggregator.start()
        generator = LoadGenerator(lg_pod.node, agg_pod.ip, 8000, rate=20,
                                  duration=0.5, connections=4, pod=lg_pod,
                                  name="loadgen")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        assert report.errors == 0
        # 1 edge session + 8 fan-out sessions, both endpoints each.
        expected = (1 + 8) * 2
        trace = server.trace(server.slowest_span().span_id)
        assert len(trace) == expected
        assert len(trace.roots()) == 1
        # All eight leaf client spans share the aggregator's systrace
        # and are siblings under its server span.
        agg_server = next(span for span in trace
                          if span.process_name == "aggregator"
                          and span.side is SpanSide.SERVER)
        fan_spans = [span for span in trace
                     if span.process_name == "aggregator"
                     and span.side is SpanSide.CLIENT]
        assert len(fan_spans) == 8
        assert all(span.parent_id == agg_server.span_id
                   for span in fan_spans)

    def test_store_scales_linearly_with_requests(self):
        report, server = _run_springboot(seed=72)
        # 5 sessions per request, 2 endpoints each.
        assert len(server.store) == report.completed * 10

    def test_many_connections_many_threads(self):
        """Thread-per-connection with 32 concurrent connections."""
        sim = Simulator(seed=73)
        builder = ClusterBuilder(node_count=2)
        lg_pod = builder.add_pod(0, "lg")
        svc_pod = builder.add_pod(1, "svc")
        cluster = builder.build()
        Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                              service_time=0.002)

        @service.route("/")
        def home(worker, request):
            yield from worker.work(0.0005)
            return Response(200)

        service.start()
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=400,
                                  duration=0.3, connections=32, pod=lg_pod,
                                  name="client")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        assert report.errors == 0
        assert report.completed == report.sent
        spans = server.find_spans(process_name="svc")
        assert len(spans) == report.completed
        # Each connection is served by its own thread.
        threads = {span.tid for span in spans}
        assert len(threads) == 32
