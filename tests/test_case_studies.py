"""Integration tests for the paper's §4.1 case studies and extensions.

Each test reproduces one production workflow end to end:

* §4.1.1 — Nginx ingress pod returning 404, localized from traces;
* §4.1.2 — faulty physical NIC ARP storm, localized from ARP metrics;
* §4.1.3 — RabbitMQ backlog causing TCP resets, found via correlation;
* TLS      — uprobe extension recovers semantics syscalls cannot see;
* OTel     — third-party app spans integrate into eBPF traces;
* Nginx cross-thread — X-Request-ID keeps proxy spans connected.
"""

import pytest

from repro.analysis.rootcause import (
    deepest_error_span,
    diagnose,
    rank_devices_by_arp,
)
from repro.apps.loadgen import LoadGenerator
from repro.apps.proxy import NginxProxy
from repro.apps.rabbitmq import RabbitMQBroker, publish
from repro.apps.runtime import Component, HttpService, Response
from repro.baselines.tracers import JaegerTracer
from repro.core.span import SpanKind, SpanSide
from repro.kernel.syscalls import Direction
from repro.network.faults import ArpStormFault
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1, tls
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def deploy_world(node_count=3, seed=31):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=node_count)
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = {}
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents[node.name] = agent
    return sim, builder, cluster, network, server, agents


def settle(sim, agents, extra=1.0):
    sim.run(until=sim.now + extra)
    for agent in agents.values():
        agent.flush(expire=True)


class TestNginx404Case:
    """§4.1.1: one of three ingress pods misroutes an endpoint to 404."""

    def build(self):
        sim, builder, cluster, network, server, agents = deploy_world()
        lg_pod = builder.add_pod(0, "loadgen-pod")
        backend_pod = builder.add_pod(2, "shop-backend")
        ingress_pods = [builder.add_pod(i, f"nginx-ingress-{i}")
                        for i in range(3)]
        edge_pod = builder.add_pod(0, "edge-lb")
        # Re-register agents' tag tables for pods added after deploy.
        for name, agent in agents.items():
            agent._collect_node_tags()

        backend = HttpService("shop", backend_pod.node, 9000,
                              pod=backend_pod, service_time=0.001)

        @backend.route("/")
        def any_route(worker, request):
            yield from worker.work(0.0005)
            return Response(200, body=b"ok")

        backend.start()
        ingresses = []
        for index, pod in enumerate(ingress_pods):
            ingress = NginxProxy(f"nginx-ingress-{index}", pod.node, 8081,
                                 pod=pod)
            ingress.add_route("/", [(backend_pod.ip, 9000)])
            ingress.start()
            ingresses.append(ingress)
        edge = NginxProxy("edge-lb", edge_pod.node, 8080, pod=edge_pod)
        edge.add_route("/", [(pod.ip, 8081) for pod in ingress_pods])
        edge.start()
        return (sim, cluster, server, agents, lg_pod, edge_pod,
                ingresses, ingress_pods)

    def test_faulty_pod_localized_from_trace(self):
        (sim, cluster, server, agents, lg_pod, edge_pod, ingresses,
         ingress_pods) = self.build()
        ingresses[1].inject_fault("/checkout", status_code=404)
        generator = LoadGenerator(lg_pod.node, edge_pod.ip, 8080,
                                  rate=30, duration=0.4, connections=3,
                                  path="/checkout", pod=lg_pod,
                                  name="client")
        report = sim.run_process(generator.run())
        settle(sim, agents)
        assert report.errors > 0 and report.completed > 0
        error_span = max(
            (span for span in server.store.all_spans()
             if span.is_error and span.side is SpanSide.CLIENT),
            key=lambda span: span.start_time)
        trace = server.trace(error_span.span_id)
        deepest = deepest_error_span(trace)
        assert deepest.status_code == 404
        assert deepest.tags.get("pod") == "nginx-ingress-1"
        result = diagnose(trace, cluster=cluster)
        assert result.category == "application"
        assert result.culprit == "nginx-ingress-1"

    def test_healthy_requests_route_through_other_pods(self):
        (sim, cluster, server, agents, lg_pod, edge_pod, ingresses,
         ingress_pods) = self.build()
        ingresses[1].inject_fault("/checkout", status_code=404)
        generator = LoadGenerator(lg_pod.node, edge_pod.ip, 8080,
                                  rate=30, duration=0.4, connections=3,
                                  path="/checkout", pod=lg_pod,
                                  name="client")
        report = sim.run_process(generator.run())
        settle(sim, agents)
        # Round-robin over three pods: roughly a third of requests fail.
        assert report.errors == pytest.approx(report.sent / 3, abs=3)


class TestArpStormCase:
    """§4.1.2: redundant ARP requests from a malfunctioning physical NIC."""

    def test_faulty_nic_tops_arp_ranking(self):
        sim, builder, cluster, network, server, agents = deploy_world()
        lg_pod = builder.add_pod(0, "loadgen-pod")
        svc_pod = builder.add_pod(2, "ecommerce-svc")
        for agent in agents.values():
            agent._collect_node_tags()
        faulty_nic = cluster.machines[2].nic
        faulty_nic.add_fault(ArpStormFault(extra_arps_per_connect=4,
                                           stall_range=(0.2, 0.6)))
        service = HttpService("ecommerce", svc_pod.node, 9000,
                              pod=svc_pod, service_time=0.001)

        @service.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        service.start()
        # Freshly created pods connect anew each time (no pooled conns).
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=10,
                                  duration=0.5, connections=4, pod=lg_pod,
                                  name="new-pod")
        sim.run_process(generator.run())
        settle(sim, agents)
        ranked = rank_devices_by_arp(cluster)
        assert ranked[0][0] is faulty_nic
        assert ranked[0][1] > ranked[1][1]

    def test_traces_show_inflated_connect_rtt(self):
        sim, builder, cluster, network, server, agents = deploy_world()
        lg_pod = builder.add_pod(0, "loadgen-pod")
        svc_pod = builder.add_pod(2, "ecommerce-svc")
        for agent in agents.values():
            agent._collect_node_tags()
        cluster.machines[2].nic.add_fault(
            ArpStormFault(extra_arps_per_connect=4, stall_range=(0.3, 0.3),
                          stall_probability=1.0))
        service = HttpService("ecommerce", svc_pod.node, 9000,
                              pod=svc_pod, service_time=0.001)

        @service.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        service.start()
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=5,
                                  duration=0.4, connections=2, pod=lg_pod,
                                  name="new-pod")
        sim.run_process(generator.run())
        settle(sim, agents)
        spans = server.find_spans(process_name="ecommerce")
        assert spans
        assert any(span.metrics.get("tcp.connect_rtt", 0) > 0.3
                   for span in spans)
        assert any(span.metrics.get("net.arp_requests", 0) >= 4
                   for span in spans)


class TestRabbitMQBacklogCase:
    """§4.1.3: queue backlog → TCP resets, localized via correlation."""

    def build_and_run(self):
        sim, builder, cluster, network, server, agents = deploy_world()
        producer_pod = builder.add_pod(0, "producer-pod")
        mq_pod = builder.add_pod(2, "rabbitmq-pod")
        for agent in agents.values():
            agent._collect_node_tags()
        broker = RabbitMQBroker("rabbitmq", mq_pod.node, 5672, pod=mq_pod,
                                queue_capacity=5, consume_rate=2.0,
                                reset_on_backlog=True)
        broker.start()
        broker.start_metrics_exporter(server.metrics, interval=0.2)

        outcomes = {"acks": 0, "resets": 0}

        def producer_main():
            process = network.kernel_for_node(
                producer_pod.node.name).create_process(
                    "producer", producer_pod.ip)
            thread = network.kernel_for_node(
                producer_pod.node.name).create_thread(process)
            from repro.apps.runtime import WorkerContext

            class _Shim:
                kernel = network.kernel_for_node(producer_pod.node.name)
                ingress_abi = "read"
                egress_abi = "write"
                sim = sim_ref

            worker = WorkerContext(_Shim(), thread, None)
            for tag in range(40):
                try:
                    ack = yield from publish(worker, mq_pod.ip, 5672,
                                             channel=1, delivery_tag=tag,
                                             queue="orders", body=b"job")
                    if ack is not None and not ack.is_error:
                        outcomes["acks"] += 1
                except ConnectionResetError:
                    outcomes["resets"] += 1
                yield 0.05

        sim_ref = sim
        process = sim.spawn(producer_main(), name="producer")
        sim.run_process(process)
        settle(sim, agents)
        return sim, cluster, server, broker, outcomes

    def test_backlog_causes_resets_visible_to_client(self):
        _sim, _cluster, _server, broker, outcomes = self.build_and_run()
        assert outcomes["acks"] >= 5
        assert outcomes["resets"] > 0
        assert broker.resets_issued == outcomes["resets"]

    def test_error_spans_carry_reset_metrics(self):
        _sim, _cluster, server, _broker, _outcomes = self.build_and_run()
        error_spans = [span for span in server.store.all_spans()
                       if span.is_error and span.protocol == "amqp"]
        assert error_spans
        assert any(span.metrics.get("tcp.resets", 0) > 0
                   for span in error_spans)

    def test_correlated_queue_depth_reveals_backlog(self):
        _sim, _cluster, server, broker, _outcomes = self.build_and_run()
        error_span = next(span for span in server.store.all_spans()
                          if span.is_error and span.protocol == "amqp"
                          and span.side is SpanSide.SERVER)
        trace = server.trace(error_span.span_id)
        correlated = server.correlated_metrics(
            trace, names=["rabbitmq.queue_depth"])
        samples = [value for series in correlated.values()
                   for _, value in series.get("rabbitmq.queue_depth", [])]
        assert samples
        assert max(samples) >= broker.queue_capacity

    def test_diagnosis_points_at_middleware(self):
        _sim, cluster, server, _broker, _outcomes = self.build_and_run()
        error_span = max((span for span in server.store.all_spans()
                          if span.is_error),
                         key=lambda span: span.start_time)
        trace = server.trace(error_span.span_id)
        result = diagnose(trace, cluster=cluster)
        assert result.category == "network middleware"


class TlsEchoService(Component):
    """A TLS-speaking HTTP service using ssl_read/ssl_write."""

    def handle_payload(self, worker, data):
        plaintext = tls.decrypt(data)
        yield from self.kernel.user_function(
            worker.thread, "ssl_read", plaintext, Direction.INGRESS,
            self._serving_fd)
        yield from worker.work(0.001)
        reply = http1.encode_response(200, body=b"secret-ok")
        yield from self.kernel.user_function(
            worker.thread, "ssl_write", reply, Direction.EGRESS,
            self._serving_fd)
        return tls.encrypt(reply)

    def _serve(self, thread, fd, coroutine):
        self._serving_fd = fd
        return super()._serve(thread, fd, coroutine)


class TestTlsUprobeCase:
    """uprobe extension: plaintext semantics for encrypted connections."""

    def build(self, attach_uprobes):
        sim, builder, cluster, network, server, agents = deploy_world(
            node_count=2)
        client_pod = builder.add_pod(0, "client-pod")
        tls_pod = builder.add_pod(1, "secure-svc")
        for agent in agents.values():
            agent._collect_node_tags()
        service = TlsEchoService("secure", tls_pod.node, 8443,
                                 pod=tls_pod)
        service.start()
        if attach_uprobes:
            server_agent = agents[tls_pod.node.name]
            server_agent.attach_uprobe("secure", "ssl_read")
            server_agent.attach_uprobe("secure", "ssl_write")

        def client_main():
            kernel = network.kernel_for_node(client_pod.node.name)
            process = kernel.create_process("tls-client", client_pod.ip)
            thread = kernel.create_thread(process)
            fd = yield from kernel.connect(thread, tls_pod.ip, 8443)
            request = http1.encode_request("GET", "/secret")
            yield from kernel.write(thread, fd, tls.encrypt(request))
            reply = yield from kernel.read(thread, fd)
            return tls.decrypt(reply)

        process = sim.spawn(client_main())
        result = sim.run_process(process)
        settle(sim, agents)
        return server, result

    def test_without_uprobes_connection_is_opaque(self):
        server, result = self.build(attach_uprobes=False)
        assert b"secret-ok" in result
        secure_spans = server.find_spans(process_name="secure")
        assert secure_spans == []  # syscalls saw only ciphertext

    def test_with_uprobes_semantics_recovered(self):
        server, result = self.build(attach_uprobes=True)
        assert b"secret-ok" in result
        spans = server.find_spans(process_name="secure")
        assert len(spans) == 1
        span = spans[0]
        assert span.kind is SpanKind.UPROBE
        assert span.operation == "GET"
        assert span.resource == "/secret"
        assert span.status_code == 200


class TestThirdPartyIntegration:
    """§3.3.2: OpenTelemetry-style spans merge into eBPF traces."""

    def test_app_spans_appear_in_assembled_trace(self):
        sim, builder, cluster, network, server, agents = deploy_world(
            node_count=2)
        lg_pod = builder.add_pod(0, "loadgen-pod")
        app_pod = builder.add_pod(1, "traced-app")
        for agent in agents.values():
            agent._collect_node_tags()
        tracer = JaegerTracer(sim, export_server=server)
        backend_pod = builder.add_pod(0, "plain-backend")
        backend = HttpService("plain-backend", backend_pod.node, 9100,
                              pod=backend_pod, service_time=0.001)

        @backend.route("/")
        def data(worker, request):
            yield from worker.work(0.0001)
            return Response(200, body=b"data")

        backend.start()
        app = HttpService("traced-app", app_pod.node, 8000, pod=app_pod,
                          tracer=tracer, service_time=0.001)

        @app.route("/")
        def home(worker, request):
            upstream = yield from app.call_downstream(
                worker, backend_pod.ip, 9100, "GET", "/data")
            return Response(upstream.status_code)

        app.start()
        generator = LoadGenerator(lg_pod.node, app_pod.ip, 8000, rate=5,
                                  duration=0.3, connections=1, pod=lg_pod,
                                  name="client")
        report = sim.run_process(generator.run())
        settle(sim, agents)
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        app_spans = [span for span in trace
                     if span.kind is SpanKind.APP]
        assert len(app_spans) == 2  # server span + client span
        app_server = next(span for span in app_spans
                          if span.otel_parent_span_id is None)
        app_client = next(span for span in app_spans
                          if span.otel_parent_span_id is not None)
        # App server span under the eBPF server span; eBPF client span
        # under the app client span.
        ebpf_server = next(span for span in trace
                           if span.process_name == "traced-app"
                           and span.side is SpanSide.SERVER)
        ebpf_client = next(span for span in trace
                           if span.process_name == "traced-app"
                           and span.side is SpanSide.CLIENT)
        assert app_server.parent_id == ebpf_server.span_id
        assert app_client.parent_id == app_server.span_id
        assert ebpf_client.parent_id == app_client.span_id

    def test_agent_extracts_trace_id_from_headers(self):
        """The eBPF span of a traced request carries the OTel trace id."""
        sim, builder, cluster, network, server, agents = deploy_world(
            node_count=2)
        lg_pod = builder.add_pod(0, "loadgen-pod")
        app_pod = builder.add_pod(1, "traced-app")
        for agent in agents.values():
            agent._collect_node_tags()
        tracer = JaegerTracer(sim, export_server=server)
        app = HttpService("traced-app", app_pod.node, 8000, pod=app_pod,
                          tracer=tracer, service_time=0.001)

        @app.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        app.start()
        generator = LoadGenerator(
            lg_pod.node, app_pod.ip, 8000, rate=5, duration=0.2,
            connections=1, pod=lg_pod, name="client",
            headers={"traceparent": "00-" + "ab" * 16 + "-" + "cd" * 8
                     + "-01"})
        sim.run_process(generator.run())
        settle(sim, agents)
        ebpf_spans = server.find_spans(process_name="traced-app",
                                       kind=SpanKind.SYSCALL)
        assert ebpf_spans
        assert all(span.otel_trace_id == "ab" * 16 for span in ebpf_spans)


class TestCrossThreadProxy:
    """Cross-thread handoff inside Nginx: X-Request-ID keeps the chain."""

    def test_trace_spans_connected_despite_thread_hop(self):
        sim, builder, cluster, network, server, agents = deploy_world()
        lg_pod = builder.add_pod(0, "loadgen-pod")
        proxy_pod = builder.add_pod(1, "nginx-pod")
        backend_pod = builder.add_pod(2, "backend-pod")
        for agent in agents.values():
            agent._collect_node_tags()
        backend = HttpService("backend", backend_pod.node, 9000,
                              pod=backend_pod, service_time=0.001)

        @backend.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        backend.start()
        proxy = NginxProxy("nginx", proxy_pod.node, 8080, pod=proxy_pod,
                           cross_thread=True)
        proxy.add_route("/", [(backend_pod.ip, 9000)])
        proxy.start()
        generator = LoadGenerator(lg_pod.node, proxy_pod.ip, 8080, rate=5,
                                  duration=0.3, connections=1, pod=lg_pod,
                                  name="client")
        report = sim.run_process(generator.run())
        settle(sim, agents)
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        proxy_server = next(span for span in trace
                            if span.process_name == "nginx"
                            and span.side is SpanSide.SERVER)
        proxy_client = next(span for span in trace
                            if span.process_name == "nginx"
                            and span.side is SpanSide.CLIENT)
        # Different kernel threads, so systrace cannot link them...
        assert proxy_server.tid != proxy_client.tid
        assert proxy_server.systrace_id != proxy_client.systrace_id
        # ...but the proxy's own X-Request-ID does.
        assert proxy_server.x_request_id == proxy_client.x_request_id
        assert proxy_client.parent_id == proxy_server.span_id
        backend_server = next(span for span in trace
                              if span.process_name == "backend")
        assert backend_server.parent_id == proxy_client.span_id
