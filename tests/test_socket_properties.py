"""Property-based tests on the socket byte stream and sequence space."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.sockets import INITIAL_SEQ, FiveTuple, Socket
from repro.sim.engine import Simulator

FT = FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80)


def make_socket():
    return Socket(Simulator(), socket_id=1, five_tuple=FT, pid=1)


class TestSequenceSpace:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=10_000),
                          min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_tx_seq_is_contiguous_byte_count(self, sizes):
        sock = make_socket()
        expected = INITIAL_SEQ
        for size in sizes:
            seq = sock.reserve_tx(size)
            assert seq == expected
            expected += size
        assert sock.bytes_sent == sum(sizes)

    @given(chunks=st.lists(st.binary(min_size=1, max_size=64),
                           min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_delivery_preserves_bytes_and_order(self, chunks):
        sock = make_socket()
        seq = INITIAL_SEQ
        for chunk in chunks:
            sock.deliver(seq, chunk)
            seq += len(chunk)
        received = b""
        while sock.readable:
            _first, data = sock.read_available(max_bytes=1 << 20)
            if not data:
                break
            received += data
        assert received == b"".join(chunks)
        assert sock.bytes_received == len(received)

    @given(chunks=st.lists(st.binary(min_size=1, max_size=64),
                           min_size=1, max_size=20),
           read_size=st.integers(min_value=1, max_value=40))
    @settings(max_examples=100)
    def test_partial_reads_report_correct_first_seq(self, chunks,
                                                    read_size):
        sock = make_socket()
        seq = INITIAL_SEQ
        for chunk in chunks:
            sock.deliver(seq, chunk)
            seq += len(chunk)
        total = sum(len(chunk) for chunk in chunks)
        consumed = 0
        while consumed < total:
            first_seq, data = sock.read_available(max_bytes=read_size)
            assert data, "stream ended early"
            assert first_seq == INITIAL_SEQ + consumed
            consumed += len(data)
        assert consumed == total

    def test_eof_returns_empty_read(self):
        sock = make_socket()
        sock.deliver_eof()
        assert sock.readable
        _seq, data = sock.read_available(1024)
        assert data == b""

    def test_reset_raises_after_drain(self):
        import pytest
        sock = make_socket()
        sock.deliver(INITIAL_SEQ, b"tail")
        sock.deliver_reset()
        _seq, data = sock.read_available(1024)
        assert data == b"tail"  # pending data still drains
        with pytest.raises(ConnectionResetError):
            sock.read_available(1024)
