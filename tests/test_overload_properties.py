"""Property tests: head-based sampling is trace-atomic.

The contract of :class:`repro.agent.overload.HeadSampler` is that the
sampling unit is one request/response exchange — for ANY interleaving of
flows, ANY sampling rate, and ANY sequence of mid-stream rate changes or
tier flips, every exchange is either fully admitted or fully dropped.
A violation is precisely a shredded trace: a span built from half an
exchange.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.overload import DROP, HeadSampler
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction


def flow_of(index: int) -> FiveTuple:
    return FiveTuple(f"10.0.0.{index + 1}", 40000 + index,
                     "10.0.1.1", 80)


#: One flow: per exchange, how many request syscalls then how many
#: response syscalls (multi-syscall messages are the interesting case —
#: the head decision must stick for every continuation record).
flow_shapes = st.lists(
    st.tuples(st.integers(min_value=1, max_value=3),
              st.integers(min_value=1, max_value=3)),
    min_size=1, max_size=4)


@st.composite
def workloads(draw):
    """A set of flows, a global interleaving, and a rate schedule."""
    shapes = draw(st.lists(flow_shapes, min_size=1, max_size=5))
    per_flow = []
    for flow_index, exchanges in enumerate(shapes):
        records = []
        for exchange_index, (req_count, resp_count) in enumerate(exchanges):
            records.extend(
                (flow_index, exchange_index, Direction.EGRESS)
                for _ in range(req_count))
            records.extend(
                (flow_index, exchange_index, Direction.INGRESS)
                for _ in range(resp_count))
        per_flow.append(records)
    # Interleave across flows while preserving each flow's own order —
    # exactly the reordering a shared perf buffer can produce.
    deck = [index for index, records in enumerate(per_flow)
            for _ in records]
    deck = draw(st.permutations(deck))
    rate_events = draw(st.lists(
        st.one_of(st.floats(min_value=0.0, max_value=1.0),
                  st.booleans()),
        min_size=0, max_size=len(deck)))
    return per_flow, deck, rate_events


@given(workloads(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200, deadline=None)
def test_every_exchange_is_all_or_nothing(workload, initial_rate):
    per_flow, deck, rate_events = workload
    sampler = HeadSampler(rate=initial_rate)
    cursors = [0] * len(per_flow)
    outcomes: dict[tuple, set] = {}
    for step, flow_index in enumerate(deck):
        # Adversarial mid-stream control actions: rate changes and
        # SHED_SPANS flips between arbitrary records.
        if step < len(rate_events):
            event = rate_events[step]
            if isinstance(event, bool):
                sampler.forced_off = event
            else:
                sampler.rate = event
        records = per_flow[flow_index]
        flow_index_, exchange_index, direction = records[
            cursors[flow_index]]
        cursors[flow_index] += 1
        code = sampler.admit(flow_index, flow_of(flow_index), direction)
        outcomes.setdefault((flow_index, exchange_index),
                            set()).add(code != DROP)
    # Trace atomicity: no exchange may mix admitted and dropped records.
    torn = {key for key, kept in outcomes.items() if len(kept) > 1}
    assert not torn, f"shredded exchanges: {sorted(torn)}"


@given(workloads())
@settings(max_examples=100, deadline=None)
def test_rate_one_never_drops_and_rate_zero_admits_nothing(workload):
    per_flow, deck, _rate_events = workload
    keep_all = HeadSampler(rate=1.0)
    keep_none = HeadSampler(rate=0.0)
    cursors = [0] * len(per_flow)
    for flow_index in deck:
        records = per_flow[flow_index]
        _, _, direction = records[cursors[flow_index]]
        cursors[flow_index] += 1
        assert keep_all.admit(flow_index, flow_of(flow_index),
                              direction) != DROP
        assert keep_none.admit(1000 + flow_index, flow_of(flow_index),
                               direction) == DROP


@given(workloads(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_flow_endpoints_reach_identical_decisions(workload, rate):
    """The client-side and server-side agents of one flow keep exactly
    the same exchanges: the hash is canonical and the exchange index
    advances in lockstep with the request/response structure."""
    per_flow, deck, _rate_events = workload
    client = HeadSampler(rate=rate)
    server = HeadSampler(rate=rate)
    mirror = {Direction.EGRESS: Direction.INGRESS,
              Direction.INGRESS: Direction.EGRESS}
    cursors = [0] * len(per_flow)
    for flow_index in deck:
        records = per_flow[flow_index]
        _, _, direction = records[cursors[flow_index]]
        cursors[flow_index] += 1
        flow = flow_of(flow_index)
        kept_client = client.admit(flow_index, flow, direction) != DROP
        kept_server = server.admit(flow_index, flow.reversed(),
                                   mirror[direction]) != DROP
        assert kept_client == kept_server
