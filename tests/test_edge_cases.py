"""Edge cases: kernel API misuse, blocking perf reads, event disorder.

The disorder tests reproduce §3.3.1's motivation for the time-window
array: "to enable effective merging and address the message disorder
problem introduced by multiple CPU cores" — the pipeline must survive
events arriving slightly out of chronological order.
"""

import pytest

from repro.agent.agent import DeepFlowAgent
from repro.apps.proxy import NginxProxy
from repro.apps.runtime import HttpService, Response
from repro.kernel.ebpf import PerfBuffer
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction, SyscallRecord
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import http1
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


class TestKernelApiMisuse:
    def test_recv_abi_rejects_egress_name(self):
        kernel = Kernel(Simulator(), "n1")
        process = kernel.create_process("p", "10.0.0.1")
        thread = kernel.create_thread(process)
        with pytest.raises(KernelError, match="not an ingress ABI"):
            kernel.recv_abi("write", thread, 3)

    def test_send_abi_rejects_ingress_name(self):
        kernel = Kernel(Simulator(), "n1")
        process = kernel.create_process("p", "10.0.0.1")
        thread = kernel.create_thread(process)
        with pytest.raises(KernelError, match="not an egress ABI"):
            kernel.send_abi("read", thread, 3, b"x")

    def test_listen_without_network_rejected(self):
        kernel = Kernel(Simulator(), "n1")
        process = kernel.create_process("p", "10.0.0.1")
        with pytest.raises(KernelError, match="not attached"):
            kernel.listen(process, 80)

    def test_write_to_closed_socket_raises_broken_pipe(self):
        sim = Simulator(seed=1)
        builder = ClusterBuilder(node_count=2)
        a = builder.add_pod(0, "a")
        b = builder.add_pod(1, "b")
        network = Network(sim, builder.build())
        kernel_b = network.kernel_for_node(b.node.name)
        server_proc = kernel_b.create_process("srv", b.ip)
        server_thread = kernel_b.create_thread(server_proc)
        listener = kernel_b.listen(server_proc, 80)

        def server_loop():
            fd = yield from kernel_b.accept(server_thread, listener)
            kernel_b.close(server_thread, fd)

        kernel_a = network.kernel_for_node(a.node.name)
        client_proc = kernel_a.create_process("cli", a.ip)
        client_thread = kernel_a.create_thread(client_proc)

        def client():
            fd = yield from kernel_a.connect(client_thread, b.ip, 80)
            kernel_a.close(client_thread, fd)
            with pytest.raises(KernelError):
                yield from kernel_a.write(client_thread, fd, b"x")
            return "done"

        sim.spawn(server_loop())
        process = sim.spawn(client())
        assert sim.run_process(process) == "done"


class TestPerfBufferBlockingGet:
    def test_get_blocks_until_submit(self):
        sim = Simulator()
        buffer = PerfBuffer(sim, capacity=4)
        got = []

        def consumer():
            item = yield buffer.get()
            got.append((sim.now, item))

        def producer():
            yield 1.0
            buffer.submit("record")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [(1.0, "record")]

    def test_close_unblocks_with_error(self):
        from repro.sim.queue import QueueClosed
        sim = Simulator()
        buffer = PerfBuffer(sim)
        outcome = []

        def consumer():
            try:
                yield buffer.get()
            except QueueClosed:
                outcome.append("closed")

        sim.spawn(consumer())
        sim.run()
        buffer.close()
        sim.run()
        assert outcome == ["closed"]


def _record(direction, t, socket_id, payload, seq):
    ft = FiveTuple("10.0.0.1", 40000, "10.0.0.2", 80)
    return SyscallRecord(
        pid=1, tid=100, coroutine_id=None, process_name="svc",
        socket_id=socket_id, five_tuple=ft, tcp_seq=seq,
        enter_time=t, exit_time=t + 1e-5, direction=direction,
        abi="read" if direction is Direction.INGRESS else "write",
        byte_len=len(payload), payload=payload, ret=len(payload),
        host_name="n1")


class TestEventDisorder:
    """§3.3.1: multi-core disorder must not break session aggregation."""

    def _events(self, exchanges=40):
        from repro.protocols import dubbo
        events = []
        t = 0.0
        for index in range(exchanges):
            t += 0.001
            events.append(_record(
                Direction.INGRESS, t, socket_id=index % 4,
                payload=dubbo.encode_request(index, "svc", "m"),
                seq=index * 50 + 1))
            t += 0.001
            events.append(_record(
                Direction.EGRESS, t, socket_id=index % 4,
                payload=dubbo.encode_response(index),
                seq=index * 20 + 1))
        return events

    @staticmethod
    def _shuffle_within_window(events, rng, window=4):
        """Local shuffles, as CPUs racing on the perf buffer produce."""
        shuffled = list(events)
        for start in range(0, len(shuffled) - window, window):
            chunk = shuffled[start:start + window]
            rng.shuffle(chunk)
            shuffled[start:start + window] = chunk
        return shuffled

    def test_locally_disordered_events_still_pair_by_stream_id(self):
        import random
        sim = Simulator(seed=5)
        kernel = Kernel(sim, "n1")
        agent = DeepFlowAgent(kernel, agent_index=1)
        events = self._shuffle_within_window(self._events(),
                                             random.Random(3))
        for event in events:
            agent._process_event(event)
        spans = agent.pending_spans
        # Every exchange pairs despite local disorder (multiplexed
        # matching by request id, not arrival order).
        complete = [span for span in spans if not span.is_error]
        assert len(complete) == 40
        assert all(span.protocol == "dubbo" for span in complete)

    def test_disorder_never_crashes_pipeline(self):
        import random
        for seed in range(5):
            sim = Simulator(seed=seed)
            kernel = Kernel(sim, "n1")
            agent = DeepFlowAgent(kernel, agent_index=1)
            events = self._shuffle_within_window(
                self._events(), random.Random(seed), window=6)
            for event in events:
                agent._process_event(event)
            assert agent.stats["events_processed"] == len(events)


class TestProxyFaultLifecycle:
    def test_clear_faults_restores_service(self):
        sim = Simulator(seed=6)
        builder = ClusterBuilder(node_count=2)
        lg = builder.add_pod(0, "lg")
        px = builder.add_pod(0, "px")
        be = builder.add_pod(1, "be")
        network = Network(sim, builder.build())
        backend = HttpService("be", be.node, 9000, pod=be)

        @backend.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        backend.start()
        proxy = NginxProxy("px", px.node, 8080, pod=px)
        proxy.add_route("/", [(be.ip, 9000)])
        proxy.start()
        proxy.inject_fault("/", status_code=404)

        kernel = network.kernel_for_node(lg.node.name)
        process = kernel.create_process("cli", lg.ip)
        thread = kernel.create_thread(process)
        from repro.apps.runtime import WorkerContext

        class _Shim:
            pass

        shim = _Shim()
        shim.kernel = kernel
        shim.ingress_abi = "read"
        shim.egress_abi = "write"
        shim.sim = sim
        worker = WorkerContext(shim, thread, None)

        def client():
            first = yield from worker.call_http(px.ip, 8080, "GET", "/x")
            proxy.clear_faults()
            second = yield from worker.call_http(px.ip, 8080, "GET", "/x")
            return first.status_code, second.status_code

        result = sim.run_process(sim.spawn(client()))
        assert result == (404, 200)
