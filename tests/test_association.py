"""Unit tests for implicit intra-component association (Figure 7)."""

from repro.agent.association import AssociationTracker
from repro.core.ids import IdAllocator
from repro.kernel.syscalls import CoroutineEvent, Direction
from repro.protocols.base import MessageType

REQ = MessageType.REQUEST
RESP = MessageType.RESPONSE
IN = Direction.INGRESS
OUT = Direction.EGRESS


def make_tracker():
    return AssociationTracker(IdAllocator(1), host="node-1")


def co_event(pid, coroutine_id, parent=None, t=0.0):
    return CoroutineEvent(kind="create", pid=pid, tid=100,
                          coroutine_id=coroutine_id,
                          parent_coroutine_id=parent, timestamp=t)


class TestThreadAssociation:
    def test_server_request_chain_shares_systrace(self):
        """Fig 7(a): ingress req → egress req → ingress resp → egress resp."""
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        t1 = tracker.assign_systrace(key, REQ, IN)
        t2 = tracker.assign_systrace(key, REQ, OUT)
        t3 = tracker.assign_systrace(key, RESP, IN)
        t4 = tracker.assign_systrace(key, RESP, OUT)
        assert t1 == t2 == t3 == t4

    def test_thread_reuse_partitions_on_new_ingress_request(self):
        """Fig 7(b): a new incoming request starts a new causal unit."""
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        first = tracker.assign_systrace(key, REQ, IN)
        tracker.assign_systrace(key, RESP, OUT)
        second = tracker.assign_systrace(key, REQ, IN)
        assert second != first

    def test_client_exchanges_partition_between_requests(self):
        """A pure client thread gets a fresh id per completed exchange."""
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        first = tracker.assign_systrace(key, REQ, OUT)
        assert tracker.assign_systrace(key, RESP, IN) == first
        second = tracker.assign_systrace(key, REQ, OUT)
        assert second != first

    def test_pipelined_client_requests_share_systrace(self):
        """Back-to-back egress requests without responses stay together."""
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        first = tracker.assign_systrace(key, REQ, OUT)
        second = tracker.assign_systrace(key, REQ, OUT)
        assert first == second

    def test_multiple_downstream_calls_inside_request(self):
        """Fig 7(c): consecutive calls on different sockets inherit."""
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        request = tracker.assign_systrace(key, REQ, IN)
        call_a = tracker.assign_systrace(key, REQ, OUT)
        resp_a = tracker.assign_systrace(key, RESP, IN)
        call_b = tracker.assign_systrace(key, REQ, OUT)
        assert request == call_a == resp_a == call_b

    def test_different_threads_never_share(self):
        tracker = make_tracker()
        key_a = tracker.pthread_key(1, 10, None)
        key_b = tracker.pthread_key(1, 11, None)
        assert (tracker.assign_systrace(key_a, REQ, IN)
                != tracker.assign_systrace(key_b, REQ, IN))

    def test_generation_increments_per_request(self):
        tracker = make_tracker()
        key = tracker.pthread_key(1, 10, None)
        tracker.assign_systrace(key, REQ, IN)
        first_gen = tracker.generation(key)
        tracker.assign_systrace(key, RESP, OUT)
        assert tracker.generation(key) == first_gen
        tracker.assign_systrace(key, REQ, IN)
        assert tracker.generation(key) == first_gen + 1


class TestCoroutinePseudoThreads:
    def test_coroutine_without_parent_owns_its_pthread(self):
        tracker = make_tracker()
        tracker.on_coroutine_event(co_event(1, 5))
        assert tracker.pthread_key(1, 100, 5) == ("c", 1, 5)

    def test_handler_spawned_by_idle_acceptor_gets_own_pthread(self):
        tracker = make_tracker()
        tracker.on_coroutine_event(co_event(1, 5))        # acceptor
        tracker.on_coroutine_event(co_event(1, 6, parent=5))  # handler
        assert tracker.pthread_key(1, 100, 6) == ("c", 1, 6)

    def test_worker_spawned_mid_request_joins_parent_pthread(self):
        tracker = make_tracker()
        tracker.on_coroutine_event(co_event(1, 5))
        handler_key = tracker.pthread_key(1, 100, 5)
        tracker.assign_systrace(handler_key, REQ, IN)  # request open
        tracker.on_coroutine_event(co_event(1, 6, parent=5))
        assert tracker.pthread_key(1, 100, 6) == handler_key

    def test_worker_shares_open_systrace(self):
        tracker = make_tracker()
        tracker.on_coroutine_event(co_event(1, 5))
        handler_key = tracker.pthread_key(1, 100, 5)
        request_id = tracker.assign_systrace(handler_key, REQ, IN)
        tracker.on_coroutine_event(co_event(1, 6, parent=5))
        worker_key = tracker.pthread_key(1, 100, 6)
        assert tracker.assign_systrace(worker_key, REQ, OUT) == request_id

    def test_concurrent_handlers_stay_separate(self):
        """Two handlers spawned by the same acceptor must not merge."""
        tracker = make_tracker()
        tracker.on_coroutine_event(co_event(1, 5))  # acceptor
        tracker.on_coroutine_event(co_event(1, 6, parent=5))
        tracker.on_coroutine_event(co_event(1, 7, parent=5))
        key_a = tracker.pthread_key(1, 100, 6)
        key_b = tracker.pthread_key(1, 100, 7)
        assert key_a != key_b
        assert (tracker.assign_systrace(key_a, REQ, IN)
                != tracker.assign_systrace(key_b, REQ, IN))

    def test_unknown_coroutine_falls_back_to_own_id(self):
        tracker = make_tracker()
        assert tracker.pthread_key(1, 100, 42) == ("c", 1, 42)

    def test_exit_events_are_ignored(self):
        tracker = make_tracker()
        tracker.on_coroutine_event(CoroutineEvent(
            kind="exit", pid=1, tid=100, coroutine_id=5,
            parent_coroutine_id=None, timestamp=0.0))
        assert tracker.pthread_key(1, 100, 5) == ("c", 1, 5)
