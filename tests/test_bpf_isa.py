"""Unit tests for the BPF ISA: assembler, interpreter, and verifier."""

import pytest

from repro.kernel.bpf_isa import (
    AssemblerError,
    BPFTrap,
    CTX_FIELDS,
    HOOK_HELPER_WHITELIST,
    Insn,
    Op,
    ProgramBuilder,
    R0,
    R1,
    R2,
    R3,
    R6,
    R7,
    R8,
    R10,
    execute,
    hook_type_of,
)
from repro.kernel.verifier import (
    VerifierError,
    verify_bytecode,
)


def _assemble(body) -> tuple:
    b = ProgramBuilder()
    body(b)
    return b.assemble()


def _ret_imm(value: int) -> tuple:
    return _assemble(lambda b: (b.mov_imm(R0, value), b.exit()))


class TestAssembler:
    def test_label_resolution_forward_and_back(self):
        b = ProgramBuilder()
        b.mov_imm(R6, 2)
        b.label("top")
        b.sub_imm(R6, 1)
        b.jne_imm(R6, 0, "top")
        b.ja("end")
        b.mov_imm(R0, 99)  # skipped
        b.label("end")
        b.mov_imm(R0, 0)
        b.exit()
        bytecode = b.assemble()
        # Backward jump: from pc 2 (jne) to pc 1 -> off = 1 - 2 - 1 = -2.
        assert bytecode[2].off == -2
        # Forward jump over one instruction -> off = +1.
        assert bytecode[3].off == 1

    def test_undefined_label_rejected(self):
        b = ProgramBuilder()
        b.ja("nowhere")
        with pytest.raises(AssemblerError, match="undefined label"):
            b.assemble()

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblerError, match="duplicate"):
            b.label("x")

    def test_unknown_helper_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError, match="unknown helper"):
            b.call("rm_rf_slash")

    def test_unknown_ctx_field_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError, match="unknown ctx field"):
            b.ld_ctx(R2, "password")

    def test_bad_register_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError, match="bad register"):
            b.mov_imm(42, 0)


class TestInterpreter:
    def test_arithmetic(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R2, 10),
            b.mov_imm(R3, 3),
            b.mov_reg(R0, R2),
            b.mul_imm(R0, 7),      # 70
            b.add_reg(R0, R3),     # 73
            b.mod_imm(R0, 64),     # 9
            b.lsh_imm(R0, 2),      # 36
            b.exit(),
        ))
        assert execute(bytecode).return_value == 36

    def test_u64_wraparound(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R0, 0),
            b.sub_imm(R0, 1),
            b.exit(),
        ))
        assert execute(bytecode).return_value == (1 << 64) - 1

    def test_bounded_loop_executes_exact_trips(self):
        b = ProgramBuilder()
        b.mov_imm(R7, 0)
        b.bounded_loop(R6, 13, lambda bb: bb.add_imm(R7, 2))
        b.mov_reg(R0, R7)
        b.exit()
        result = execute(b.assemble())
        assert result.return_value == 26

    def test_ctx_loads_and_stack_roundtrip(self):
        class Ctx:
            pid = 41
            byte_len = 500

        bytecode = _assemble(lambda b: (
            b.ld_ctx(R2, "pid"),
            b.stack_store(-8, R2),
            b.ld_ctx(R3, "byte_len"),
            b.stack_load(R0, -8),
            b.add_reg(R0, R3),
            b.exit(),
        ))
        assert execute(bytecode, Ctx()).return_value == 541

    def test_perf_submit_reaches_callback(self):
        submitted = []
        bytecode = _assemble(lambda b: (
            b.call("perf_submit"),
            b.mov_imm(R0, 0),
            b.exit(),
        ))
        sentinel = object()
        result = execute(bytecode, sentinel, submit=submitted.append)
        assert submitted == [sentinel]
        assert result.submissions == 1

    def test_helper_clobbers_r1_to_r5(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R2, 7),
            b.call("ktime_get_ns"),
            b.mov_reg(R0, R2),  # r2 was clobbered by the call
            b.exit(),
        ))
        with pytest.raises(BPFTrap, match="uninitialized"):
            execute(bytecode)

    def test_uninitialized_read_traps(self):
        bytecode = _assemble(lambda b: (b.mov_reg(R0, R8), b.exit()))
        with pytest.raises(BPFTrap, match="uninitialized"):
            execute(bytecode)

    def test_uninitialized_stack_read_traps(self):
        bytecode = _assemble(lambda b: (
            b.stack_load(R0, -16),
            b.exit(),
        ))
        with pytest.raises(BPFTrap, match="uninitialized stack"):
            execute(bytecode)

    def test_division_by_zero_traps(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R0, 8),
            b.mov_imm(R2, 0),
            b._emit(Op.DIV_REG, R0, R2),
            b.exit(),
        ))
        with pytest.raises(BPFTrap, match="division by zero"):
            execute(bytecode)

    def test_step_limit_contains_runaway_program(self):
        bytecode = (Insn(Op.JA, off=-1),)
        with pytest.raises(BPFTrap, match="step limit"):
            execute(bytecode, max_steps=1000)

    def test_missing_ctx_fields_read_as_zero(self):
        bytecode = _assemble(lambda b: (
            b.ld_ctx(R0, "socket_id"),
            b.exit(),
        ))
        assert execute(bytecode, object()).return_value == 0


class TestVerifierAnalyses:
    def test_report_shape_on_straight_line(self):
        report = verify_bytecode(_ret_imm(7))
        assert report.insn_count == 2
        assert report.worst_case_instructions == 2
        assert report.back_edge_count == 0
        assert report.stack_bytes == 0

    def test_loop_bound_is_proven_not_declared(self):
        b = ProgramBuilder()
        b.bounded_loop(R6, 9, lambda bb: bb.mov_imm(R7, 5))
        b.mov_imm(R0, 0)
        b.exit()
        report = verify_bytecode(b.assemble())
        assert len(report.loop_bounds) == 1
        _src, _dst, taken = report.loop_bounds[0]
        # 9 iterations take the back-edge 8 times.
        assert taken == 8

    def test_worst_case_covers_longer_branch(self):
        b = ProgramBuilder()
        b.ld_ctx(R6, "ret")
        b.jeq_imm(R6, 0, "short")
        b.mov_imm(R7, 1)
        b.mov_imm(R7, 2)
        b.mov_imm(R7, 3)
        b.label("short")
        b.mov_imm(R0, 0)
        b.exit()
        report = verify_bytecode(b.assemble())
        # entry(1) + jump(1) + long arm(3) + epilogue(2)
        assert report.worst_case_instructions == 7

    def test_rejects_jump_out_of_range(self):
        bytecode = (Insn(Op.JA, off=99), Insn(Op.EXIT))
        with pytest.raises(VerifierError, match="out of range"):
            verify_bytecode(bytecode)

    def test_rejects_fall_off_end(self):
        bytecode = (Insn(Op.MOV_IMM, R0, imm=0),)
        with pytest.raises(VerifierError, match="falls off the end"):
            verify_bytecode(bytecode)

    def test_rejects_unreachable_code(self):
        b = ProgramBuilder()
        b.mov_imm(R0, 0)
        b.exit()
        b.mov_imm(R0, 1)  # dead
        b.exit()
        with pytest.raises(VerifierError, match="unreachable"):
            verify_bytecode(b.assemble())

    def test_rejects_exit_with_uninitialized_r0(self):
        bytecode = (Insn(Op.EXIT),)
        with pytest.raises(VerifierError, match="r0 is uninitialized"):
            verify_bytecode(bytecode)

    def test_rejects_pointer_leak_through_r0(self):
        bytecode = _assemble(lambda b: (b.mov_reg(R0, R10), b.exit()))
        with pytest.raises(VerifierError, match="leaks a pointer"):
            verify_bytecode(bytecode)

    def test_rejects_write_to_frame_pointer(self):
        bytecode = (Insn(Op.MOV_IMM, R10, imm=0),
                    Insn(Op.MOV_IMM, R0, imm=0), Insn(Op.EXIT))
        with pytest.raises(VerifierError, match="read-only"):
            verify_bytecode(bytecode)

    def test_rejects_ctx_load_out_of_bounds(self):
        bytecode = (Insn(Op.LDX, R2, R1, off=4096),
                    Insn(Op.MOV_IMM, R0, imm=0), Insn(Op.EXIT))
        with pytest.raises(VerifierError, match="invalid offset"):
            verify_bytecode(bytecode)

    def test_rejects_misaligned_ctx_load(self):
        bytecode = (Insn(Op.LDX, R2, R1, off=4),
                    Insn(Op.MOV_IMM, R0, imm=0), Insn(Op.EXIT))
        with pytest.raises(VerifierError, match="invalid offset"):
            verify_bytecode(bytecode)

    def test_rejects_store_through_scalar(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R2, 1000),
            b.stx(R2, -8, R2),
            b.mov_imm(R0, 0),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="non-stack"):
            verify_bytecode(bytecode)

    def test_rejects_pointer_arithmetic_with_unknown_scalar(self):
        bytecode = _assemble(lambda b: (
            b.ld_ctx(R2, "byte_len"),
            b.mov_reg(R3, R10),
            b.add_reg(R3, R2),  # fp + unknown: unprovable bounds
            b.stx(R3, -8, R2),
            b.mov_imm(R0, 0),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="unbounded"):
            verify_bytecode(bytecode)

    def test_rejects_division_by_unproven_divisor(self):
        bytecode = _assemble(lambda b: (
            b.ld_ctx(R2, "byte_len"),
            b.mov_imm(R0, 100),
            b._emit(Op.DIV_REG, R0, R2),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="nonzero"):
            verify_bytecode(bytecode)

    def test_rejects_read_of_uninitialized_stack_slot(self):
        bytecode = _assemble(lambda b: (
            b.stack_load(R0, -24),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="uninitialized stack"):
            verify_bytecode(bytecode)

    def test_branch_refinement_tracks_equality(self):
        # After `jne r6, 0, out` falls through, r6 is known to be 0 and
        # the division below is provably by 1 — acceptance depends on
        # the verifier refining branch facts.
        b = ProgramBuilder()
        b.ld_ctx(R6, "ret")
        b.jne_imm(R6, 0, "out")
        b.add_imm(R6, 1)
        b.mov_imm(R0, 10)
        b._emit(Op.DIV_REG, R0, R6)
        b.exit()
        b.label("out")
        b.mov_imm(R0, 0)
        b.exit()
        verify_bytecode(b.assemble())

    def test_verification_is_deterministic(self):
        b = ProgramBuilder()
        b.ld_ctx(R6, "byte_len")
        b.bounded_loop(R7, 17, lambda bb: bb.rsh_imm(R6, 1))
        b.mov_reg(R0, R6)
        b.exit()
        bytecode = b.assemble()
        reports = {verify_bytecode(bytecode) for _ in range(5)}
        assert len(reports) == 1


class TestHelperWhitelist:
    def test_hook_type_classification(self):
        assert hook_type_of("sys_enter_read") == "tracepoint"
        assert hook_type_of("sys_exit_sendmsg") == "tracepoint"
        assert hook_type_of("uprobe:nginx:ssl_write") == "uprobe"
        assert hook_type_of("uretprobe:nginx:ssl_write") == "uretprobe"
        assert hook_type_of("coroutine_create") == "kprobe"
        assert hook_type_of("socket_close") == "kprobe"

    def test_whitelists_are_disjoint_on_probe_reads(self):
        assert "probe_read_user" not in HOOK_HELPER_WHITELIST["kprobe"]
        assert "probe_read_kernel" not in HOOK_HELPER_WHITELIST["uprobe"]

    def test_kprobe_cannot_probe_read_user(self):
        bytecode = _assemble(lambda b: (
            b.mov_reg(R1, R10),
            b.add_imm(R1, -8),
            b.mov_imm(R2, 8),
            b.call("probe_read_user"),
            b.mov_imm(R0, 0),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="not allowed"):
            verify_bytecode(bytecode, "kprobe")
        verify_bytecode(bytecode, "uprobe")

    def test_perf_submit_requires_ctx_pointer(self):
        bytecode = _assemble(lambda b: (
            b.mov_imm(R1, 0),
            b.call("perf_submit"),
            b.mov_imm(R0, 0),
            b.exit(),
        ))
        with pytest.raises(VerifierError, match="ctx pointer"):
            verify_bytecode(bytecode)

    def test_unknown_hook_type_rejected(self):
        with pytest.raises(VerifierError, match="unknown hook type"):
            verify_bytecode(_ret_imm(0), "xdp")


class TestCtxLayout:
    def test_fields_are_word_aligned_and_in_bounds(self):
        from repro.kernel.bpf_isa import CTX_SIZE, WORD
        for name, off in CTX_FIELDS.items():
            assert off % WORD == 0, name
            assert 0 <= off <= CTX_SIZE - WORD, name
