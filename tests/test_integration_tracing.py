"""End-to-end integration: apps → kernel hooks → agent → server → trace.

This is the paper's core claim exercised whole: zero-code applications
(no tracing imports, no header injection) produce complete distributed
traces with correct causality, purely from kernel-visible information.
"""

import pytest

from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.span import SpanKind, SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def build_frontend_backend(runtime="threads"):
    """Two-tier app on a two-node cluster with agents everywhere."""
    sim = Simulator(seed=11)
    builder = ClusterBuilder(node_count=3)
    lg_pod = builder.add_pod(0, "loadgen-pod", labels={"app": "loadgen"})
    fe_pod = builder.add_pod(1, "frontend-pod", labels={"app": "frontend"})
    be_pod = builder.add_pod(2, "backend-pod", labels={"app": "backend"})
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)

    backend = HttpService("backend", be_pod.node, 9000, pod=be_pod,
                          runtime=runtime, service_time=0.002)

    @backend.route("/api")
    def api(worker, request):
        yield from worker.work(0.001)
        return Response(200, body=b'{"items": []}')

    frontend = HttpService("frontend", fe_pod.node, 8000, pod=fe_pod,
                           runtime=runtime, service_time=0.001)

    @frontend.route("/")
    def home(worker, request):
        upstream = yield from worker.call_http(be_pod.ip, 9000, "GET",
                                               "/api/items")
        return Response(upstream.status_code, body=upstream.body)

    backend.start()
    frontend.start()
    return sim, network, server, agents, (lg_pod, fe_pod, be_pod)


def run_load(sim, agents, lg_pod, fe_pod, rate=20, duration=0.5):
    generator = LoadGenerator(lg_pod.node, fe_pod.ip, 8000, rate=rate,
                              duration=duration, connections=2, pod=lg_pod,
                              name="loadgen")
    process = generator.run()
    report = sim.run_process(process)
    sim.run(until=sim.now + 1.0)
    for agent in agents:
        agent.flush()
    return report


class TestZeroCodeTracing:
    def test_load_completes(self):
        sim, network, server, agents, pods = build_frontend_backend()
        report = run_load(sim, agents, pods[0], pods[1])
        assert report.completed == report.sent
        assert report.errors == 0

    def test_all_four_span_sides_collected(self):
        sim, network, server, agents, pods = build_frontend_backend()
        report = run_load(sim, agents, pods[0], pods[1])
        spans = server.store.all_spans()
        # Two sessions per request (edge + backend), observed from both
        # ends: 4 syscall spans per request.
        assert len(spans) == 4 * report.completed
        sides = {(span.process_name, span.side.value) for span in spans}
        assert ("loadgen", "c") in sides
        assert ("frontend", "s") in sides
        assert ("frontend", "c") in sides
        assert ("backend", "s") in sides

    def test_trace_assembles_full_causal_chain(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=10, duration=0.3)
        start = server.slowest_span()
        trace = server.trace(start.span_id)
        assert len(trace) == 4
        roots = trace.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.process_name == "loadgen"
        fe_server = trace.children(root)
        assert [span.process_name for span in fe_server] == ["frontend"]
        assert fe_server[0].side is SpanSide.SERVER
        fe_client = trace.children(fe_server[0])
        assert [span.side for span in fe_client] == [SpanSide.CLIENT]
        be_server = trace.children(fe_client[0])
        assert [span.process_name for span in be_server] == ["backend"]

    def test_traces_do_not_merge_across_requests(self):
        sim, network, server, agents, pods = build_frontend_backend()
        report = run_load(sim, agents, pods[0], pods[1], rate=10,
                          duration=0.5)
        assert report.completed >= 3
        start = server.slowest_span()
        trace = server.trace(start.span_id)
        assert len(trace) == 4  # exactly one request's spans

    def test_spans_carry_protocol_semantics(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.3)
        backend_spans = server.find_spans(process_name="backend")
        assert backend_spans
        span = backend_spans[0]
        assert span.protocol == "http"
        assert span.operation == "GET"
        assert span.resource == "/api/items"
        assert span.status == "ok"
        assert span.status_code == 200

    def test_spans_enriched_with_resource_tags(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.3)
        span = server.find_spans(process_name="backend")[0]
        assert span.tags.get("pod") == "backend-pod"
        assert span.tags.get("region") == "region-1"
        assert "vpc" in span.tags

    def test_flow_metrics_attached(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.3)
        span = server.find_spans(process_name="backend")[0]
        assert "tcp.retransmissions" in span.metrics
        assert span.metrics["tcp.connect_rtt"] > 0

    def test_timing_is_nested(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.3)
        trace = server.trace(server.slowest_span().span_id)
        root = trace.roots()[0]
        for span in trace:
            if span is root:
                continue
            assert root.start_time <= span.start_time
            assert span.end_time <= root.end_time

    def test_coroutine_runtime_produces_same_trace_shape(self):
        sim, network, server, agents, pods = build_frontend_backend(
            runtime="coroutines")
        report = run_load(sim, agents, pods[0], pods[1], rate=10,
                          duration=0.3)
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        assert len(trace) == 4
        assert len(trace.roots()) == 1

    def test_undeploy_stops_collection(self):
        sim, network, server, agents, pods = build_frontend_backend()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.2)
        count_before = len(server.store)
        assert count_before > 0
        for agent in agents:
            agent.undeploy()
        run_load(sim, agents, pods[0], pods[1], rate=5, duration=0.2)
        assert len(server.store) == count_before


class TestNetworkSpans:
    def test_capture_devices_appear_in_trace(self):
        sim, network, server, agents, pods = build_frontend_backend()
        lg_pod, fe_pod, be_pod = pods
        # Tap the path between frontend and backend (node2 <-> node3).
        path = network.route(fe_pod.ip, be_pod.ip)
        for device in path:
            agents[1].enable_capture(device)
        run_load(sim, agents, lg_pod, fe_pod, rate=5, duration=0.3)
        trace = server.trace(server.slowest_span().span_id)
        fe_client = next(span for span in trace
                         if span.process_name == "frontend"
                         and span.side is SpanSide.CLIENT)
        be_server = next(span for span in trace
                         if span.process_name == "backend")
        # Shared fabric devices (ToR, NICs) also sit on the loadgen →
        # frontend path, so that hop contributes spans too; check the
        # frontend → backend hop by flow.
        net_spans = [span for span in trace
                     if span.kind is SpanKind.NETWORK
                     and span.flow_key == fe_client.flow_key]
        assert len(net_spans) == len(path)
        # Chained in path order between frontend client and backend server.
        ordered = sorted(net_spans, key=lambda span: span.path_index)
        assert ordered[0].parent_id == fe_client.span_id
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.parent_id == earlier.span_id
        assert be_server.parent_id == ordered[-1].span_id

    def test_network_span_timestamps_between_endpoints(self):
        sim, network, server, agents, pods = build_frontend_backend()
        lg_pod, fe_pod, be_pod = pods
        for device in network.route(fe_pod.ip, be_pod.ip):
            agents[1].enable_capture(device)
        run_load(sim, agents, lg_pod, fe_pod, rate=5, duration=0.3)
        trace = server.trace(server.slowest_span().span_id)
        fe_client = next(span for span in trace
                         if span.process_name == "frontend"
                         and span.side is SpanSide.CLIENT)
        net_spans = [span for span in trace
                     if span.kind is SpanKind.NETWORK
                     and span.flow_key == fe_client.flow_key]
        assert net_spans
        for span in net_spans:
            assert span.start_time >= fe_client.start_time
            assert span.end_time <= fe_client.end_time
