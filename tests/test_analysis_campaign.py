"""The fault campaign must localize every Figure 2 category it injects."""

import pytest

from repro.analysis.campaign import CATEGORIES, FaultCampaign
from repro.survey.failures import (
    FAILURE_SOURCES,
    NETWORK_FAILURE_BREAKDOWN,
    fig2a_series,
    fig2b_series,
    validate,
)


class TestFigure2Data:
    def test_fractions_validate(self):
        validate()

    def test_network_is_largest_source(self):
        assert fig2a_series()[0][0] == "network infrastructure"

    def test_virtual_network_is_weakest_spot(self):
        assert fig2b_series()[0] == ("virtual network", 0.308)

    def test_fractions_match_paper_headlines(self):
        assert FAILURE_SOURCES["network infrastructure"] == 0.473
        assert FAILURE_SOURCES["application"] == 0.327
        assert FAILURE_SOURCES["computing infrastructure"] == 0.127
        assert FAILURE_SOURCES["external traffic surge"] == 0.073
        assert NETWORK_FAILURE_BREAKDOWN["virtual network"] == 0.308


@pytest.mark.parametrize("category", CATEGORIES)
def test_campaign_localizes_category(category):
    outcome = FaultCampaign(seed=3).run_scenario(category)
    assert outcome.detected == category, (
        f"injected {category!r} diagnosed as {outcome.detected!r}; "
        f"evidence: {outcome.evidence}")
    assert outcome.culprit


def test_campaign_full_run_accuracy():
    result = FaultCampaign(seed=5).run(CATEGORIES)
    assert result.accuracy == 1.0
    assert set(result.detected_counts()) == set(CATEGORIES)
