"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield 1.5
        fired.append(sim.now)
        yield 2.5
        fired.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert fired == [1.5, 4.0]


def test_process_result_delivered_to_joiner():
    sim = Simulator()

    def child():
        yield 1.0
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result + 1

    process = sim.spawn(parent())
    assert sim.run_process(process) == 43


def test_event_value_passed_through_yield():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    sim.spawn(waiter())
    sim.call_soon(event.succeed, "hello")
    sim.run()
    assert got == ["hello"]


def test_event_failure_raises_in_waiter():
    sim = Simulator()
    event = sim.event()

    def waiter():
        with pytest.raises(ValueError):
            yield event
        return "handled"

    process = sim.spawn(waiter())
    sim.call_soon(event.fail, ValueError("boom"))
    assert sim.run_process(process) == "handled"


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_already_triggered_event_resumes_waiter():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def waiter():
        value = yield event
        return value

    process = sim.spawn(waiter())
    assert sim.run_process(process) == "early"


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield 0.1
        raise RuntimeError("child failed")

    def parent():
        try:
            yield sim.spawn(child())
        except RuntimeError as exc:
            return str(exc)

    process = sim.spawn(parent())
    assert sim.run_process(process) == "child failed"


def test_interrupt_is_raised_inside_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    process = sim.spawn(sleeper())

    def interrupter():
        yield 3.0
        process.interrupt("wake up")

    sim.spawn(interrupter())
    sim.run()
    assert log == [(3.0, "wake up")]


def test_kill_terminates_without_resuming():
    sim = Simulator()
    log = []

    def victim():
        yield 100.0
        log.append("should not happen")

    process = sim.spawn(victim())

    def killer():
        yield 1.0
        process.kill()

    sim.spawn(killer())
    sim.run()
    assert process.finished
    assert log == []


def test_run_until_stops_clock():
    sim = Simulator()

    def ticker():
        while True:
            yield 1.0

    sim.spawn(ticker())
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_any_of_triggers_on_first():
    sim = Simulator()
    results = []

    def waiter():
        value = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert results == [(1.0, "fast")]


def test_all_of_collects_every_result():
    sim = Simulator()
    results = []

    def waiter():
        values = yield sim.all_of([sim.timeout(2.0, "a"), sim.timeout(1.0, "b")])
        results.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert results == [(2.0, ["a", "b"])]


def test_deterministic_rng_with_same_seed():
    draws_a = [Simulator(seed=7).rng.random() for _ in range(1)]
    draws_b = [Simulator(seed=7).rng.random() for _ in range(1)]
    assert draws_a == draws_b


def test_fifo_ordering_of_simultaneous_callbacks():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_soon(order.append, i)
    sim.run()
    assert order == list(range(10))


def test_deadlock_detection_in_run_process():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    process = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(process)


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield "not an event"

    process = sim.spawn(bad())
    sim.run()
    with pytest.raises(SimulationError):
        _ = process.result


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_add_callback_after_trigger_still_fires():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    sim.run()
    assert seen == ["v"]
