"""Unit tests for the blocking FIFO queue."""

import pytest

from repro.sim import Queue, QueueClosed, Simulator


def test_put_then_get_returns_item():
    sim = Simulator()
    queue = Queue(sim)
    queue.put("a")
    got = []

    def getter():
        item = yield queue.get()
        got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == ["a"]


def test_get_blocks_until_put():
    sim = Simulator()
    queue = Queue(sim)
    got = []

    def getter():
        item = yield queue.get()
        got.append((sim.now, item))

    def putter():
        yield 2.0
        queue.put("late")

    sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    assert got == [(2.0, "late")]


def test_fifo_order_among_items():
    sim = Simulator()
    queue = Queue(sim)
    for i in range(5):
        queue.put(i)
    got = []

    def getter():
        for _ in range(5):
            item = yield queue.get()
            got.append(item)

    sim.spawn(getter())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_fifo_order_among_waiters():
    sim = Simulator()
    queue = Queue(sim)
    got = []

    def getter(tag):
        item = yield queue.get()
        got.append((tag, item))

    sim.spawn(getter("first"))
    sim.run()
    sim.spawn(getter("second"))
    sim.run()
    queue.put("x")
    queue.put("y")
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_capacity_drops_excess():
    sim = Simulator()
    queue = Queue(sim, capacity=2)
    assert queue.put(1)
    assert queue.put(2)
    assert not queue.put(3)
    assert queue.dropped == 1
    assert len(queue) == 2


def test_close_fails_pending_getters():
    sim = Simulator()
    queue = Queue(sim, name="q")
    outcome = []

    def getter():
        try:
            yield queue.get()
        except QueueClosed:
            outcome.append("closed")

    sim.spawn(getter())
    sim.run()
    queue.close()
    sim.run()
    assert outcome == ["closed"]


def test_put_after_close_is_dropped():
    sim = Simulator()
    queue = Queue(sim)
    queue.close()
    assert not queue.put("x")
    assert queue.dropped == 1


def test_drain_empties_queue():
    sim = Simulator()
    queue = Queue(sim)
    for i in range(3):
        queue.put(i)
    assert queue.drain() == [0, 1, 2]
    assert len(queue) == 0


def test_get_nowait_raises_when_empty():
    sim = Simulator()
    queue = Queue(sim)
    with pytest.raises(IndexError):
        queue.get_nowait()


def test_total_put_counter():
    sim = Simulator()
    queue = Queue(sim, capacity=1)
    queue.put(1)
    queue.put(2)
    assert queue.total_put == 1
    assert queue.dropped == 1
