"""Unit + property-based tests for every protocol codec."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import MessageType
from repro.protocols import amqp, dns, dubbo, http1, http2, kafka
from repro.protocols import mqtt, mysql, redis, tls

_names = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=20)
_paths = _names.map(lambda s: "/" + s)
_domains = st.lists(_names, min_size=1, max_size=4).map(".".join)


class TestHttp1:
    spec = http1.Http1Spec()

    def test_request_round_trip(self):
        raw = http1.encode_request("GET", "/api/users",
                                   headers={"X-Request-ID": "abc-123"})
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.operation == "GET"
        assert message.resource == "/api/users"
        assert message.x_request_id == "abc-123"

    def test_response_round_trip(self):
        raw = http1.encode_response(404, body=b"missing")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.RESPONSE
        assert message.status_code == 404
        assert message.is_error

    def test_2xx_is_ok(self):
        assert self.spec.parse(http1.encode_response(201)).status == "ok"

    def test_traceparent_extraction(self):
        raw = http1.encode_request(
            "POST", "/x", headers={"traceparent": "00-abc-def-01"})
        assert self.spec.parse(raw).traceparent == "00-abc-def-01"

    def test_infer_accepts_http_rejects_binary(self):
        assert self.spec.infer(b"GET / HTTP/1.1\r\n\r\n")
        assert self.spec.infer(b"HTTP/1.1 200 OK\r\n\r\n")
        assert not self.spec.infer(b"\x00\x01\x02\x03")

    def test_parse_garbage_returns_none(self):
        assert self.spec.parse(b"NOT A REAL THING") is None

    @given(method=st.sampled_from(http1.METHODS), path=_paths,
           body=st.binary(max_size=64))
    @settings(max_examples=50)
    def test_property_request_round_trip(self, method, path, body):
        message = self.spec.parse(http1.encode_request(method, path,
                                                       body=body))
        assert message.operation == method
        assert message.resource == path
        assert message.msg_type is MessageType.REQUEST

    @given(code=st.integers(min_value=100, max_value=599))
    @settings(max_examples=30)
    def test_property_status_classification(self, code):
        message = self.spec.parse(http1.encode_response(code))
        assert message.status_code == code
        assert message.status == ("error" if code >= 400 else "ok")


class TestHttp2:
    spec = http2.Http2Spec()

    def test_request_round_trip_with_preface(self):
        raw = http2.encode_request("GET", "/reviews/1", stream_id=7,
                                   with_preface=True)
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.stream_id == 7
        assert message.resource == "/reviews/1"

    def test_response_round_trip(self):
        raw = http2.encode_response(500, stream_id=7)
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.RESPONSE
        assert message.is_error
        assert message.stream_id == 7

    def test_data_only_frame_is_continuation(self):
        frame = http2._frame(http2.FRAME_DATA, 0, 5, b"body bytes")
        assert self.spec.parse(frame) is None

    def test_custom_headers_survive(self):
        raw = http2.encode_request("POST", "/p", stream_id=3,
                                   headers={"x-request-id": "xyz"})
        assert self.spec.parse(raw).x_request_id == "xyz"

    @given(stream_id=st.integers(min_value=1, max_value=2**31 - 1),
           path=_paths)
    @settings(max_examples=50)
    def test_property_stream_id_round_trip(self, stream_id, path):
        message = self.spec.parse(
            http2.encode_request("GET", path, stream_id=stream_id))
        assert message.stream_id == stream_id
        assert message.resource == path


class TestDns:
    spec = dns.DnsSpec()

    def test_query_round_trip(self):
        raw = dns.encode_query(0x1234, "reviews.default.svc.cluster.local")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.stream_id == 0x1234
        assert message.resource == "reviews.default.svc.cluster.local"
        assert message.operation == "A"

    def test_response_round_trip(self):
        raw = dns.encode_response(0x1234, "svc.local", "10.0.2.3")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.RESPONSE
        assert message.status == "ok"
        assert dns.decode_address(raw) == "10.0.2.3"

    def test_nxdomain_is_error(self):
        raw = dns.encode_response(7, "nope.local",
                                  rcode=dns.RCODE_NXDOMAIN)
        message = self.spec.parse(raw)
        assert message.is_error
        assert message.status_code == dns.RCODE_NXDOMAIN

    @given(txn=st.integers(min_value=0, max_value=0xFFFF), domain=_domains)
    @settings(max_examples=50)
    def test_property_query_round_trip(self, txn, domain):
        message = self.spec.parse(dns.encode_query(txn, domain))
        assert message.stream_id == txn
        assert message.resource == domain


class TestRedis:
    spec = redis.RedisSpec()

    def test_request_round_trip(self):
        raw = redis.encode_request("GET", "session:42")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.operation == "GET"
        assert message.resource == "session:42"

    def test_simple_string_response(self):
        message = self.spec.parse(redis.encode_response("OK"))
        assert message.msg_type is MessageType.RESPONSE
        assert message.status == "ok"

    def test_error_response(self):
        message = self.spec.parse(redis.encode_response(error="no such key"))
        assert message.is_error

    def test_null_bulk_response(self):
        assert redis.decode_response(redis.encode_response(None)) is None

    def test_decode_round_trip(self):
        assert redis.decode_request(
            redis.encode_request("SET", "k", "v")) == ["SET", "k", "v"]
        assert redis.decode_response(
            redis.encode_response("a longer value" * 4)) == (
                "a longer value" * 4)

    @given(command=st.sampled_from(redis.COMMANDS), key=_names)
    @settings(max_examples=50)
    def test_property_request_round_trip(self, command, key):
        message = self.spec.parse(redis.encode_request(command, key))
        assert message.operation == command
        assert message.resource == key


class TestMysql:
    spec = mysql.MysqlSpec()

    def test_query_round_trip(self):
        raw = mysql.encode_query("SELECT * FROM ratings WHERE id=1")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.operation == "SELECT"
        assert message.resource == "ratings"

    def test_table_extraction_variants(self):
        cases = {
            "INSERT INTO orders VALUES (1)": "orders",
            "UPDATE users SET x=1": "users",
            "DELETE FROM carts": "carts",
        }
        for sql, table in cases.items():
            assert self.spec.parse(mysql.encode_query(sql)).resource == table

    def test_ok_and_err_responses(self):
        ok = self.spec.parse(mysql.encode_ok())
        assert ok.msg_type is MessageType.RESPONSE and ok.status == "ok"
        err = self.spec.parse(mysql.encode_error(1146, "table missing"))
        assert err.is_error and err.status_code == 1146

    def test_resultset_is_ok_response(self):
        message = self.spec.parse(mysql.encode_resultset(3, 10))
        assert message.msg_type is MessageType.RESPONSE
        assert message.status == "ok"

    @given(sql=st.sampled_from(
        ["SELECT 1", "SELECT a FROM t1", "COMMIT", "BEGIN"]))
    def test_property_operation_is_first_token(self, sql):
        message = self.spec.parse(mysql.encode_query(sql))
        assert message.operation == sql.split()[0].upper()


class TestKafka:
    spec = kafka.KafkaSpec()

    def test_request_round_trip(self):
        raw = kafka.encode_request(kafka.API_PRODUCE, 99, "orders")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.operation == "Produce"
        assert message.resource == "orders"
        assert message.stream_id == 99

    def test_response_round_trip(self):
        message = self.spec.parse(kafka.encode_response(99))
        assert message.msg_type is MessageType.RESPONSE
        assert message.stream_id == 99
        assert message.status == "ok"

    def test_error_response(self):
        message = self.spec.parse(
            kafka.encode_response(5, kafka.ERROR_REQUEST_TIMED_OUT))
        assert message.is_error

    @given(correlation=st.integers(min_value=0, max_value=2**31 - 1),
           topic=_names)
    @settings(max_examples=50)
    def test_property_correlation_id_round_trip(self, correlation, topic):
        message = self.spec.parse(
            kafka.encode_request(kafka.API_FETCH, correlation, topic))
        assert message.stream_id == correlation
        assert message.resource == topic


class TestMqtt:
    spec = mqtt.MqttSpec()

    def test_publish_round_trip(self):
        raw = mqtt.encode_publish(21, "sensors/temp", b"22.1")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.operation == "PUBLISH"
        assert message.resource == "sensors/temp"
        assert message.stream_id == 21

    def test_puback_round_trip(self):
        message = self.spec.parse(mqtt.encode_puback(21))
        assert message.msg_type is MessageType.RESPONSE
        assert message.stream_id == 21
        assert message.status == "ok"

    def test_failed_puback(self):
        message = self.spec.parse(mqtt.encode_puback(21, success=False))
        assert message.is_error

    def test_subscribe_suback_pair(self):
        req = self.spec.parse(mqtt.encode_subscribe(5, "alerts/#"))
        resp = self.spec.parse(mqtt.encode_suback(5))
        assert req.stream_id == resp.stream_id == 5
        assert req.resource == "alerts/#"

    @given(packet_id=st.integers(min_value=1, max_value=0xFFFF),
           topic=_names, payload=st.binary(max_size=200))
    @settings(max_examples=50)
    def test_property_publish_round_trip(self, packet_id, topic, payload):
        message = self.spec.parse(
            mqtt.encode_publish(packet_id, topic, payload))
        assert message.stream_id == packet_id
        assert message.resource == topic


class TestDubbo:
    spec = dubbo.DubboSpec()

    def test_request_round_trip(self):
        raw = dubbo.encode_request(1001, "com.shop.OrderService", "create")
        message = self.spec.parse(raw)
        assert message.msg_type is MessageType.REQUEST
        assert message.stream_id == 1001
        assert message.resource == "com.shop.OrderService"
        assert message.operation == "create"

    def test_response_round_trip(self):
        message = self.spec.parse(dubbo.encode_response(1001))
        assert message.msg_type is MessageType.RESPONSE
        assert message.status == "ok"

    def test_error_status(self):
        message = self.spec.parse(
            dubbo.encode_response(1, dubbo.STATUS_SERVER_ERROR))
        assert message.is_error

    @given(request_id=st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=50)
    def test_property_request_id_round_trip(self, request_id):
        message = self.spec.parse(
            dubbo.encode_request(request_id, "svc", "m"))
        assert message.stream_id == request_id


class TestAmqp:
    spec = amqp.AmqpSpec()

    def test_publish_ack_pair_share_stream_id(self):
        publish = self.spec.parse(
            amqp.encode_publish(1, 42, "work-queue", b"job"))
        ack = self.spec.parse(amqp.encode_ack(1, 42))
        assert publish.msg_type is MessageType.REQUEST
        assert publish.resource == "work-queue"
        assert ack.msg_type is MessageType.RESPONSE
        assert publish.stream_id == ack.stream_id

    def test_nack_is_error(self):
        assert self.spec.parse(amqp.encode_nack(1, 7)).is_error

    @given(channel=st.integers(min_value=0, max_value=0xFFFF),
           tag=st.integers(min_value=0, max_value=2**32 - 1), queue=_names)
    @settings(max_examples=50)
    def test_property_channel_tag_round_trip(self, channel, tag, queue):
        publish = self.spec.parse(amqp.encode_publish(channel, tag, queue))
        ack = self.spec.parse(amqp.encode_ack(channel, tag))
        assert publish.stream_id == ack.stream_id
        assert publish.resource == queue


class TestTls:
    spec = tls.TlsSpec()

    def test_encrypt_decrypt_round_trip(self):
        plaintext = http1.encode_request("GET", "/secret")
        assert tls.decrypt(tls.encrypt(plaintext)) == plaintext

    def test_ciphertext_is_opaque_to_http_parser(self):
        ciphertext = tls.encrypt(http1.encode_request("GET", "/secret"))
        assert not http1.Http1Spec().infer(ciphertext)

    def test_spec_recognizes_record_as_encrypted(self):
        ciphertext = tls.encrypt(b"hello")
        message = self.spec.parse(ciphertext)
        assert message.operation == "encrypted"
        assert message.msg_type is MessageType.UNKNOWN

    @given(plaintext=st.binary(min_size=0, max_size=500))
    @settings(max_examples=50)
    def test_property_round_trip(self, plaintext):
        assert tls.decrypt(tls.encrypt(plaintext)) == plaintext
