"""Tests for the watchdog, incident reports, and the topology generator."""

import pytest

from repro.analysis.report import build_report
from repro.analysis.watchdog import Alert, AnomalyWatchdog
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.apps.servicegen import generate
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def build_flaky_world(fail_after=0.5, slow_after=None):
    """A service that starts failing (or slowing) mid-run."""
    sim = Simulator(seed=202)
    builder = ClusterBuilder(node_count=2)
    lg_pod = builder.add_pod(0, "lg")
    svc_pod = builder.add_pod(1, "svc")
    cluster = builder.build()
    Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)
    state = {"fail_after": fail_after, "slow_after": slow_after}
    service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                          service_time=0.001)

    @service.route("/")
    def home(worker, request):
        if (state["slow_after"] is not None
                and worker.sim.now > state["slow_after"]):
            yield from worker.work(0.03)
        if (state["fail_after"] is not None
                and worker.sim.now > state["fail_after"]):
            return Response(500)
        yield from worker.work(0.0001)
        return Response(200)

    service.start()
    generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000, rate=40,
                              duration=1.2, connections=4, pod=lg_pod,
                              name="client")
    report = sim.run_process(generator.run())
    sim.run(until=sim.now + 0.3)
    for agent in agents:
        agent.flush()
    return sim, server, cluster, report


class TestWatchdog:
    def test_error_burst_detected(self):
        sim, server, cluster, _report = build_flaky_world(fail_after=0.5)
        watchdog = AnomalyWatchdog(server, window=0.25)
        alerts = watchdog.scan(now=1.5)
        bursts = [alert for alert in alerts
                  if alert.kind == "error-burst"]
        assert bursts
        assert all(alert.service == "svc" for alert in bursts)
        # No alert before the fault began.
        assert all(alert.window_end > 0.5 for alert in bursts)
        assert bursts[0].exemplar_span_id is not None
        assert server.store.get(bursts[0].exemplar_span_id).is_error

    def test_latency_regression_detected(self):
        sim, server, cluster, _report = build_flaky_world(
            fail_after=None, slow_after=0.6)
        watchdog = AnomalyWatchdog(server, window=0.2,
                                   latency_ratio_threshold=3.0)
        alerts = watchdog.scan(now=1.5)
        regressions = [alert for alert in alerts
                       if alert.kind == "latency-regression"]
        assert regressions
        assert all(alert.window_end > 0.6 for alert in regressions)
        assert regressions[0].value >= 3.0

    def test_healthy_run_raises_no_alerts(self):
        sim, server, cluster, _report = build_flaky_world(fail_after=None)
        watchdog = AnomalyWatchdog(server, window=0.25)
        assert watchdog.scan(now=1.5) == []

    def test_scan_is_incremental(self):
        sim, server, cluster, _report = build_flaky_world(fail_after=0.5)
        watchdog = AnomalyWatchdog(server, window=0.25)
        first = watchdog.scan(now=0.75)
        second = watchdog.scan(now=1.5)
        windows = [(alert.window_start, alert.window_end)
                   for alert in first + second]
        assert len(windows) == len(set(windows))  # no window re-alerted

    def test_alert_describe(self):
        alert = Alert(kind="error-burst", service="svc",
                      window_start=1.0, window_end=1.5, value=0.5,
                      threshold=0.2)
        text = alert.describe()
        assert "error-burst" in text and "svc" in text and "50%" in text

    def test_degradation_tier_alert_on_enter_and_leave(self):
        sim = Simulator(seed=5)
        builder = ClusterBuilder(node_count=1)
        cluster = builder.build()
        Network(sim, cluster)
        server = DeepFlowServer()
        agent = server.new_agent(cluster.nodes[0].kernel,
                                 node=cluster.nodes[0])
        agent.deploy()
        watchdog = AnomalyWatchdog(server, agents=[agent], window=0.25)
        # Sustained perf-buffer pressure forces the controller down a tier.
        agent.overload.tick(0.1, 1.0, 50)
        alerts = watchdog.scan(now=0.2)
        tiers = [a for a in alerts if a.kind == "degradation-tier"]
        assert len(tiers) == 1
        assert tiers[0].service == agent.host
        assert tiers[0].detail == "FULL -> SHED_PAYLOAD (perf-pressure)"
        assert tiers[0].value > tiers[0].threshold  # entering degradation
        assert "SHED_PAYLOAD" in tiers[0].describe()
        # Recovery (after hysteresis) raises a leaving alert as well.
        for step in range(3):
            agent.overload.tick(0.2 + step * 0.1, 0.0, 0)
        again = watchdog.scan(now=0.6)
        tiers = [a for a in again if a.kind == "degradation-tier"]
        assert len(tiers) == 1
        assert tiers[0].detail == "SHED_PAYLOAD -> FULL (recovered)"
        assert tiers[0].value < tiers[0].threshold  # stepping back up
        # Already-reported transitions never re-alert.
        assert watchdog.scan(now=1.0) == []


class TestIncidentReport:
    def test_report_contains_diagnosis_and_trace(self):
        sim, server, cluster, _report = build_flaky_world(fail_after=0.3)
        error_span = next(span for span in server.store.all_spans()
                          if span.is_error
                          and span.side is SpanSide.SERVER)
        trace = server.trace(error_span.span_id)
        report = build_report(server, trace, cluster=cluster,
                              title="svc 500s")
        text = report.render()
        assert "svc 500s" in text
        assert "root cause category: application" in text
        assert "Deepest failing span" in text
        assert "pod: svc" in text
        assert "- GET" in text  # the rendered trace tree

    def test_report_renders_without_errors_present(self):
        sim, server, cluster, _report = build_flaky_world(fail_after=None)
        trace = server.trace(server.slowest_span().span_id)
        report = build_report(server, trace, cluster=cluster)
        text = report.render()
        assert "Incident report" in text
        assert "0 error span(s)" in text


class TestServiceGenerator:
    def test_generated_graph_is_deterministic(self):
        app_a = generate(seed=7, layers=3, width=3, fanout=2)
        app_b = generate(seed=7, layers=3, width=3, fanout=2)
        assert app_a.edges == app_b.edges

    def test_all_layers_reachable_and_requests_succeed(self):
        app = generate(seed=9, layers=3, width=2, fanout=2)
        generator = LoadGenerator(
            app.pods["loadgen"].node, app.entry_ip, app.entry_port,
            rate=10, duration=0.4, connections=2,
            pod=app.pods["loadgen"], name="loadgen")
        report = app.sim.run_process(generator.run())
        assert report.errors == 0
        assert report.completed == report.sent

    def test_traced_end_to_end_with_expected_span_count(self):
        sim = Simulator(seed=10)
        app = generate(sim, layers=3, width=2, fanout=2)
        server = DeepFlowServer()
        agents = []
        for node in app.cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        generator = LoadGenerator(
            app.pods["loadgen"].node, app.entry_ip, app.entry_port,
            rate=5, duration=0.3, connections=1,
            pod=app.pods["loadgen"], name="loadgen")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        assert report.errors == 0
        trace = server.trace(server.slowest_span().span_id)
        assert len(trace) == 2 * app.sessions_per_request()
        assert len(trace.roots()) == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate(layers=0)
