"""gRPC protocol: codec, inference priority, and end-to-end tracing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.extra_services import GrpcService
from repro.apps.runtime import WorkerContext
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import grpc, http2
from repro.protocols.base import MessageType
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


class TestGrpcCodec:
    spec = grpc.GrpcSpec()

    def test_request_round_trip(self):
        raw = grpc.encode_request("shop.Cart", "AddItem", stream_id=3,
                                  message=b"item-9")
        parsed = self.spec.parse(raw)
        assert parsed.msg_type is MessageType.REQUEST
        assert parsed.resource == "shop.Cart"
        assert parsed.operation == "AddItem"
        assert parsed.stream_id == 3

    def test_ok_response(self):
        parsed = self.spec.parse(grpc.encode_response(3, grpc.OK,
                                                      message=b"done"))
        assert parsed.msg_type is MessageType.RESPONSE
        assert parsed.status == "ok"
        assert parsed.status_code == grpc.OK

    def test_error_status_from_trailers(self):
        parsed = self.spec.parse(
            grpc.encode_response(3, grpc.UNAVAILABLE))
        assert parsed.is_error
        assert parsed.status_code == grpc.UNAVAILABLE

    def test_plain_http2_not_claimed(self):
        raw = http2.encode_request("GET", "/x", stream_id=1)
        assert not self.spec.infer(raw)

    def test_http2_spec_would_also_accept_grpc(self):
        """The ordering in DEFAULT_SPECS is what separates them."""
        raw = grpc.encode_request("svc", "m", stream_id=1)
        assert http2.Http2Spec().infer(raw)
        assert self.spec.infer(raw)

    @given(stream_id=st.integers(min_value=1, max_value=2**31 - 1),
           status=st.sampled_from([grpc.OK, grpc.NOT_FOUND,
                                   grpc.INTERNAL, grpc.UNAVAILABLE]))
    @settings(max_examples=50)
    def test_property_status_round_trip(self, stream_id, status):
        parsed = self.spec.parse(grpc.encode_response(stream_id, status))
        assert parsed.stream_id == stream_id
        assert parsed.status_code == status
        assert parsed.is_error == (status != grpc.OK)


class TestGrpcEndToEnd:
    def build(self):
        sim = Simulator(seed=101)
        builder = ClusterBuilder(node_count=2)
        client_pod = builder.add_pod(0, "client-pod")
        svc_pod = builder.add_pod(1, "grpc-pod")
        cluster = builder.build()
        network = Network(sim, cluster)
        server = DeepFlowServer()
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agents.append(agent)
        service = GrpcService("cart-svc", svc_pod.node, 50051,
                              pod=svc_pod)
        service.register("shop.Cart", "AddItem",
                         lambda _req: (grpc.OK, b"added"))
        service.register("shop.Cart", "Explode",
                         lambda _req: (grpc.INTERNAL, b""))
        service.start()
        kernel = network.kernel_for_node(client_pod.node.name)
        process = kernel.create_process("grpc-client", client_pod.ip)
        thread = kernel.create_thread(process)

        class _Shim:
            pass

        shim = _Shim()
        shim.kernel = kernel
        shim.ingress_abi = "read"
        shim.egress_abi = "write"
        shim.sim = sim
        worker = WorkerContext(shim, thread, None)
        return sim, server, agents, svc_pod, worker

    def test_unary_call_traced(self):
        sim, server, agents, svc_pod, worker = self.build()

        def client():
            reply = yield from worker.call_raw(
                svc_pod.ip, 50051,
                grpc.encode_request("shop.Cart", "AddItem", stream_id=1,
                                    with_preface=True))
            return grpc.GrpcSpec().parse(reply)

        result = sim.run_process(sim.spawn(client()))
        assert result.status == "ok"
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        spans = server.find_spans(process_name="cart-svc")
        assert len(spans) == 1
        span = spans[0]
        assert span.protocol == "grpc"
        assert span.operation == "AddItem"
        assert span.resource == "shop.Cart"
        assert span.side is SpanSide.SERVER

    def test_internal_error_traced_with_grpc_code(self):
        sim, server, agents, svc_pod, worker = self.build()

        def client():
            reply = yield from worker.call_raw(
                svc_pod.ip, 50051,
                grpc.encode_request("shop.Cart", "Explode", stream_id=1,
                                    with_preface=True))
            return grpc.GrpcSpec().parse(reply)

        result = sim.run_process(sim.spawn(client()))
        assert result.is_error
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        span = server.find_spans(process_name="cart-svc")[0]
        assert span.is_error
        assert span.status_code == grpc.INTERNAL

    def test_client_server_spans_chain(self):
        sim, server, agents, svc_pod, worker = self.build()

        def client():
            yield from worker.call_raw(
                svc_pod.ip, 50051,
                grpc.encode_request("shop.Cart", "AddItem", stream_id=1,
                                    with_preface=True))

        sim.run_process(sim.spawn(client()))
        sim.run(until=sim.now + 0.3)
        for agent in agents:
            agent.flush()
        client_span = server.find_spans(process_name="grpc-client")[0]
        trace = server.trace(client_span.span_id)
        assert len(trace) == 2
        server_span = next(span for span in trace
                           if span.process_name == "cart-svc")
        assert server_span.parent_id == client_span.span_id
