"""Unit tests for the server: store, assembler, tags, encoders, metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import IdAllocator
from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.server.assembler import TraceAssembler, assign_parents
from repro.server.database import AssociationFilter, SpanStore
from repro.server.encoding import (
    DirectEncoder,
    LowCardinalityEncoder,
    SmartEncoder,
)
from repro.server.metricsdb import MetricsDatabase
from repro.server.tags import TagRegistry

_ids = IdAllocator(9)


def span(kind=SpanKind.SYSCALL, side=SpanSide.CLIENT, start=0.0, end=1.0,
         **kwargs):
    return Span(span_id=_ids.next_id(), kind=kind, side=side,
                start_time=start, end_time=end, **kwargs)


class TestIds:
    def test_unique_and_agent_recoverable(self):
        allocator = IdAllocator(5)
        ids = [allocator.next_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(IdAllocator.agent_of(i) == 5 for i in ids)

    def test_distinct_agents_never_collide(self):
        a = IdAllocator(1)
        b = IdAllocator(2)
        assert not ({a.next_id() for _ in range(50)}
                    & {b.next_id() for _ in range(50)})

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator(-1)


class TestSpanStore:
    def test_insert_and_get(self):
        store = SpanStore()
        s = span()
        store.insert(s)
        assert store.get(s.span_id) is s
        assert len(store) == 1

    def test_duplicate_id_rejected(self):
        store = SpanStore()
        s = span()
        store.insert(s)
        with pytest.raises(ValueError):
            store.insert(s)

    def test_search_by_systrace(self):
        store = SpanStore()
        a = span(systrace_id=77)
        b = span(systrace_id=77)
        c = span(systrace_id=78)
        store.insert_many([a, b, c])
        assoc = AssociationFilter()
        assoc.absorb(a)
        found = store.search(assoc)
        assert found == {a.span_id, b.span_id}

    def test_search_by_flow_seq_distinguishes_direction(self):
        store = SpanStore()
        a = span(flow_key=("f",), req_tcp_seq=1)
        b = span(flow_key=("f",), resp_tcp_seq=1)
        store.insert_many([a, b])
        assoc = AssociationFilter()
        assoc.absorb(a)
        # Same numeric seq but a's is a request seq, b's a response seq.
        assert store.search(assoc) == {a.span_id}

    def test_search_by_x_request_id(self):
        store = SpanStore()
        a = span(x_request_id="r-1")
        b = span(x_request_id="r-1")
        store.insert_many([a, b])
        assoc = AssociationFilter()
        assoc.absorb(a)
        assert store.search(assoc) == {a.span_id, b.span_id}

    def test_span_list_time_range(self):
        store = SpanStore()
        spans = [span(start=float(i), end=float(i) + 0.5)
                 for i in range(10)]
        store.insert_many(spans)
        result = store.span_list(2.0, 5.0)
        assert [s.start_time for s in result] == [2.0, 3.0, 4.0]

    def test_span_list_predicate(self):
        store = SpanStore()
        a = span(start=1.0, side=SpanSide.SERVER)
        b = span(start=2.0, side=SpanSide.CLIENT)
        store.insert_many([a, b])
        result = store.span_list(0.0, 10.0,
                                 lambda s: s.side is SpanSide.SERVER)
        assert result == [a]


class TestAssembler:
    def _linked_pair(self):
        client = span(side=SpanSide.CLIENT, start=0.0, end=1.0,
                      flow_key=("f",), req_tcp_seq=10, resp_tcp_seq=20,
                      systrace_id=1)
        server = span(side=SpanSide.SERVER, start=0.1, end=0.9,
                      flow_key=("f",), req_tcp_seq=10, resp_tcp_seq=20,
                      systrace_id=2)
        return client, server

    def test_collect_expands_through_seq(self):
        store = SpanStore()
        client, server = self._linked_pair()
        store.insert_many([client, server])
        assembler = TraceAssembler(store)
        collected = assembler.collect(client.span_id)
        assert {s.span_id for s in collected} == {client.span_id,
                                                  server.span_id}

    def test_collect_terminates_on_fixpoint(self):
        store = SpanStore()
        client, server = self._linked_pair()
        store.insert_many([client, server])
        assembler = TraceAssembler(store)
        assembler.collect(client.span_id)
        assert assembler.last_iteration_count <= 3

    def test_iteration_limit_respected(self):
        store = SpanStore()
        # A chain of 40 spans linked pairwise by systrace (a->b) and flow
        # (b->c): each iteration can only extend the frontier.
        chain = []
        for i in range(40):
            chain.append(span(systrace_id=i // 2 + 1000,
                              flow_key=("f",),
                              req_tcp_seq=(i + 1) // 2 * 1000 + 7))
        store.insert_many(chain)
        assembler = TraceAssembler(store, iterations=3)
        collected = assembler.collect(chain[0].span_id, use_index=False)
        assert assembler.last_iteration_count == 3
        assert len(collected) < len(chain)
        # The fast path has no iteration cap: the component is already
        # materialized, so the full chain comes back.
        assert len(assembler.collect(chain[0].span_id)) == len(chain)

    def test_server_parented_under_client(self):
        client, server = self._linked_pair()
        assign_parents([client, server])
        assert server.parent_id == client.span_id
        assert client.parent_id is None

    def test_mismatched_resp_seq_not_chained(self):
        client, server = self._linked_pair()
        server.resp_tcp_seq = 999
        assign_parents([client, server])
        assert server.parent_id is None

    def test_network_spans_chain_in_path_order(self):
        client, server = self._linked_pair()
        nets = [span(kind=SpanKind.NETWORK, side=SpanSide.NETWORK,
                     start=0.01 * (i + 1), end=0.9 - 0.01 * i,
                     flow_key=("f",), req_tcp_seq=10, resp_tcp_seq=20,
                     path_index=i)
                for i in range(3)]
        assign_parents([server, nets[2], nets[0], client, nets[1]])
        assert nets[0].parent_id == client.span_id
        assert nets[1].parent_id == nets[0].span_id
        assert nets[2].parent_id == nets[1].span_id
        assert server.parent_id == nets[2].span_id

    def test_client_under_server_by_systrace(self):
        server = span(side=SpanSide.SERVER, start=0.0, end=1.0,
                      systrace_id=5)
        client = span(side=SpanSide.CLIENT, start=0.2, end=0.8,
                      systrace_id=5, flow_key=("g",), req_tcp_seq=1)
        assign_parents([server, client])
        assert client.parent_id == server.span_id

    def test_client_under_server_by_x_request_id(self):
        """Cross-thread proxy association (different systrace ids)."""
        server = span(side=SpanSide.SERVER, start=0.0, end=1.0,
                      systrace_id=5, x_request_id="xr-9",
                      host="n1", pid=4)
        client = span(side=SpanSide.CLIENT, start=0.2, end=0.8,
                      systrace_id=6, x_request_id="xr-9",
                      host="n1", pid=4)
        assign_parents([server, client])
        assert client.parent_id == server.span_id

    def test_app_span_under_server_span(self):
        server = span(side=SpanSide.SERVER, start=0.0, end=1.0,
                      host="n1", pid=4)
        app = span(kind=SpanKind.APP, side=SpanSide.APP, start=0.1,
                   end=0.9, host="n1", pid=4, otel_span_id="a1",
                   otel_trace_id="t1")
        assign_parents([server, app])
        assert app.parent_id == server.span_id

    def test_app_explicit_parent_wins(self):
        parent_app = span(kind=SpanKind.APP, side=SpanSide.APP, start=0.0,
                          end=1.0, otel_span_id="p1", otel_trace_id="t1")
        child_app = span(kind=SpanKind.APP, side=SpanSide.APP, start=0.1,
                         end=0.9, otel_span_id="c1",
                         otel_parent_span_id="p1", otel_trace_id="t1")
        assign_parents([parent_app, child_app])
        assert child_app.parent_id == parent_app.span_id

    def test_client_span_under_enclosing_app_span(self):
        app = span(kind=SpanKind.APP, side=SpanSide.APP, start=0.0,
                   end=1.0, host="n1", pid=4, otel_span_id="a1")
        client = span(side=SpanSide.CLIENT, start=0.2, end=0.8,
                      host="n1", pid=4)
        assign_parents([app, client])
        assert client.parent_id == app.span_id

    def test_unknown_start_span_raises(self):
        assembler = TraceAssembler(SpanStore())
        with pytest.raises(KeyError):
            assembler.collect(123456)


class TestTrace:
    def test_roots_children_depth(self):
        a = span(start=0.0, end=3.0)
        b = span(start=0.5, end=2.0)
        c = span(start=1.0, end=1.5)
        b.parent_id = a.span_id
        c.parent_id = b.span_id
        trace = Trace([c, a, b])
        assert trace.roots() == [a]
        assert trace.children(a) == [b]
        assert trace.depth(c) == 2
        assert trace.duration == 3.0

    def test_to_text_renders_tree(self):
        a = span(start=0.0, end=3.0, operation="GET", resource="/")
        b = span(start=0.5, end=2.0, operation="GET", resource="/api")
        b.parent_id = a.span_id
        text = Trace([a, b]).to_text()
        assert "GET /" in text
        assert text.count("\n") == 1
        assert text.splitlines()[1].startswith("  ")

    def test_missing_parent_treated_as_root(self):
        orphan = span()
        orphan.parent_id = 999999999
        trace = Trace([orphan])
        assert trace.roots() == [orphan]


class TestTagRegistry:
    def test_register_and_resolve(self):
        registry = TagRegistry()
        registry.register("vpc-1", "10.0.1.2",
                          {"pod": "p1", "node": "n1", "version": "v3"})
        assert registry.resource_tags("vpc-1", "10.0.1.2") == {
            "pod": "p1", "node": "n1"}
        assert registry.custom_tags("vpc-1", "10.0.1.2") == {
            "version": "v3"}

    def test_int_encoding_round_trips(self):
        registry = TagRegistry()
        registry.register("vpc-1", "10.0.1.2", {"pod": "p1", "az": "az-1"})
        encoded = registry.resource_tags_encoded("vpc-1", "10.0.1.2")
        assert all(isinstance(k, int) and isinstance(v, int)
                   for k, v in encoded.items())
        assert registry.decode(encoded) == {"pod": "p1", "az": "az-1"}

    def test_full_tags_merges_custom(self):
        registry = TagRegistry()
        registry.register("v", "ip", {"pod": "p", "commit": "abc"})
        assert registry.full_tags("v", "ip") == {"pod": "p",
                                                 "commit": "abc"}

    def test_interner_is_stable(self):
        registry = TagRegistry()
        registry.register("v", "ip1", {"node": "n1"})
        registry.register("v", "ip2", {"node": "n1"})
        e1 = registry.resource_tags_encoded("v", "ip1")
        e2 = registry.resource_tags_encoded("v", "ip2")
        assert e1 == e2  # same strings, same codes


def _tag_row(i):
    return {f"k{j}": f"value-{j}-{i % 50}" for j in range(20)}


class TestEncoders:
    def _smart(self, rows=200):
        registry = TagRegistry()
        for i in range(50):
            registry.register("vpc-1", f"10.0.0.{i}", _tag_row(i))
        encoder = SmartEncoder(registry)
        for i in range(rows):
            encoder.insert({}, vpc="vpc-1", ip=f"10.0.0.{i % 50}")
        return encoder

    def test_direct_stores_full_strings(self):
        from repro.server.encoding import _BASE_FIELDS
        encoder = DirectEncoder()
        expected = 0
        for i in range(200):
            encoder.insert(_tag_row(i))
            expected += _BASE_FIELDS * 8  # fixed base columns
            expected += sum(len(v.encode()) + 1
                            for v in _tag_row(i).values())
        assert encoder.stats.disk_bytes == expected

    def test_low_cardinality_smaller_than_direct(self):
        direct = DirectEncoder()
        lowcard = LowCardinalityEncoder()
        for i in range(500):
            direct.insert(_tag_row(i))
            lowcard.insert(_tag_row(i))
        assert lowcard.stats.disk_bytes < direct.stats.disk_bytes

    def test_smart_smaller_than_low_cardinality(self):
        lowcard = LowCardinalityEncoder()
        for i in range(500):
            lowcard.insert(_tag_row(i))
        smart = self._smart(rows=500)
        assert smart.stats.disk_bytes < lowcard.stats.disk_bytes

    def test_smart_memory_below_alternatives(self):
        direct = DirectEncoder()
        lowcard = LowCardinalityEncoder()
        for i in range(500):
            direct.insert(_tag_row(i))
            lowcard.insert(_tag_row(i))
        smart = self._smart(rows=500)
        assert (smart.stats.total_memory_bytes
                < direct.stats.total_memory_bytes)
        assert (smart.stats.total_memory_bytes
                < lowcard.stats.total_memory_bytes)

    def test_smart_query_time_join_returns_tags(self):
        registry = TagRegistry()
        registry.register("v", "ip", {"pod": "p", "version": "v9"})
        encoder = SmartEncoder(registry)
        encoder.insert({}, vpc="v", ip="ip")
        assert encoder.query_tags("v", "ip") == {"pod": "p",
                                                 "version": "v9"}


class TestMetricsDatabase:
    def test_record_and_query(self):
        db = MetricsDatabase()
        db.record("depth", {"pod": "mq"}, 1.0, 5.0)
        db.record("depth", {"pod": "mq"}, 2.0, 7.0)
        assert db.query("depth", {"pod": "mq"}) == [(1.0, 5.0), (2.0, 7.0)]

    def test_query_time_range(self):
        db = MetricsDatabase()
        for t in range(10):
            db.record("m", {"pod": "p"}, float(t), float(t))
        assert db.query("m", {"pod": "p"}, start=3.0, end=5.0) == [
            (3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]

    def test_tag_filter_is_subset_match(self):
        db = MetricsDatabase()
        db.record("m", {"pod": "a", "az": "z1"}, 1.0, 1.0)
        db.record("m", {"pod": "b", "az": "z1"}, 1.0, 2.0)
        assert db.query("m", {"pod": "a"}) == [(1.0, 1.0)]
        assert len(db.query("m", {"az": "z1"})) == 2

    def test_out_of_order_sample_rejected(self):
        db = MetricsDatabase()
        db.record("m", {}, 5.0, 1.0)
        with pytest.raises(ValueError):
            db.record("m", {}, 4.0, 1.0)

    def test_correlate_span_by_pod_tag(self):
        db = MetricsDatabase()
        db.record("depth", {"pod": "mq-pod"}, 1.0, 42.0)
        s = span(start=0.5, end=1.5)
        s.tags["pod"] = "mq-pod"
        result = db.correlate_span(s)
        assert result == {"depth": [(1.0, 42.0)]}

    def test_correlate_span_no_match(self):
        db = MetricsDatabase()
        db.record("depth", {"pod": "other"}, 1.0, 42.0)
        s = span(start=0.5, end=1.5)
        s.tags["pod"] = "mine"
        assert db.correlate_span(s) == {}


class TestStoreProperties:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_search_is_monotone_in_filter(self, pairs):
        """Absorbing more spans never shrinks the search result."""
        store = SpanStore()
        spans = [span(systrace_id=a, flow_key=("f",), req_tcp_seq=b)
                 for a, b in pairs]
        store.insert_many(spans)
        assoc = AssociationFilter()
        previous: set = set()
        for s in spans:
            assoc.absorb(s)
            current = store.search(assoc)
            assert previous <= current
            previous = current
