"""Protocol zoo: every inferable protocol traced end to end.

Each test drives genuine traffic of one wire format through the full
stack — app → kernel hooks → agent inference → session aggregation →
server — and checks that the spans carry the right protocol semantics.
Includes the multiplexed out-of-order case that pipeline matching cannot
handle and stream-id matching must (§3.3.1, parallel protocols).
"""

import pytest

from repro.apps.extra_services import (
    DubboService,
    Http2Service,
    KafkaService,
    MqttBroker,
)
from repro.apps.runtime import WorkerContext
from repro.apps.services import DnsService
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import dubbo, http2, kafka, mqtt
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


@pytest.fixture
def zoo():
    sim = Simulator(seed=67)
    builder = ClusterBuilder(node_count=2)
    client_pod = builder.add_pod(0, "client-pod")
    svc_pod = builder.add_pod(1, "svc-pod")
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)

    class Zoo:
        pass

    zoo = Zoo()
    zoo.sim = sim
    zoo.network = network
    zoo.server = server
    zoo.agents = agents
    zoo.client_pod = client_pod
    zoo.svc_pod = svc_pod

    kernel = network.kernel_for_node(client_pod.node.name)
    process = kernel.create_process("client", client_pod.ip)
    thread = kernel.create_thread(process)

    class _Shim:
        pass

    shim = _Shim()
    shim.kernel = kernel
    shim.ingress_abi = "read"
    shim.egress_abi = "write"
    shim.sim = sim
    zoo.worker = WorkerContext(shim, thread, None)
    zoo.kernel = kernel
    zoo.thread = thread

    def finish():
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush(expire=True)

    zoo.finish = finish
    return zoo


class TestKafkaEndToEnd:
    def test_produce_and_fetch_traced(self, zoo):
        broker = KafkaService("kafka", zoo.svc_pod.node, 9092,
                              pod=zoo.svc_pod)
        broker.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 9092,
                kafka.encode_request(kafka.API_PRODUCE, 7, "orders"),
                complete=broker.message_complete)
            assert kafka.KafkaSpec().parse(reply).status == "ok"
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 9092,
                kafka.encode_request(kafka.API_FETCH, 8, "orders"),
                complete=broker.message_complete)
            return kafka.KafkaSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.status == "ok"
        zoo.finish()
        spans = zoo.server.find_spans(process_name="kafka")
        assert {span.operation for span in spans} == {"Produce", "Fetch"}
        assert all(span.protocol == "kafka" for span in spans)
        assert all(span.side is SpanSide.SERVER for span in spans)

    def test_fetch_unknown_topic_is_error_span(self, zoo):
        broker = KafkaService("kafka", zoo.svc_pod.node, 9092,
                              pod=zoo.svc_pod)
        broker.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 9092,
                kafka.encode_request(kafka.API_FETCH, 9, "missing"),
                complete=broker.message_complete)
            return kafka.KafkaSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.is_error
        zoo.finish()
        spans = zoo.server.find_spans(process_name="kafka")
        assert spans[0].is_error
        assert spans[0].status_code == kafka.ERROR_UNKNOWN_TOPIC


class TestMqttEndToEnd:
    def test_publish_subscribe_traced(self, zoo):
        broker = MqttBroker("mosquitto", zoo.svc_pod.node, 1883,
                            pod=zoo.svc_pod)
        broker.start()

        def client():
            yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 1883, mqtt.encode_subscribe(1, "alerts/#"))
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 1883,
                mqtt.encode_publish(2, "alerts/cpu", b"93"))
            return mqtt.MqttSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.status == "ok"
        zoo.finish()
        spans = zoo.server.find_spans(process_name="mosquitto")
        operations = {span.operation for span in spans}
        assert operations == {"SUBSCRIBE", "PUBLISH"}
        publish_span = next(span for span in spans
                            if span.operation == "PUBLISH")
        assert publish_span.resource == "alerts/cpu"

    def test_failed_publish_is_error_span(self, zoo):
        broker = MqttBroker("mosquitto", zoo.svc_pod.node, 1883,
                            pod=zoo.svc_pod)
        broker.fail_topic = "forbidden"
        broker.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 1883,
                mqtt.encode_publish(3, "forbidden", b"x"))
            return mqtt.MqttSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.is_error
        zoo.finish()
        spans = zoo.server.find_spans(process_name="mosquitto")
        assert spans[0].is_error


class TestDubboEndToEnd:
    def test_invocation_traced(self, zoo):
        provider = DubboService("order-provider", zoo.svc_pod.node, 20880,
                                pod=zoo.svc_pod)
        provider.register_method("createOrder", b"order-77")
        provider.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 20880,
                dubbo.encode_request(501, "com.shop.OrderService",
                                     "createOrder"),
                complete=provider.message_complete)
            return dubbo.DubboSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.status == "ok"
        zoo.finish()
        spans = zoo.server.find_spans(process_name="order-provider")
        assert len(spans) == 1
        span = spans[0]
        assert span.protocol == "dubbo"
        assert span.operation == "createOrder"
        assert span.resource == "com.shop.OrderService"
        assert span.message_id == 501

    def test_unknown_method_is_error(self, zoo):
        provider = DubboService("order-provider", zoo.svc_pod.node, 20880,
                                pod=zoo.svc_pod)
        provider.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 20880,
                dubbo.encode_request(502, "svc", "nope"),
                complete=provider.message_complete)
            return dubbo.DubboSpec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.is_error
        zoo.finish()
        assert zoo.server.find_spans(process_name="order-provider")[0].is_error


class TestHttp2EndToEnd:
    def test_request_traced_with_stream_id(self, zoo):
        service = Http2Service("grpc-ish", zoo.svc_pod.node, 8443,
                               pod=zoo.svc_pod)

        @service.route("/reviews")
        def reviews(worker, parsed):
            yield from worker.work(0.0002)
            return 200, b'{"reviews": []}'

        service.start()

        def client():
            reply = yield from zoo.worker.call_raw(
                zoo.svc_pod.ip, 8443,
                http2.encode_request("GET", "/reviews/7", stream_id=5,
                                     with_preface=True))
            return http2.Http2Spec().parse(reply)

        result = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert result.status_code == 200
        zoo.finish()
        spans = zoo.server.find_spans(process_name="grpc-ish")
        assert spans[0].protocol == "http2"
        assert spans[0].resource == "/reviews/7"


class TestOutOfOrderMultiplexing:
    def test_responses_out_of_order_still_pair_by_stream_id(self, zoo):
        """A hand-rolled server answers two pipelined Dubbo requests in
        reverse order; stream-id matching must pair them correctly where
        order-based matching would swap them."""
        kernel = zoo.network.kernel_for_node(zoo.svc_pod.node.name)
        process = kernel.create_process("reorderer", zoo.svc_pod.ip)
        thread = kernel.create_thread(process)
        listener = kernel.listen(process, 20999)

        def server_loop():
            fd = yield from kernel.accept(thread, listener)
            buffer = b""
            requests = []
            while len(requests) < 2:
                data = yield from kernel.read(thread, fd)
                buffer += data
                while len(buffer) >= 16:
                    body_len = int.from_bytes(buffer[12:16], "big")
                    total = 16 + body_len
                    if len(buffer) < total:
                        break
                    requests.append(
                        dubbo.DubboSpec().parse(buffer[:total]))
                    buffer = buffer[total:]
            yield 0.002  # "work" on both, then answer in reverse
            for parsed in reversed(requests):
                yield from kernel.write(
                    thread, fd,
                    dubbo.encode_response(parsed.stream_id,
                                          body=str(parsed.stream_id)
                                          .encode()))

        zoo.sim.spawn(server_loop(), name="reorderer")

        def client():
            fd = yield from zoo.kernel.connect(zoo.thread,
                                               zoo.svc_pod.ip, 20999)
            yield from zoo.kernel.write(
                zoo.thread, fd, dubbo.encode_request(111, "svc", "first"))
            yield from zoo.kernel.write(
                zoo.thread, fd, dubbo.encode_request(222, "svc", "second"))
            replies = []
            while len(replies) < 2:
                data = yield from zoo.kernel.read(zoo.thread, fd)
                offset = 0
                while offset + 16 <= len(data):
                    body_len = int.from_bytes(data[offset + 12:offset + 16],
                                              "big")
                    replies.append(dubbo.DubboSpec().parse(
                        data[offset:offset + 16 + body_len]))
                    offset += 16 + body_len
            return replies

        replies = zoo.sim.run_process(zoo.sim.spawn(client()))
        assert [reply.stream_id for reply in replies] == [222, 111]
        zoo.finish()
        client_spans = zoo.server.find_spans(process_name="client")
        assert len(client_spans) == 2
        by_method = {span.operation: span for span in client_spans}
        # Stream-id matching pairs each request with its own response:
        # 'first' (sent first, answered last) spans the whole exchange.
        assert by_method["first"].message_id == 111
        assert by_method["second"].message_id == 222
        assert (by_method["first"].end_time
                > by_method["second"].end_time)
        assert all(span.status == "ok" for span in client_spans)
