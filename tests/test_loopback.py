"""Loopback traffic: a process calling a listener on its own pod IP.

The route is empty (no devices), delivery is immediate, and both
endpoints share a kernel — the agent still produces correctly paired
client and server spans, since all association keys are kernel-local.
"""

from repro.apps.runtime import HttpService, Response, WorkerContext
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


def test_loopback_request_traced():
    sim = Simulator(seed=55)
    builder = ClusterBuilder(node_count=1)
    pod = builder.add_pod(0, "solo-pod")
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agent = server.new_agent(cluster.nodes[0].kernel,
                             node=cluster.nodes[0])
    agent.deploy()

    service = HttpService("local-svc", pod.node, 9000, pod=pod,
                          service_time=0.001)

    @service.route("/")
    def home(worker, request):
        yield from worker.work(0.0001)
        return Response(200, body=b"self")

    service.start()
    kernel = cluster.nodes[0].kernel
    process = kernel.create_process("local-client", pod.ip)
    thread = kernel.create_thread(process)

    class _Shim:
        pass

    shim = _Shim()
    shim.kernel = kernel
    shim.ingress_abi = "read"
    shim.egress_abi = "write"
    shim.sim = sim
    worker = WorkerContext(shim, thread, None)

    def client():
        reply = yield from worker.call_http(pod.ip, 9000, "GET", "/me")
        return reply

    reply = sim.run_process(sim.spawn(client()))
    assert reply.status_code == 200
    sim.run(until=sim.now + 0.2)
    agent.flush()
    spans = server.store.all_spans()
    assert len(spans) == 2
    client_span = next(span for span in spans
                       if span.side is SpanSide.CLIENT)
    server_span = next(span for span in spans
                       if span.side is SpanSide.SERVER)
    trace = server.trace(client_span.span_id)
    assert len(trace) == 2
    assert server_span.parent_id == client_span.span_id
    # Same pod, both directions: the tags agree.
    assert client_span.tags.get("pod") == "solo-pod"
    assert server_span.tags.get("pod") == "solo-pod"


def test_loopback_route_has_no_devices():
    sim = Simulator(seed=56)
    builder = ClusterBuilder(node_count=1)
    pod = builder.add_pod(0, "solo-pod")
    network = Network(sim, builder.build())
    assert network.route(pod.ip, pod.ip) == []
