"""Tests for topology routing, transport, faults, captures, and metrics."""

import pytest

from repro.network.captures import CaptureTap
from repro.network.faults import (
    ArpStormFault,
    DropFault,
    LatencyFault,
    RefuseConnectionsFault,
    ResetFault,
)
from repro.network.topology import ClusterBuilder, Device, DeviceKind
from repro.network.transport import Network
from repro.sim.engine import Simulator


def make_pair(node_count=2, middlebox=None, seed=7):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=node_count)
    client_pod = builder.add_pod(0, "client-pod")
    server_pod = builder.add_pod(1 % node_count, "server-pod")
    cluster = builder.build()
    if middlebox is not None:
        cluster.add_middlebox(middlebox)
    network = Network(sim, cluster)
    return sim, cluster, network, client_pod, server_pod


def run_request(sim, cluster, network, client_pod, server_pod,
                payload=b"req", reply=b"resp", port=8080):
    """One request/response over a fresh connection; returns client result."""
    server_node = server_pod.node
    client_node = client_pod.node
    server_kernel = network.kernel_for_node(server_node.name)
    client_kernel = network.kernel_for_node(client_node.name)
    server_proc = server_kernel.create_process("server", server_pod.ip)
    server_thread = server_kernel.create_thread(server_proc)
    listener = server_kernel.listen(server_proc, port)

    def server_loop():
        fd = yield from server_kernel.accept(server_thread, listener)
        try:
            yield from server_kernel.read(server_thread, fd)
        except ConnectionResetError:
            return
        yield from server_kernel.write(server_thread, fd, reply)

    client_proc = client_kernel.create_process("client", client_pod.ip)
    client_thread = client_kernel.create_thread(client_proc)

    def client_main():
        fd = yield from client_kernel.connect(
            client_thread, server_pod.ip, port)
        yield from client_kernel.write(client_thread, fd, payload)
        return (yield from client_kernel.read(client_thread, fd))

    sim.spawn(server_loop(), name="server")
    return sim.spawn(client_main(), name="client")


class TestRouting:
    def test_cross_node_path_shape(self):
        _, cluster, network, client_pod, server_pod = make_pair()
        path = network.route(client_pod.ip, server_pod.ip)
        kinds = [device.kind for device in path]
        assert kinds == [
            DeviceKind.POD_VETH, DeviceKind.VSWITCH, DeviceKind.NODE_NIC,
            DeviceKind.PHYSICAL_NIC, DeviceKind.TOR_SWITCH,
            DeviceKind.PHYSICAL_NIC, DeviceKind.NODE_NIC,
            DeviceKind.VSWITCH, DeviceKind.POD_VETH,
        ]

    def test_intra_node_path_uses_shared_vswitch_once(self):
        sim = Simulator()
        builder = ClusterBuilder(node_count=1)
        a = builder.add_pod(0, "pod-a")
        b = builder.add_pod(0, "pod-b")
        network = Network(sim, builder.build())
        path = network.route(a.ip, b.ip)
        kinds = [device.kind for device in path]
        assert kinds == [DeviceKind.POD_VETH, DeviceKind.VSWITCH,
                         DeviceKind.POD_VETH]

    def test_loopback_path_is_empty(self):
        _, _, network, client_pod, _ = make_pair()
        assert network.route(client_pod.ip, client_pod.ip) == []

    def test_unknown_endpoint_raises(self):
        _, _, network, client_pod, _ = make_pair()
        with pytest.raises(ValueError, match="no route"):
            network.route(client_pod.ip, "192.168.99.99")

    def test_middlebox_on_cross_node_path(self):
        gateway = Device("gw-1", DeviceKind.L4_GATEWAY)
        _, _, network, client_pod, server_pod = make_pair(middlebox=gateway)
        path = network.route(client_pod.ip, server_pod.ip)
        assert gateway in path

    def test_host_network_endpoint_routes_from_vswitch(self):
        _, cluster, network, client_pod, _ = make_pair()
        node_ip = cluster.nodes[1].ip
        path = network.route(client_pod.ip, node_ip)
        assert path[-1].kind == DeviceKind.VSWITCH


class TestTransport:
    def test_round_trip_and_latency(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        process = run_request(sim, cluster, network, client_pod, server_pod)
        assert sim.run_process(process) == b"resp"
        # Request travelled 9 devices each way plus handshake.
        assert sim.now > 2 * network.path_latency(
            network.route(client_pod.ip, server_pod.ip))

    def test_flow_metrics_recorded(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        metrics = network.metrics.all()
        assert len(metrics) == 1
        flow = metrics[0]
        assert flow.segments_c2s == 1
        assert flow.segments_s2c == 1
        assert flow.bytes_c2s == 3
        assert flow.bytes_s2c == 4
        assert flow.connect_rtt > 0
        assert flow.retransmissions == 0

    def test_metrics_lookup_by_either_direction(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        flow = network.metrics.all()[0]
        assert network.metrics_for(flow.five_tuple) is flow
        assert network.metrics_for(flow.five_tuple.reversed()) is flow


class TestFaults:
    def test_drop_fault_causes_retransmissions_but_delivers(self):
        sim, cluster, network, client_pod, server_pod = make_pair(seed=3)
        cluster.tor.add_fault(DropFault(0.5))
        process = run_request(sim, cluster, network, client_pod, server_pod)
        assert sim.run_process(process) == b"resp"
        flow = network.metrics.all()[0]
        assert flow.retransmissions > 0

    def test_latency_fault_slows_delivery(self):
        def elapsed(with_fault):
            sim, cluster, network, client_pod, server_pod = make_pair()
            if with_fault:
                cluster.tor.add_fault(LatencyFault(extra=0.05))
            process = run_request(sim, cluster, network, client_pod,
                                  server_pod)
            sim.run_process(process)
            return sim.now

        assert elapsed(True) > elapsed(False) + 0.05

    def test_reset_fault_resets_both_endpoints(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        cluster.tor.add_fault(ResetFault(1.0))

        server_kernel = network.kernel_for_node(server_pod.node.name)
        client_kernel = network.kernel_for_node(client_pod.node.name)
        server_proc = server_kernel.create_process("server", server_pod.ip)
        server_thread = server_kernel.create_thread(server_proc)
        listener = server_kernel.listen(server_proc, 8080)

        outcomes = []

        def server_loop():
            fd = yield from server_kernel.accept(server_thread, listener)
            try:
                yield from server_kernel.read(server_thread, fd)
            except ConnectionResetError:
                outcomes.append("server-reset")

        client_proc = client_kernel.create_process("client", client_pod.ip)
        client_thread = client_kernel.create_thread(client_proc)

        def client_main():
            fd = yield from client_kernel.connect(
                client_thread, server_pod.ip, 8080)
            yield from client_kernel.write(client_thread, fd, b"data")
            try:
                yield from client_kernel.read(client_thread, fd)
            except ConnectionResetError:
                outcomes.append("client-reset")

        sim.spawn(server_loop())
        sim.spawn(client_main())
        sim.run()
        assert sorted(outcomes) == ["client-reset", "server-reset"]
        assert network.metrics.all()[0].resets == 1

    def test_arp_storm_fault_inflates_arp_and_latency(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        nic = cluster.machines[1].nic
        nic.add_fault(ArpStormFault(extra_arps_per_connect=5,
                                    stall_range=(0.5, 0.5)))
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        flow = network.metrics.all()[0]
        assert flow.arp_requests >= 5
        assert flow.connect_rtt >= 0.5
        assert nic.arp_requests >= 5

    def test_refuse_fault_blocks_connection(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        cluster.tor.add_fault(RefuseConnectionsFault())
        process = run_request(sim, cluster, network, client_pod, server_pod)
        with pytest.raises(ConnectionRefusedError):
            sim.run_process(process)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            DropFault(1.5)
        with pytest.raises(ValueError):
            ResetFault(-0.1)


class TestCaptures:
    def test_capture_records_same_tcp_seq_at_every_device(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        tap = CaptureTap()
        path = network.route(client_pod.ip, server_pod.ip)
        for device in path:
            network.enable_capture(device, tap)
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        c2s = [r for r in tap.records if r.direction == "c2s"]
        s2c = [r for r in tap.records if r.direction == "s2c"]
        assert len(c2s) == len(path)
        assert len(s2c) == len(path)
        assert len({record.tcp_seq for record in c2s}) == 1
        assert len({record.tcp_seq for record in s2c}) == 1

    def test_capture_path_index_is_c2s_oriented(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        tap = CaptureTap()
        path = network.route(client_pod.ip, server_pod.ip)
        for device in path:
            network.enable_capture(device, tap)
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        c2s = sorted((r for r in tap.records if r.direction == "c2s"),
                     key=lambda r: r.timestamp)
        s2c = sorted((r for r in tap.records if r.direction == "s2c"),
                     key=lambda r: r.timestamp)
        assert [r.path_index for r in c2s] == list(range(len(path)))
        # The response traverses in reverse but indices stay c2s-oriented.
        assert [r.path_index for r in s2c] == list(
            reversed(range(len(path))))

    def test_capture_timestamps_increase_along_path(self):
        sim, cluster, network, client_pod, server_pod = make_pair()
        tap = CaptureTap()
        for device in network.route(client_pod.ip, server_pod.ip):
            network.enable_capture(device, tap)
        process = run_request(sim, cluster, network, client_pod, server_pod)
        sim.run_process(process)
        c2s = [r for r in tap.records if r.direction == "c2s"]
        timestamps = [r.timestamp for r in c2s]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)


class TestTags:
    def test_pod_tags_include_k8s_and_cloud(self):
        _, cluster, _, client_pod, _ = make_pair()
        tags = client_pod.tags()
        assert tags["pod"] == "client-pod"
        assert tags["node"] == "node-1"
        assert tags["region"] == "region-1"
        assert tags["vpc"] == "vpc-1"

    def test_custom_labels_flow_into_tags(self):
        sim = Simulator()
        builder = ClusterBuilder(node_count=1)
        pod = builder.add_pod(0, "tagged", labels={"version": "v2",
                                                   "commit": "abc123"})
        tags = pod.tags()
        assert tags["version"] == "v2"
        assert tags["commit"] == "abc123"

    def test_device_lookup_by_name(self):
        _, cluster, _, client_pod, _ = make_pair()
        device = cluster.device_by_name("client-pod/veth")
        assert device is client_pod.veth
