"""Push-path (continuous) trace assembly, lifecycle, and self-metrics.

Covers the component-event plumbing (store union-find → assembler),
the live-trace lifecycle state machine, equality with the pull path on
a sharded store, the watchdog's arrival-time latency budgets with
cooldown dedup, and the pipeline_stats()/OTLP-metrics surface.
"""

import pytest

from repro.analysis.watchdog import AnomalyWatchdog
from repro.apps.loadgen import LoadGenerator
from repro.apps.runtime import HttpService, Response
from repro.core.export import OtlpStreamExporter, decode_otlp_json, \
    decode_otlp_metrics
from repro.core.span import Span, SpanKind, SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.database import SpanStore
from repro.server.server import DeepFlowServer
from repro.server.sharding import ShardedSpanStore
from repro.server.streaming import (
    FINISHED,
    OPEN,
    QUIESCENT,
    REASON_FORCED,
    REASON_IDLE,
    REASON_ROOT_COMPLETE,
    ContinuousAssembler,
)
from repro.sim.engine import Simulator


def _span(span_id, start, end, *, systrace=None, xreq=None,
          process="svc", status="", host="n1"):
    return Span(span_id=span_id, kind=SpanKind.SYSCALL,
                side=SpanSide.CLIENT if span_id % 2 else SpanSide.SERVER,
                start_time=start, end_time=end, host=host,
                process_name=process, protocol="http",
                operation="GET", resource="/", status=status,
                systrace_id=systrace, x_request_id=xreq)


class TestComponentEvents:
    """The union-find's link events drain through the store facade."""

    def test_store_emits_link_pairs_once(self):
        store = SpanStore()
        store.arm_component_events()
        store.insert_many([_span(1, 0.0, 0.5, systrace=9),
                           _span(2, 0.1, 0.4, systrace=9)])
        events = store.take_component_events()
        assert events
        assert all(len(pair) == 2 for pair in events)
        ids = {i for pair in events for i in pair}
        assert ids == {1, 2}
        assert store.take_component_events() == []

    def test_unarmed_store_emits_nothing(self):
        store = SpanStore()
        store.insert_many([_span(1, 0.0, 0.5, systrace=9),
                           _span(2, 0.1, 0.4, systrace=9)])
        assert store.take_component_events() == []

    def test_sharded_store_emits_boundary_links(self):
        store = ShardedSpanStore(4, window=0.5)
        store.arm_component_events()
        # Same x_request_id, two time windows: the association crosses
        # the routing boundary, so the link arrives via the owner-table
        # probe rather than any single shard's union-find.
        store.insert_many([_span(1, 0.1, 0.2, xreq="xr"),
                           _span(2, 0.8, 0.9, xreq="xr")])
        events = store.take_component_events()
        assert (1, 2) in events or (2, 1) in events


class TestLifecycle:
    def _open_pair(self, assembler, store, now, *, root_complete):
        """Two linked spans; root span encloses the other iff
        *root_complete*."""
        root_end = 1.0 if root_complete else 0.5
        spans = [_span(1, 0.0, root_end, systrace=3),
                 _span(2, 0.1, 0.9, systrace=3)]
        store.insert_many(spans)
        assembler.on_spans(spans, now)
        return spans

    def test_idle_timeout_finishes_incomplete_trace(self):
        store = SpanStore()
        assembler = ContinuousAssembler(store)
        self._open_pair(assembler, store, 1.0, root_complete=False)
        assert assembler.stats()["open_traces"] == 1
        records = assembler.tick(1.5)       # idle 0.5 < finish_after 1.0
        assert records == []
        records = assembler.tick(2.0)       # idle 1.0 hits the timeout
        assert len(records) == 1
        assert records[0].reason == REASON_IDLE
        assert len(records[0].trace) == 2
        assert assembler.stats()["open_traces"] == 0

    def test_root_complete_finishes_after_grace(self):
        store = SpanStore()
        assembler = ContinuousAssembler(store)
        self._open_pair(assembler, store, 1.0, root_complete=True)
        records = assembler.tick(1.06)      # idle 0.06 >= root_grace
        assert len(records) == 1
        assert records[0].reason == REASON_ROOT_COMPLETE
        assert records[0].assembly_lag == pytest.approx(0.06)

    def test_quiescent_then_reopened_by_late_span(self):
        store = SpanStore()
        assembler = ContinuousAssembler(store)
        self._open_pair(assembler, store, 1.0, root_complete=False)
        assembler.tick(1.3)                 # idle 0.3 >= quiescent 0.25
        stats = assembler.stats()
        assert stats["quiesced"] == 1
        assert stats["open_traces"] == 1    # quiescent is still live
        late = [_span(3, 0.2, 0.8, systrace=3)]
        store.insert_many(late)
        assembler.on_spans(late, 1.4)
        stats = assembler.stats()
        assert stats["reopened"] == 1
        assert stats["open_traces"] == 1
        assert stats["tracked_spans"] == 3

    def test_drain_forces_everything_out(self):
        store = SpanStore()
        assembler = ContinuousAssembler(store)
        self._open_pair(assembler, store, 1.0, root_complete=False)
        records = assembler.drain(1.01)
        assert [record.reason for record in records] == [REASON_FORCED]
        assert assembler.stats()["open_traces"] == 0
        assert assembler.stats()["tracked_spans"] == 0

    def test_lifecycle_constants_are_distinct(self):
        assert len({OPEN, QUIESCENT, FINISHED}) == 3

    def test_bad_timeout_ordering_rejected(self):
        with pytest.raises(ValueError):
            ContinuousAssembler(SpanStore(), root_grace=0.5,
                                quiescent_after=0.2)


class TestMergeAndParenting:
    def test_batch_chain_merges_into_one_trace(self):
        store = SpanStore()
        exporter = OtlpStreamExporter(validate=True)
        assembler = ContinuousAssembler(store, exporter=exporter)
        spans = [_span(i, 0.01 * i, 0.01 * i + 0.3, systrace=5)
                 for i in range(1, 9)]
        store.insert_many(spans)
        assembler.on_spans(spans, 1.0)
        assert assembler.stats()["open_traces"] == 1
        assert assembler.stats()["merges"] == 7
        records = assembler.drain(1.0)
        assert len(records) == 1
        trace = records[0].trace
        assert {span.span_id for span in trace} == set(range(1, 9))
        # finalize ran the parent-rule table before export.
        assert len(trace.roots()) < len(trace)
        assert exporter.exported_traces == 1
        assert exporter.exported_spans == 8
        decode_otlp_json(exporter.trace_payloads[0])

    def test_merges_span_ingest_batches(self):
        store = SpanStore()
        assembler = ContinuousAssembler(store, finish_after=100.0,
                                        quiescent_after=50.0,
                                        root_grace=50.0)
        first = [_span(1, 0.0, 0.2, systrace=6)]
        second = [_span(2, 0.1, 0.3, systrace=6)]
        store.insert_many(first)
        assembler.on_spans(first, 0.2)
        store.insert_many(second)
        assembler.on_spans(second, 0.3)
        assert assembler.stats()["open_traces"] == 1
        records = assembler.drain(0.3)
        assert {s.span_id for s in records[0].trace} == {1, 2}


class TestShardedStreamingMatchesPullPath:
    def test_finished_components_equal_pull_traces(self):
        spans = []
        for index in range(800):
            group = index // 4
            xreq = None
            if group % 10 == 0 and group > 0 and index % 4 == 0:
                xreq = f"xr-{group - 1}"
            elif group % 10 == 9 and index % 4 == 3:
                xreq = f"xr-{group}"
            spans.append(_span(index + 1, index * 1e-3,
                               index * 1e-3 + 0.01,
                               systrace=group, xreq=xreq))
        server = DeepFlowServer(shards=4)
        server.enable_streaming(finish_after=1000.0,
                                quiescent_after=500.0,
                                root_grace=500.0)
        for start in range(0, len(spans), 128):
            batch = spans[start:start + 128]
            server.ingest_spans(batch, now=batch[-1].end_time)
        records = server.streaming.drain(spans[-1].end_time)
        assert records
        streamed = sum(len(record.trace) for record in records)
        assert streamed == len(spans)
        for record in records:
            probe = record.trace.spans[0].span_id
            pulled = {span.span_id for span in server.trace(probe)}
            assert {span.span_id
                    for span in record.trace} == pulled


class TestWatchdogBudgets:
    def _server_with_watchdog(self, budget=0.01):
        server = DeepFlowServer(streaming=True)
        watchdog = AnomalyWatchdog(server, cooldown=2.0)
        watchdog.watch_streaming(server.streaming, {"svc": budget})
        return server, watchdog

    def test_violation_alerts_at_arrival(self):
        server, watchdog = self._server_with_watchdog()
        server.ingest_spans([_span(1, 0.0, 0.5)], now=0.5)
        assert len(watchdog.alerts) == 1
        alert = watchdog.alerts[0]
        assert alert.kind == "latency-budget"
        assert alert.service == "svc"
        assert alert.exemplar_span_id == 1
        assert alert.value == pytest.approx(0.5)
        assert "budget" in alert.describe()

    def test_within_budget_stays_silent(self):
        server, watchdog = self._server_with_watchdog()
        server.ingest_spans([_span(1, 0.0, 0.005)], now=0.5)
        assert watchdog.alerts == []
        assert server.streaming.stats()["budget_violations"] == 0

    def test_cooldown_suppresses_repeats_and_counts_them(self):
        server, watchdog = self._server_with_watchdog()
        for index in range(1, 5):
            now = 0.5 * index     # 0.5, 1.0, 1.5, 2.0 — inside cooldown
            server.ingest_spans(
                [_span(index, now - 0.4, now)], now=now)
        assert len(watchdog.alerts) == 1
        key = ("latency-budget", "svc")
        assert watchdog.suppressed[key] == 3
        # Past the cooldown horizon the subject may alert again.
        server.ingest_spans([_span(9, 2.7, 3.1)], now=3.1)
        assert len(watchdog.alerts) == 2
        assert watchdog.suppressed[key] == 3
        # The hot path counted every violation, muted or not.
        assert server.streaming.stats()["budget_violations"] == 5

    def test_scan_alerts_obey_same_cooldown(self):
        server = DeepFlowServer()
        watchdog = AnomalyWatchdog(server, window=0.5, cooldown=2.0)
        spans = []
        span_id = 1
        for window in range(3):           # a persistent error condition
            for _ in range(6):
                start = window * 0.5 + 0.01 * span_id % 0.4
                spans.append(_span(span_id, start, start + 0.01,
                                   status="error"))
                span_id += 1
        # All spans server-side so the scanner sees them.
        for span in spans:
            span.side = SpanSide.SERVER
        server.ingest_spans(spans)
        new_alerts = watchdog.scan(1.5)
        bursts = [a for a in new_alerts if a.kind == "error-burst"]
        assert len(bursts) == 1
        assert bursts[0].window_start == 0.0
        assert watchdog.suppressed[("error-burst", "svc")] == 2


class TestPipelineStats:
    def test_stats_surface_every_stage(self):
        server = DeepFlowServer(shards=2, streaming=True)
        spans = [_span(i, 0.01 * i, 0.01 * i + 0.1, systrace=i // 2)
                 for i in range(1, 21)]
        server.ingest_spans(spans, now=0.5)
        server.streaming.drain(0.5)
        server.streaming.finalize_pending()
        stats = server.pipeline_stats()
        assert stats["ingested_spans"] == 20
        metrics = stats["metrics"]
        assert metrics["counters"]["server.spans_ingested"] == 20
        assert metrics["counters"]["router.spans_routed"] == 20
        assert metrics["counters"]["stream.spans"] == 20
        assert metrics["histograms"]["server.ingest_batch_spans"][
            "count"] == 1
        assert stats["streaming"]["spans_seen"] == 20
        assert stats["streaming"]["open_traces"] == 0
        assert stats["export"]["exported_spans"] == 20
        assert "imbalance" in stats["shards"]

    def test_metrics_export_round_trips(self):
        server = DeepFlowServer(streaming=True)
        server.ingest_spans([_span(1, 0.0, 0.1)], now=0.1)
        payload = server.pipeline_metrics_otlp(now=1.0)
        summary = decode_otlp_metrics(payload)
        assert summary["server.spans_ingested"]["value"] == 1
        assert summary["stream.spans"]["value"] == 1
        assert summary["stream.finish_lag_s"]["kind"] == "histogram"

    def test_enable_streaming_is_idempotent(self):
        server = DeepFlowServer(streaming=True)
        assert server.enable_streaming() is server.streaming


class TestHeartbeatProcess:
    def test_run_finishes_traces_without_manual_ticks(self):
        sim = Simulator(seed=3)
        store = SpanStore()
        assembler = ContinuousAssembler(store)
        assembler.run(sim, interval=0.1)
        spans = [_span(1, 0.0, 0.5, systrace=1),
                 _span(2, 0.1, 0.4, systrace=1)]
        store.insert_many(spans)
        assembler.on_spans(spans, 0.0)
        sim.run(until=3.0)
        assert assembler.stats()["finished"] == 1
        assert len(assembler.finished) == 1


class TestEndToEndWorld:
    @pytest.fixture(scope="class")
    def streamed_world(self):
        sim = Simulator(seed=123)
        builder = ClusterBuilder(node_count=2)
        lg_pod = builder.add_pod(0, "lg")
        svc_pod = builder.add_pod(1, "svc")
        cluster = builder.build()
        Network(sim, cluster)
        exporter = OtlpStreamExporter(validate=True)
        server = DeepFlowServer()
        server.enable_streaming(exporter=exporter)
        watchdog = AnomalyWatchdog(server)
        watchdog.watch_streaming(server.streaming, {"svc": 1e-6})
        agents = []
        for node in cluster.nodes:
            agent = server.new_agent(node.kernel, node=node)
            agent.deploy()
            agent.start_polling(interval=0.01)
            agents.append(agent)
        service = HttpService("svc", svc_pod.node, 9000, pod=svc_pod,
                              service_time=0.001)

        @service.route("/")
        def home(worker, request):
            yield from worker.work(0.0001)
            return Response(200)

        service.start()
        generator = LoadGenerator(lg_pod.node, svc_pod.ip, 9000,
                                  rate=10, duration=0.4, connections=1,
                                  pod=lg_pod, name="client")
        report = sim.run_process(generator.run())
        sim.run(until=sim.now + 0.5)
        for agent in agents:
            agent.flush()
        server.streaming.drain(sim.now + 10.0)
        records = server.streaming.finished
        return server, exporter, watchdog, records, report

    def test_every_ingested_span_reaches_the_exporter(
            self, streamed_world):
        server, exporter, _watchdog, _records, report = streamed_world
        assert report.completed > 0
        assert server.ingested_spans > 0
        assert exporter.exported_spans == server.ingested_spans
        assert exporter.exported_traces == len(
            server.streaming.finished)

    def test_requests_assemble_into_cross_host_traces(
            self, streamed_world):
        _server, _exporter, _watchdog, records, report = streamed_world
        assert len(records) == report.completed
        for record in records:
            # The client's egress span and the service's ingress span
            # merged on the push path before retirement.
            sides = {span.side for span in record.trace}
            assert sides == {SpanSide.CLIENT, SpanSide.SERVER}
            processes = {span.process_name for span in record.trace}
            assert processes == {"client", "svc"}

    def test_exported_payloads_pass_schema_validation(
            self, streamed_world):
        _server, exporter, _w, _records, _report = streamed_world
        for payload in exporter.trace_payloads:
            decode_otlp_json(payload)

    def test_budget_sink_fired_from_live_traffic(self, streamed_world):
        _server, _exporter, watchdog, _records, _report = streamed_world
        kinds = {alert.kind for alert in watchdog.alerts}
        assert kinds == {"latency-budget"}
