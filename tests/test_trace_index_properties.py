"""Property tests: the trace-graph index against the Algorithm 1 oracle.

The fast path answers "which spans form this trace?" from an
incrementally maintained union-find; the reference path iterates the
paper's Algorithm 1.  Both must compute the same fixed point — the
connected component of the association graph — on any span population,
for any insertion order and batching, with queue-relay keys in play and
the ablation flags in every combination.

A third implementation keeps the other two honest: an in-test BFS over
an adjacency map built straight from
:func:`repro.server.index.association_keys`.  Because the store's fused
ingest loop *inlines* those axis checks, this oracle is what detects the
two definitions drifting apart.
"""

from hypothesis import given, settings, strategies as st

from repro.core.span import Span, SpanKind, SpanSide
from repro.server.assembler import TraceAssembler
from repro.server.database import SpanStore
from repro.server.index import association_keys
from repro.server.sharding import ShardedSpanStore

#: Small key domains keep the random association graphs densely
#: connected, so the iterative reference converges far below the
#: generous iteration budget the test assemblers run with.
_SYSTRACE = st.none() | st.integers(min_value=0, max_value=5)
_PTHREAD = st.none() | st.tuples(st.integers(0, 2), st.integers(0, 2))
_XREQ = st.none() | st.sampled_from(["xa", "xb", "xc"])
_FLOW = st.none() | st.tuples(st.just("flow"), st.integers(0, 2))
_SEQ = st.none() | st.integers(min_value=0, max_value=4)
_OTEL = st.none() | st.sampled_from(["ota", "otb"])
#: "http" carries a message id but is not a queue-relay protocol, so it
#: must NOT associate through the mq axis.
_PROTOCOL = st.sampled_from(["", "http", "amqp", "kafka", "mqtt"])
_MESSAGE_ID = st.none() | st.integers(min_value=0, max_value=3)


@st.composite
def span_lists(draw, min_size=1, max_size=30):
    """Random span populations exercising every association axis."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    spans = []
    for span_id in range(count):
        start = draw(st.floats(min_value=0.0, max_value=10.0,
                               allow_nan=False))
        spans.append(Span(
            span_id=span_id,
            kind=draw(st.sampled_from(list(SpanKind))),
            side=draw(st.sampled_from(list(SpanSide))),
            start_time=start,
            end_time=start + draw(st.floats(min_value=0.0, max_value=1.0,
                                            allow_nan=False)),
            protocol=draw(_PROTOCOL),
            resource=draw(st.sampled_from(["", "q1", "q2"])),
            systrace_id=draw(_SYSTRACE),
            pseudo_thread_key=draw(_PTHREAD),
            x_request_id=draw(_XREQ),
            flow_key=draw(_FLOW),
            req_tcp_seq=draw(_SEQ),
            resp_tcp_seq=draw(_SEQ),
            otel_trace_id=draw(_OTEL),
            message_id=draw(_MESSAGE_ID),
        ))
    return spans


def _oracle_component(spans, start_id):
    """BFS fixed point over association_keys — independent of the store."""
    carriers = {}
    for span in spans:
        for key in association_keys(span):
            carriers.setdefault(key, set()).add(span.span_id)
    by_id = {span.span_id: span for span in spans}
    component = {start_id}
    frontier = [start_id]
    while frontier:
        next_frontier = []
        for span_id in frontier:
            for key in association_keys(by_id[span_id]):
                for other in carriers[key]:
                    if other not in component:
                        component.add(other)
                        next_frontier.append(other)
        frontier = next_frontier
    return component


def _assembler(store):
    # A generous iteration budget: these tests check the *un-truncated*
    # fixed point, not the production cap (which is covered separately
    # by test_server_components.py).
    return TraceAssembler(store, iterations=200)


@settings(max_examples=120, deadline=None)
@given(spans=span_lists())
def test_fast_path_matches_reference_and_oracle(spans):
    """collect() == collect_iterative() == BFS oracle, from every start."""
    store = SpanStore()
    store.insert_many(spans)
    assembler = _assembler(store)
    for span in spans:
        fast = {s.span_id for s in assembler.collect(span.span_id)}
        reference = {s.span_id
                     for s in assembler.collect_iterative(span.span_id)}
        assert fast == reference
        assert fast == _oracle_component(spans, span.span_id)


@settings(max_examples=80, deadline=None)
@given(spans=span_lists(min_size=2),
       cut=st.integers(min_value=0, max_value=100),
       query_between=st.booleans(),
       singles=st.booleans())
def test_incremental_inserts_match_bulk_insert(spans, cut,
                                               query_between, singles):
    """Components are the same whether spans arrive in one batch, in
    several, or one at a time — including when queries (which trigger
    the lazy index commits) land between the batches."""
    bulk = SpanStore()
    bulk.insert_many(spans)

    incremental = SpanStore()
    cut = cut % len(spans)
    incremental.insert_many(spans[:cut])
    if query_between and cut:
        # Force commits mid-stream: later inserts must extend, not
        # corrupt, already-committed components.
        incremental.component_ids(spans[0].span_id)
        incremental.span_list(0.0, float("inf"))
    if singles:
        for span in spans[cut:]:
            incremental.insert(span)
    else:
        incremental.insert_many(spans[cut:])

    for span in spans:
        assert (incremental.component_ids(span.span_id)
                == bulk.component_ids(span.span_id))
    assert len(incremental.span_list(0.0, float("inf"))) == len(spans)


@settings(max_examples=60, deadline=None)
@given(spans=span_lists(),
       queue_relay=st.booleans(),
       x_request_id=st.booleans(),
       use_index=st.booleans())
def test_assemble_span_set_stable_under_ablations(spans, queue_relay,
                                                  x_request_id,
                                                  use_index):
    """The ablation flags change parent wiring, never trace membership,
    on either path."""
    store = SpanStore()
    store.insert_many(spans)
    assembler = TraceAssembler(store, iterations=200,
                               enable_queue_relay=queue_relay,
                               enable_x_request_id=x_request_id,
                               use_index=use_index)
    start = spans[0].span_id
    trace = assembler.assemble(start)
    assert ({span.span_id for span in trace}
            == _oracle_component(spans, start))


@settings(max_examples=80, deadline=None)
@given(spans=span_lists(),
       shards=st.integers(min_value=1, max_value=8),
       window=st.sampled_from([0.5, 2.0, 60.0]),
       cut=st.integers(min_value=0, max_value=100),
       query_between=st.booleans())
def test_sharded_components_match_unsharded(spans, shards, window,
                                            cut, query_between):
    """Scatter-gather `trace()` over N shards == one unsharded store ==
    the BFS oracle, for every start span.

    The small key domains make cross-shard keys the common case, and a
    sub-second routing window splits even single-key traces across
    shards — the boundary merge has to recover both.  Mid-stream queries
    force per-shard commits and boundary probes to interleave with later
    inserts.
    """
    single = SpanStore()
    single.insert_many(spans)
    sharded = ShardedSpanStore(shards, window=window)
    cut = cut % len(spans)
    sharded.insert_many(spans[:cut])
    if query_between and cut:
        # Trigger the seal/probe/merge machinery mid-stream: later
        # inserts must extend the boundary tables, not corrupt them.
        sharded.component_ids(spans[0].span_id)
        sharded.span_list(0.0, float("inf"))
    for span in spans[cut:]:
        sharded.insert(span)
    for span in spans:
        merged = sharded.component_ids(span.span_id)
        assert merged == single.component_ids(span.span_id)
        assert merged == _oracle_component(spans, span.span_id)
    # The time-ordered view survives sharding too (k-way merge).
    assert ([s.span_id for s in sharded.span_list(0.0, float("inf"))]
            == [s.span_id for s in single.span_list(0.0, float("inf"))])


@settings(max_examples=40, deadline=None)
@given(spans=span_lists(), shards=st.integers(min_value=2, max_value=8))
def test_sharded_fast_path_matches_iterative_reference(spans, shards):
    """Over a sharded store, the assembler's union-find fast path and
    the iterative Algorithm 1 reference (which fans each round's
    frontier keys out to every shard) stay equivalent."""
    sharded = ShardedSpanStore(shards, window=1.0)
    sharded.insert_many(spans)
    assembler = _assembler(sharded)
    for span in spans:
        fast = {s.span_id for s in assembler.collect(span.span_id)}
        reference = {s.span_id
                     for s in assembler.collect_iterative(span.span_id)}
        assert fast == reference
        assert fast == _oracle_component(spans, span.span_id)


@settings(max_examples=60, deadline=None)
@given(spans=span_lists())
def test_queue_relay_protocol_gating(spans):
    """Only amqp/kafka/mqtt message ids associate spans; an http span
    with the same (resource, message id) must stay out of the mq axis."""
    store = SpanStore()
    store.insert_many(spans)
    relayed = [span for span in spans
               if span.protocol in ("amqp", "kafka", "mqtt")
               and span.message_id is not None]
    for a in relayed:
        for b in relayed:
            if (a.protocol, a.resource, a.message_id) \
                    == (b.protocol, b.resource, b.message_id):
                assert b.span_id in store.component_ids(a.span_id)
    for span in spans:
        if span.protocol == "http" and span.message_id is not None:
            keys = association_keys(span)
            assert not any(key[0] == "mq" for key in keys)
