"""End-to-end tracing of a proprietary protocol via a user-supplied spec.

§3.3.1: the agent "iterates through the common protocol specifications
and the optional user-supplied protocol specifications".  A company's
in-house line protocol is invisible to the default specs; supplying a
spec in AgentConfig makes its sessions first-class spans with zero
changes anywhere else.
"""

from typing import Optional

import pytest

from repro.agent.agent import AgentConfig
from repro.apps.runtime import Component, WorkerContext
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


class FooWireSpec(ProtocolSpec):
    """A proprietary text protocol: ``FOO <verb> <key>\\n`` / ``ANS ...``."""

    name = "foowire"
    multiplexed = False

    def infer(self, payload: bytes) -> bool:
        return payload.startswith((b"FOO ", b"ANS "))

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        try:
            line = payload.decode("ascii").strip()
        except UnicodeDecodeError:
            return None
        parts = line.split(" ")
        if parts[0] == "FOO" and len(parts) >= 3:
            return ParsedMessage(protocol=self.name,
                                 msg_type=MessageType.REQUEST,
                                 operation=parts[1], resource=parts[2],
                                 size=len(payload))
        if parts[0] == "ANS":
            ok = len(parts) >= 2 and parts[1] == "OK"
            return ParsedMessage(protocol=self.name,
                                 msg_type=MessageType.RESPONSE,
                                 status="ok" if ok else "error",
                                 size=len(payload))
        return None


class FooService(Component):
    def handle_payload(self, worker: WorkerContext, data: bytes):
        yield from worker.work(0.0005)
        line = data.decode("ascii").strip()
        verb = line.split(" ")[1]
        if verb == "CRASH":
            return b"ANS FAIL\n"
        return b"ANS OK\n"


def build(user_spec):
    sim = Simulator(seed=99)
    builder = ClusterBuilder(node_count=2)
    client_pod = builder.add_pod(0, "client-pod")
    svc_pod = builder.add_pod(1, "foo-pod")
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    config = AgentConfig(user_specs=(user_spec,) if user_spec else ())
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node, config=config)
        agent.deploy()
        agents.append(agent)
    service = FooService("foo-svc", svc_pod.node, 4100, pod=svc_pod)
    service.start()
    kernel = network.kernel_for_node(client_pod.node.name)
    process = kernel.create_process("foo-client", client_pod.ip)
    thread = kernel.create_thread(process)

    class _Shim:
        pass

    shim = _Shim()
    shim.kernel = kernel
    shim.ingress_abi = "read"
    shim.egress_abi = "write"
    shim.sim = sim
    worker = WorkerContext(shim, thread, None)

    def client():
        first = yield from worker.call_raw(svc_pod.ip, 4100,
                                           b"FOO GET user:42\n")
        second = yield from worker.call_raw(svc_pod.ip, 4100,
                                            b"FOO CRASH now\n")
        return first, second

    result = sim.run_process(sim.spawn(client()))
    sim.run(until=sim.now + 0.3)
    for agent in agents:
        agent.flush()
    return server, result


class TestUserSuppliedSpec:
    def test_without_spec_protocol_is_invisible(self):
        server, result = build(user_spec=None)
        assert result[0] == b"ANS OK\n"
        assert server.find_spans(process_name="foo-svc") == []

    def test_with_spec_sessions_become_spans(self):
        server, result = build(user_spec=FooWireSpec())
        assert result == (b"ANS OK\n", b"ANS FAIL\n")
        spans = server.find_spans(process_name="foo-svc")
        assert len(spans) == 2
        ok_span = next(span for span in spans if span.operation == "GET")
        assert ok_span.protocol == "foowire"
        assert ok_span.resource == "user:42"
        assert ok_span.status == "ok"
        crash_span = next(span for span in spans
                          if span.operation == "CRASH")
        assert crash_span.is_error

    def test_client_and_server_spans_associate(self):
        server, _result = build(user_spec=FooWireSpec())
        client_span = next(span for span in server.store.all_spans()
                           if span.process_name == "foo-client"
                           and span.operation == "GET")
        trace = server.trace(client_span.span_id)
        assert len(trace) == 2
        server_span = next(span for span in trace
                           if span.process_name == "foo-svc")
        assert server_span.parent_id == client_span.span_id
