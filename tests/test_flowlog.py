"""Unit tests for the cBPF flow-span builder."""

from repro.agent.flowlog import FlowSpanBuilder
from repro.core.ids import IdAllocator
from repro.core.span import SpanKind, SpanSide
from repro.kernel.sockets import FiveTuple
from repro.network.captures import PacketRecord
from repro.protocols import http1

FT = FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80)


def record(payload, direction="c2s", seq=1, t=0.0, device="tor",
           flow_id=1, path_index=0):
    return PacketRecord(
        device_name=device, device_kind="tor-switch",
        device_tags={"device": device}, five_tuple=FT,
        direction=direction, tcp_seq=seq, byte_len=len(payload),
        payload=payload, timestamp=t, flow_id=flow_id,
        path_index=path_index)


def make_builder():
    return FlowSpanBuilder(IdAllocator(3), host="node-1")


class TestFlowSpanBuilder:
    def test_request_then_response_produces_span(self):
        builder = make_builder()
        assert builder.feed(record(http1.encode_request("GET", "/x"),
                                   seq=1, t=1.0)) is None
        span = builder.feed(record(http1.encode_response(200),
                                   direction="s2c", seq=1, t=2.0))
        assert span is not None
        assert span.kind is SpanKind.NETWORK
        assert span.side is SpanSide.NETWORK
        assert span.device_name == "tor"
        assert span.start_time == 1.0
        assert span.end_time == 2.0
        assert span.operation == "GET"
        assert span.status_code == 200
        assert span.req_tcp_seq == 1

    def test_devices_pair_independently(self):
        builder = make_builder()
        builder.feed(record(http1.encode_request("GET", "/x"),
                            device="tor", seq=1))
        builder.feed(record(http1.encode_request("GET", "/x"),
                            device="nic", seq=1))
        span_nic = builder.feed(record(http1.encode_response(200),
                                       direction="s2c", device="nic",
                                       seq=1))
        span_tor = builder.feed(record(http1.encode_response(200),
                                       direction="s2c", device="tor",
                                       seq=1))
        assert span_nic.device_name == "nic"
        assert span_tor.device_name == "tor"

    def test_retransmission_deduplicated(self):
        builder = make_builder()
        request = record(http1.encode_request("GET", "/x"), seq=5)
        builder.feed(request)
        assert builder.feed(request) is None
        assert builder.duplicates == 1
        span = builder.feed(record(http1.encode_response(200),
                                   direction="s2c", seq=1))
        assert span is not None  # paired once despite the duplicate

    def test_unparseable_payload_ignored(self):
        builder = make_builder()
        assert builder.feed(record(b"\x00\x01\x02")) is None
        assert builder.feed(record(b"", seq=2)) is None

    def test_orphan_response_produces_nothing(self):
        builder = make_builder()
        assert builder.feed(record(http1.encode_response(200),
                                   direction="s2c")) is None

    def test_device_tags_carried_onto_span(self):
        builder = make_builder()
        builder.feed(record(http1.encode_request("GET", "/x")))
        span = builder.feed(record(http1.encode_response(200),
                                   direction="s2c", seq=1))
        assert span.tags["device"] == "tor"

    def test_x_request_id_extracted_from_captured_payload(self):
        builder = make_builder()
        builder.feed(record(http1.encode_request(
            "GET", "/x", headers={"X-Request-ID": "xr-55"})))
        span = builder.feed(record(http1.encode_response(200),
                                   direction="s2c", seq=1))
        assert span.x_request_id == "xr-55"

    def test_flows_are_independent(self):
        builder = make_builder()
        builder.feed(record(http1.encode_request("GET", "/a"), flow_id=1))
        builder.feed(record(http1.encode_request("GET", "/b"), flow_id=2))
        span = builder.feed(record(http1.encode_response(200),
                                   direction="s2c", flow_id=2, seq=1))
        assert span.resource == "/b"
