"""Unit and integration tests for the simulated kernel."""

import pytest

from repro.kernel import (
    ALL_ABIS,
    BPFProgram,
    Direction,
    EGRESS_ABIS,
    INGRESS_ABIS,
    KernelError,
    ProgramBuilder,
    VerifierError,
    verify_bytecode,
    verify_program,
)
from repro.kernel.bpf_isa import R0, R1, R2, R6, R7, R10
from repro.kernel.ebpf import (
    EMPTY_PROGRAM_LATENCY_NS,
    PER_INSTRUCTION_LATENCY_NS,
    PerfBuffer,
)
from repro.kernel.syscalls import abi_direction


def _client_server(network, cluster, sim, server_handler, client_body):
    """Wire a minimal client/server pair of processes over the network."""
    client_node, server_node = cluster.nodes
    client_kernel = network.kernel_for_node(client_node.name)
    server_kernel = network.kernel_for_node(server_node.name)
    client_pod = client_node.pods[0]
    server_pod = server_node.pods[0]

    server_proc = server_kernel.create_process("server", server_pod.ip)
    server_thread = server_kernel.create_thread(server_proc)
    listener = server_kernel.listen(server_proc, 8080)

    def server_loop():
        fd = yield from server_kernel.accept(server_thread, listener)
        yield from server_handler(server_kernel, server_thread, fd)

    client_proc = client_kernel.create_process("client", client_pod.ip)
    client_thread = client_kernel.create_thread(client_proc)

    def client_main():
        fd = yield from client_kernel.connect(
            client_thread, server_pod.ip, 8080)
        result = yield from client_body(client_kernel, client_thread, fd)
        return result

    sim.spawn(server_loop(), name="server")
    return sim.spawn(client_main(), name="client")


class TestTable3ABIs:
    def test_ten_abis_total(self):
        assert len(ALL_ABIS) == 10
        assert len(INGRESS_ABIS) == 5
        assert len(EGRESS_ABIS) == 5

    def test_table3_names(self):
        assert set(INGRESS_ABIS) == {
            "recvmsg", "recvmmsg", "readv", "read", "recvfrom"}
        assert set(EGRESS_ABIS) == {
            "sendmsg", "sendmmsg", "writev", "write", "sendto"}

    def test_direction_classification(self):
        for abi in INGRESS_ABIS:
            assert abi_direction(abi) is Direction.INGRESS
        for abi in EGRESS_ABIS:
            assert abi_direction(abi) is Direction.EGRESS

    def test_unknown_abi_rejected(self):
        with pytest.raises(ValueError):
            abi_direction("ioctl")


def _unbounded_loop_bytecode():
    """A back-edge guarded by a never-changing unknown scalar — no trip
    bound is provable, and no self-declared flag is involved."""
    b = ProgramBuilder()
    b.ld_ctx(R6, "byte_len")
    b.label("spin")
    b.jne_imm(R6, 0, "spin")
    b.mov_imm(R0, 0)
    b.exit()
    return b.assemble()


class TestVerifier:
    def test_accepts_bounded_program(self):
        verify_program(BPFProgram("ok", lambda ctx: None, instructions=100))

    def test_accepts_bounded_bytecode_loop(self):
        b = ProgramBuilder()
        b.bounded_loop(R6, 10, lambda bb: bb.mov_imm(R7, 1))
        b.mov_imm(R0, 0)
        b.exit()
        program = BPFProgram("loop10", lambda ctx: None,
                             bytecode=b.assemble())
        verify_program(program)
        assert program.verified is not None
        assert program.verified.back_edge_count == 1

    def test_rejects_unbounded_loop(self):
        program = BPFProgram("loop", lambda ctx: None,
                             bytecode=_unbounded_loop_bytecode())
        with pytest.raises(VerifierError, match="back-edge"):
            verify_program(program)

    def test_rejects_uninitialized_register_read(self):
        b = ProgramBuilder()
        b.mov_reg(R0, R7)  # r7 never written
        b.exit()
        program = BPFProgram("uninit", lambda ctx: None,
                             bytecode=b.assemble())
        with pytest.raises(VerifierError, match="uninitialized"):
            verify_program(program)

    def test_rejects_oversized_program(self):
        program = BPFProgram("big", lambda ctx: None,
                             instructions=2_000_000)
        with pytest.raises(VerifierError, match="instructions"):
            verify_program(program)

    def test_rejects_oversized_bytecode_path(self):
        b = ProgramBuilder()
        b.bounded_loop(R6, 2000, lambda bb: bb.mov_imm(R7, 1))
        b.mov_imm(R0, 0)
        b.exit()
        bytecode = b.assemble()
        # Bounded, but its worst-case path exceeds the instruction limit.
        with pytest.raises(VerifierError, match="worst-case path"):
            verify_bytecode(bytecode, max_path=1000)
        # And with a small exploration budget it is "too complex" before
        # the bound is even proven — the kernel verifier's behaviour.
        with pytest.raises(VerifierError, match="too complex"):
            verify_bytecode(bytecode, state_budget=500)

    def test_rejects_deep_stack(self):
        program = BPFProgram("stack", lambda ctx: None, stack_bytes=4096)
        with pytest.raises(VerifierError, match="stack"):
            verify_program(program)

    def test_rejects_deep_bytecode_stack(self):
        b = ProgramBuilder()
        b.mov_imm(R2, 7)
        b.stack_store(-520, R2)  # below the 512-byte frame
        b.mov_imm(R0, 0)
        b.exit()
        program = BPFProgram("deep", lambda ctx: None,
                             bytecode=b.assemble())
        with pytest.raises(VerifierError, match="stack"):
            verify_program(program)

    def test_helper_whitelist_per_hook_type(self, kernels):
        b = ProgramBuilder()
        b.mov_reg(R1, R10)
        b.add_imm(R1, -8)
        b.mov_imm(R2, 8)
        b.call("probe_read_kernel")  # kernel reads from a uprobe: no
        b.mov_imm(R0, 0)
        b.exit()
        program = BPFProgram("ssl_sniff", lambda ctx: None,
                             bytecode=b.assemble())
        with pytest.raises(VerifierError, match="not allowed"):
            kernels[0].hooks.attach("uprobe:nginx:ssl_write", program)
        # The same bytecode is legal on a tracepoint.
        fresh = BPFProgram("ssl_sniff", lambda ctx: None,
                           bytecode=b.assemble())
        kernels[0].hooks.attach("sys_enter_read", fresh)

    def test_attach_runs_verifier_and_counts_rejections(self, kernels):
        bad = BPFProgram("bad", lambda ctx: None,
                         bytecode=_unbounded_loop_bytecode())
        assert kernels[0].hooks.verifier_rejections == 0
        with pytest.raises(VerifierError):
            kernels[0].hooks.attach("sys_enter_read", bad)
        assert kernels[0].hooks.verifier_rejections == 1
        assert not kernels[0].hooks.has_hook("sys_enter_read")

    def test_verified_count_drives_latency(self):
        b = ProgramBuilder()
        b.bounded_loop(R6, 50, lambda bb: bb.mov_imm(R7, 1))
        b.mov_imm(R0, 0)
        b.exit()
        program = BPFProgram("timed", lambda ctx: None,
                             instructions=99999,  # declared lie
                             bytecode=b.assemble())
        verify_program(program)
        worst = program.verified.worst_case_instructions
        assert worst != 99999
        assert program.effective_instructions == worst
        assert program.latency_ns == pytest.approx(
            EMPTY_PROGRAM_LATENCY_NS
            + worst * PER_INSTRUCTION_LATENCY_NS)


class TestHookRegistryDetach:
    def test_detach_prunes_empty_attach_points(self, kernels):
        registry = kernels[0].hooks
        before = registry.attach_points()
        program = BPFProgram("p", lambda ctx: None, instructions=10)
        registry.attach("sys_enter_read", program)
        assert "sys_enter_read" in registry.attach_points()
        registry.detach("sys_enter_read", program)
        # Regression: the empty list used to linger, overcounting
        # attach points for any iteration over the hook table.
        assert registry.attach_points() == before
        assert not registry.has_hook("sys_enter_read")

    def test_detach_keeps_point_with_remaining_programs(self, kernels):
        registry = kernels[0].hooks
        first = BPFProgram("a", lambda ctx: None, instructions=10)
        second = BPFProgram("b", lambda ctx: None, instructions=10)
        registry.attach("sys_enter_read", first)
        registry.attach("sys_enter_read", second)
        registry.detach("sys_enter_read", first)
        assert registry.attached("sys_enter_read") == [second]
        registry.detach("sys_enter_read", second)
        assert "sys_enter_read" not in registry.attach_points()

    def test_detach_unknown_hook_is_noop(self, kernels):
        program = BPFProgram("p", lambda ctx: None, instructions=10)
        kernels[0].hooks.detach("sys_enter_never_attached", program)

    def test_runtime_fault_contained(self, kernels, sim):
        def crashes(ctx):
            raise RuntimeError("bug in program")

        program = BPFProgram("crashy", crashes)
        kernels[0].hooks.attach("test_hook", program)
        cost = kernels[0].hooks.fire("test_hook", object())
        assert cost > 0
        assert program.runtime_faults == 1  # contained, not propagated


class TestSyscalls:
    def test_echo_round_trip(self, network, cluster, sim):
        def server(kernel, thread, fd):
            data = yield from kernel.read(thread, fd)
            yield from kernel.write(thread, fd, b"pong:" + data)

        def client(kernel, thread, fd):
            yield from kernel.write(thread, fd, b"ping")
            reply = yield from kernel.read(thread, fd)
            return reply

        process = _client_server(network, cluster, sim, server, client)
        assert sim.run_process(process) == b"pong:ping"

    def test_tcp_seq_preserved_end_to_end(self, network, cluster, sim):
        observed = {}

        def server(kernel, thread, fd):
            sock = kernel.socket_for_fd(thread, fd)
            yield from kernel.read(thread, fd)
            observed["server_rx_first_seq"] = sock.rx_next_seq - 7

        def client(kernel, thread, fd):
            sock = kernel.socket_for_fd(thread, fd)
            observed["client_tx_first_seq"] = sock.tx_next_seq
            yield from kernel.write(thread, fd, b"0123456")
            yield 0.01

        process = _client_server(network, cluster, sim, server, client)
        sim.run_process(process)
        sim.run()
        assert (observed["client_tx_first_seq"]
                == observed["server_rx_first_seq"])

    def test_every_abi_round_trips(self, network, cluster, sim):
        """All ten Table 3 ABIs move bytes correctly."""
        for ingress, egress in zip(INGRESS_ABIS, EGRESS_ABIS):
            def server(kernel, thread, fd, _in=ingress, _out=egress):
                data = yield from kernel.recv_abi(_in, thread, fd)
                yield from kernel.send_abi(_out, thread, fd, data.upper())

            def client(kernel, thread, fd, _in=ingress, _out=egress):
                yield from kernel.send_abi(_out, thread, fd, b"abc")
                return (yield from kernel.recv_abi(_in, thread, fd))

            builder_sim = type(sim)(seed=1)
            from repro.network.topology import ClusterBuilder
            from repro.network.transport import Network
            builder = ClusterBuilder(node_count=2)
            builder.add_pod(0, "c")
            builder.add_pod(1, "s")
            local_cluster = builder.build()
            local_network = Network(builder_sim, local_cluster)
            process = _client_server(
                local_network, local_cluster, builder_sim, server, client)
            assert builder_sim.run_process(process) == b"ABC"

    def test_blocking_read_waits_for_data(self, network, cluster, sim):
        times = {}

        def server(kernel, thread, fd):
            yield 0.5  # think before answering
            yield from kernel.write(thread, fd, b"slow answer")

        def client(kernel, thread, fd):
            start = sim.now
            data = yield from kernel.read(thread, fd)
            times["waited"] = sim.now - start
            return data

        process = _client_server(network, cluster, sim, server, client)
        assert sim.run_process(process) == b"slow answer"
        assert times["waited"] >= 0.5

    def test_read_after_close_returns_eof(self, network, cluster, sim):
        def server(kernel, thread, fd):
            yield from kernel.read(thread, fd)
            kernel.close(thread, fd)

        def client(kernel, thread, fd):
            yield from kernel.write(thread, fd, b"x")
            first = yield from kernel.read(thread, fd)
            return first

        process = _client_server(network, cluster, sim, server, client)
        assert sim.run_process(process) == b""  # EOF

    def test_connect_refused_when_nothing_listens(self, network, cluster,
                                                  sim):
        node = cluster.nodes[0]
        kernel = network.kernel_for_node(node.name)
        proc = kernel.create_process("lonely", node.pods[0].ip)
        thread = kernel.create_thread(proc)

        def main():
            with pytest.raises(ConnectionRefusedError):
                yield from kernel.connect(thread, "10.0.2.2", 9999)
            return "refused"

        process = sim.spawn(main())
        assert sim.run_process(process) == "refused"

    def test_bad_fd_raises(self, kernels):
        kernel = kernels[0]
        proc = kernel.create_process("p", "10.0.1.2")
        thread = kernel.create_thread(proc)
        with pytest.raises(KernelError, match="bad fd"):
            kernel.socket_for_fd(thread, 99)

    def test_double_listen_rejected(self, network, cluster):
        node = cluster.nodes[0]
        kernel = network.kernel_for_node(node.name)
        proc = kernel.create_process("p", node.pods[0].ip)
        kernel.listen(proc, 80)
        with pytest.raises(KernelError, match="in use"):
            kernel.listen(proc, 80)


class TestHookDispatch:
    def test_enter_and_exit_hooks_fire_with_contexts(self, network, cluster,
                                                     sim):
        seen = []
        program = BPFProgram("probe", seen.append)
        for kernel in network.kernels.values():
            for abi in ("read", "write"):
                kernel.hooks.attach(f"sys_enter_{abi}", program)
                kernel.hooks.attach(f"sys_exit_{abi}", program)

        def server(kernel, thread, fd):
            data = yield from kernel.read(thread, fd)
            yield from kernel.write(thread, fd, data)

        def client(kernel, thread, fd):
            yield from kernel.write(thread, fd, b"hello")
            return (yield from kernel.read(thread, fd))

        process = _client_server(network, cluster, sim, server, client)
        sim.run_process(process)
        enters = [ctx for ctx in seen if ctx.is_enter]
        exits = [ctx for ctx in seen if not ctx.is_enter]
        assert len(enters) == 4 and len(exits) == 4
        egress_exit = next(ctx for ctx in exits
                           if ctx.direction is Direction.EGRESS
                           and ctx.process_name == "client")
        assert egress_exit.payload == b"hello"
        assert egress_exit.tcp_seq >= 1
        assert egress_exit.ret == 5

    def test_hook_latency_slows_syscalls(self, cluster, sim):
        """With hooks attached, the same workload takes measurably longer."""
        from repro.network.topology import ClusterBuilder
        from repro.network.transport import Network

        def run_once(attach_hooks):
            local_sim = type(sim)(seed=5)
            builder = ClusterBuilder(node_count=2)
            builder.add_pod(0, "c")
            builder.add_pod(1, "s")
            local_cluster = builder.build()
            local_network = Network(local_sim, local_cluster)
            if attach_hooks:
                program = BPFProgram("p", lambda ctx: None,
                                     instructions=2000)
                for kernel in local_network.kernels.values():
                    for abi in ALL_ABIS:
                        kernel.hooks.attach(f"sys_enter_{abi}", program)
                        kernel.hooks.attach(f"sys_exit_{abi}", program)

            def server(kernel, thread, fd):
                for _ in range(100):
                    data = yield from kernel.read(thread, fd)
                    yield from kernel.write(thread, fd, data)

            def client(kernel, thread, fd):
                for _ in range(100):
                    yield from kernel.write(thread, fd, b"x" * 64)
                    yield from kernel.read(thread, fd)
                return local_sim.now

            process = _client_server(local_network, local_cluster,
                                     local_sim, server, client)
            return local_sim.run_process(process)

        assert run_once(True) > run_once(False)

    def test_perf_buffer_drops_when_full(self, sim):
        buffer = PerfBuffer(sim, capacity=2)
        assert buffer.submit(1)
        assert buffer.submit(2)
        assert not buffer.submit(3)
        assert buffer.dropped == 1
        assert buffer.drain() == [1, 2]


class TestCoroutines:
    def test_creation_event_carries_parent(self, kernels):
        kernel = kernels[0]
        events = []
        kernel.hooks.attach("coroutine_create",
                            BPFProgram("co", events.append))
        proc = kernel.create_process("go-app", "10.0.1.2")
        thread = kernel.create_thread(proc)
        parent = kernel.create_coroutine(thread)
        child = kernel.create_coroutine(thread, parent=parent)
        assert len(events) == 2
        assert events[0].parent_coroutine_id is None
        assert events[1].parent_coroutine_id == parent.coroutine_id
        assert child.parent is parent

    def test_syscall_context_carries_coroutine_id(self, network, cluster,
                                                  sim):
        seen = []
        program = BPFProgram("probe", seen.append)
        for kernel in network.kernels.values():
            kernel.hooks.attach("sys_enter_write", program)

        def server(kernel, thread, fd):
            yield from kernel.read(thread, fd)

        def client(kernel, thread, fd):
            coroutine = kernel.create_coroutine(thread)
            thread.current_coroutine = coroutine
            yield from kernel.write(thread, fd, b"from-coroutine")

        process = _client_server(network, cluster, sim, server, client)
        sim.run_process(process)
        assert seen[0].coroutine_id is not None
