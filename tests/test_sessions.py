"""Unit tests for session aggregation (Figure 6 phase 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agent.sessions import (
    Message,
    SessionAggregator,
    TimeWindowArray,
)
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction, SyscallRecord
from repro.protocols.base import MessageType, ParsedMessage

FT = FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80)


def record(direction=Direction.INGRESS, t=0.0, socket_id=1, nbytes=10,
           seq=1):
    return SyscallRecord(
        pid=1, tid=10, coroutine_id=None, process_name="p",
        socket_id=socket_id, five_tuple=FT, tcp_seq=seq,
        enter_time=t, exit_time=t + 0.001, direction=direction,
        abi="read" if direction is Direction.INGRESS else "write",
        byte_len=nbytes, payload=b"x" * nbytes, ret=nbytes)


def message(msg_type, direction=Direction.INGRESS, t=0.0, socket_id=1,
            stream_id=None, seq=1):
    parsed = ParsedMessage(protocol="http", msg_type=msg_type,
                           stream_id=stream_id)
    return Message(record=record(direction, t, socket_id, seq=seq),
                   parsed=parsed)


class TestTimeWindowArray:
    def test_same_slot_in_window(self):
        window = TimeWindowArray(60.0)
        assert window.in_window(10.0, 50.0)

    def test_adjacent_slot_in_window(self):
        window = TimeWindowArray(60.0)
        assert window.in_window(59.0, 61.0)
        assert window.in_window(59.0, 119.0)

    def test_two_slots_apart_out_of_window(self):
        window = TimeWindowArray(60.0)
        assert not window.in_window(10.0, 130.0)

    def test_expiry(self):
        window = TimeWindowArray(60.0)
        assert not window.expired(10.0, 119.0)
        assert window.expired(10.0, 121.0)

    def test_default_slot_is_sixty_seconds(self):
        assert TimeWindowArray().slot_duration == 60.0

    def test_invalid_slot_duration(self):
        with pytest.raises(ValueError):
            TimeWindowArray(0)


class TestPipelineMatching:
    def test_request_then_response_pairs(self):
        aggregator = SessionAggregator()
        assert aggregator.add(message(MessageType.REQUEST, t=1.0)) == []
        sessions = aggregator.add(message(MessageType.RESPONSE, t=2.0))
        assert len(sessions) == 1
        assert sessions[0].complete
        assert aggregator.matched == 1

    def test_order_preserved_for_pipelined_requests(self):
        aggregator = SessionAggregator()
        first = message(MessageType.REQUEST, t=1.0, seq=1)
        second = message(MessageType.REQUEST, t=1.1, seq=100)
        aggregator.add(first)
        aggregator.add(second)
        sessions = aggregator.add(message(MessageType.RESPONSE, t=2.0))
        assert sessions[0].request is first
        sessions = aggregator.add(message(MessageType.RESPONSE, t=2.1))
        assert sessions[0].request is second

    def test_orphan_response_flagged(self):
        aggregator = SessionAggregator()
        sessions = aggregator.add(message(MessageType.RESPONSE, t=1.0))
        assert sessions[0].error == "orphan-response"
        assert sessions[0].request is None

    def test_sockets_are_independent(self):
        aggregator = SessionAggregator()
        aggregator.add(message(MessageType.REQUEST, t=1.0, socket_id=1))
        sessions = aggregator.add(
            message(MessageType.RESPONSE, t=1.5, socket_id=2))
        assert sessions[0].error == "orphan-response"

    def test_expired_request_forced_out_by_late_response(self):
        aggregator = SessionAggregator(slot_duration=1.0)
        stale = message(MessageType.REQUEST, t=0.5)
        aggregator.add(stale)
        aggregator.add(message(MessageType.REQUEST, t=3.5))
        sessions = aggregator.add(message(MessageType.RESPONSE, t=3.6))
        assert len(sessions) == 2
        assert sessions[0].request is stale
        assert sessions[0].error == "no-response"
        assert sessions[1].complete


class TestParallelMatching:
    def test_match_by_stream_id_out_of_order(self):
        aggregator = SessionAggregator()
        aggregator.add(message(MessageType.REQUEST, t=1.0, stream_id=7))
        aggregator.add(message(MessageType.REQUEST, t=1.1, stream_id=9))
        sessions = aggregator.add(
            message(MessageType.RESPONSE, t=2.0, stream_id=9))
        assert sessions[0].request.parsed.stream_id == 9
        sessions = aggregator.add(
            message(MessageType.RESPONSE, t=2.1, stream_id=7))
        assert sessions[0].request.parsed.stream_id == 7

    def test_early_response_buffered_then_matched(self):
        """Multi-core disorder: a response observed before its request
        still pairs (symmetric window matching, §3.3.1)."""
        aggregator = SessionAggregator()
        assert aggregator.add(
            message(MessageType.RESPONSE, t=1.0, stream_id=5)) == []
        sessions = aggregator.add(
            message(MessageType.REQUEST, t=1.001, stream_id=5))
        assert len(sessions) == 1
        assert sessions[0].complete

    def test_unmatched_early_response_expires_as_orphan(self):
        aggregator = SessionAggregator(slot_duration=1.0)
        aggregator.add(message(MessageType.RESPONSE, t=1.0, stream_id=5))
        sessions = aggregator.flush_expired(now=10.0)
        assert len(sessions) == 1
        assert sessions[0].error == "orphan-response"
        assert aggregator.orphans == 1


class TestFlushAndClose:
    def test_flush_expires_old_requests(self):
        aggregator = SessionAggregator(slot_duration=1.0)
        aggregator.add(message(MessageType.REQUEST, t=0.5))
        assert aggregator.flush_expired(now=1.5) == []
        sessions = aggregator.flush_expired(now=3.0)
        assert len(sessions) == 1
        assert sessions[0].error == "no-response"

    def test_flush_expires_stream_requests(self):
        aggregator = SessionAggregator(slot_duration=1.0)
        aggregator.add(message(MessageType.REQUEST, t=0.5, stream_id=3))
        sessions = aggregator.flush_expired(now=5.0)
        assert len(sessions) == 1

    def test_close_socket_errors_all_open_requests(self):
        aggregator = SessionAggregator()
        aggregator.add(message(MessageType.REQUEST, t=1.0))
        aggregator.add(message(MessageType.REQUEST, t=1.1, stream_id=2))
        sessions = aggregator.close_socket(1, error="reset")
        assert len(sessions) == 2
        assert all(session.error == "reset" for session in sessions)
        assert aggregator.open_request_count(1) == 0

    def test_unknown_message_type_ignored(self):
        aggregator = SessionAggregator()
        assert aggregator.add(message(MessageType.UNKNOWN)) == []
        assert aggregator.open_request_count() == 0

    def test_continuation_absorption(self):
        msg = message(MessageType.REQUEST, t=1.0, seq=1)
        continuation = record(Direction.INGRESS, t=1.05, nbytes=500)
        msg.absorb_continuation(continuation)
        assert msg.total_bytes == 510
        assert msg.end_time == pytest.approx(1.051)


class TestSessionInvariants:
    @given(st.lists(st.sampled_from(["req", "resp"]), min_size=1,
                    max_size=40))
    @settings(max_examples=60)
    def test_matched_plus_orphans_equals_responses(self, sequence):
        """Every response either matches a request or is an orphan."""
        aggregator = SessionAggregator()
        t = 0.0
        responses = 0
        for kind in sequence:
            t += 0.01
            if kind == "req":
                aggregator.add(message(MessageType.REQUEST, t=t))
            else:
                responses += 1
                aggregator.add(message(MessageType.RESPONSE, t=t))
        assert aggregator.matched + aggregator.orphans == responses

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30)
    def test_every_request_eventually_accounted(self, n_requests):
        """flush at infinity: all unmatched requests become error sessions."""
        aggregator = SessionAggregator(slot_duration=1.0)
        for index in range(n_requests):
            aggregator.add(message(MessageType.REQUEST, t=index * 0.001))
        flushed = aggregator.flush_expired(now=1e6)
        assert len(flushed) == n_requests
