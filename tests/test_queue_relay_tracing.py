"""Queue-relay tracing extension (beyond the paper; its stated future
work): producer → broker → consumer causality across an async queue.

§3.3.2 Bottom-Up Trace Assembling: "This assumption indeed makes
DeepFlow incapable of managing scenarios such as message queues.  We plan
to tackle this problem in future work."  The extension pairs the broker's
publish (server side) and deliver (client side) spans through the
protocol's own message identifier — still zero-code, still implicit.
"""

import pytest

from repro.apps.rabbitmq import ConsumerService, RabbitMQBroker, publish
from repro.apps.runtime import WorkerContext
from repro.core.span import SpanSide
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.protocols import amqp
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator


class TestAmqpDeliverCodec:
    spec = amqp.AmqpSpec()

    def test_deliver_round_trip(self):
        raw = amqp.encode_deliver(2, 71, "work-queue", b"job-bytes")
        parsed = self.spec.parse(raw)
        assert parsed.operation == "basic.deliver"
        assert parsed.resource == "work-queue"
        assert parsed.stream_id == (2 << 32) | 71

    def test_deliver_and_publish_share_message_identity(self):
        deliver = self.spec.parse(amqp.encode_deliver(1, 5, "q"))
        pub = self.spec.parse(amqp.encode_publish(1, 5, "q"))
        assert deliver.stream_id == pub.stream_id


def _relay_world(seed=73):
    sim = Simulator(seed=seed)
    builder = ClusterBuilder(node_count=3)
    producer_pod = builder.add_pod(0, "producer-pod")
    mq_pod = builder.add_pod(1, "rabbitmq-pod")
    consumer_pod = builder.add_pod(2, "consumer-pod")
    cluster = builder.build()
    network = Network(sim, cluster)
    server = DeepFlowServer()
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node)
        agent.deploy()
        agents.append(agent)

    consumer = ConsumerService("worker", consumer_pod.node, 7000,
                               pod=consumer_pod, process_time=0.001)
    consumer.start()
    broker = RabbitMQBroker("rabbitmq", mq_pod.node, 5672, pod=mq_pod,
                            queue_capacity=100, consume_rate=500.0)
    broker.start()
    broker.subscribe("orders", consumer_pod.ip, 7000)

    kernel = network.kernel_for_node(producer_pod.node.name)
    process = kernel.create_process("producer", producer_pod.ip)
    thread = kernel.create_thread(process)

    class _Shim:
        pass

    shim = _Shim()
    shim.kernel = kernel
    shim.ingress_abi = "read"
    shim.egress_abi = "write"
    shim.sim = sim
    worker = WorkerContext(shim, thread, None)
    return (sim, server, agents, broker, consumer, worker, mq_pod,
            producer_pod)


def _run_producer(sim, worker, mq_pod, count=5, spacing=0.05):
    acks = []

    def producer_main():
        for tag in range(1, count + 1):
            ack = yield from publish(worker, mq_pod.ip, 5672, channel=1,
                                     delivery_tag=tag, queue="orders",
                                     body=b"job")
            acks.append(ack)
            yield spacing

    sim.run_process(sim.spawn(producer_main(), name="producer"))
    return acks


class TestQueueRelay:
    def test_messages_flow_producer_to_consumer(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()
        acks = _run_producer(sim, worker, mq_pod, count=5)
        sim.run(until=sim.now + 1.0)
        assert all(ack is not None and not ack.is_error for ack in acks)
        assert broker.published == 5
        assert consumer.consumed == 5
        assert broker.delivered == 5

    def test_trace_crosses_the_queue(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()
        _run_producer(sim, worker, mq_pod, count=3)
        sim.run(until=sim.now + 1.0)
        for agent in agents:
            agent.flush()
        # Start from the producer's publish span; Algorithm 1 must pull
        # in the broker's deliver span and the consumer's server span.
        publish_client = next(
            span for span in server.store.all_spans()
            if span.process_name == "producer" and span.message_id
            and span.message_id & 0xFFFFFFFF == 2)
        trace = server.trace(publish_client.span_id)
        names = {(span.process_name, span.side.value, span.operation)
                 for span in trace}
        assert ("producer", "c", "basic.publish") in names
        assert ("rabbitmq", "s", "basic.publish") in names
        assert ("rabbitmq", "c", "basic.deliver") in names
        assert ("worker", "s", "basic.deliver") in names
        assert len(trace) == 4

    def test_parenting_across_the_relay(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()
        _run_producer(sim, worker, mq_pod, count=1)
        sim.run(until=sim.now + 1.0)
        for agent in agents:
            agent.flush()
        publish_client = next(span for span in server.store.all_spans()
                              if span.process_name == "producer")
        trace = server.trace(publish_client.span_id)
        by_role = {(span.process_name, span.side.value): span
                   for span in trace}
        broker_server = by_role[("rabbitmq", "s")]
        broker_deliver = by_role[("rabbitmq", "c")]
        consumer_server = by_role[("worker", "s")]
        # publish chain: producer client -> broker server (R4)
        assert broker_server.parent_id == publish_client.span_id
        # the queue relay (R11): deliver under the publish it relays
        assert broker_deliver.parent_id == broker_server.span_id
        # deliver chain: broker client -> consumer server (R4)
        assert consumer_server.parent_id == broker_deliver.span_id
        assert trace.roots() == [publish_client]

    def test_each_message_traces_separately(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()
        _run_producer(sim, worker, mq_pod, count=4)
        sim.run(until=sim.now + 1.0)
        for agent in agents:
            agent.flush()
        producer_spans = server.find_spans(process_name="producer")
        assert len(producer_spans) == 4
        sizes = {len(server.trace(span.span_id)) for span in producer_spans}
        assert sizes == {4}

    def test_double_subscribe_rejected(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()
        with pytest.raises(ValueError, match="already has a consumer"):
            broker.subscribe("orders", "10.0.3.2", 7000)

    def test_unsubscribed_queue_still_drains_internally(self):
        (sim, server, agents, broker, consumer, worker, mq_pod,
         _producer_pod) = _relay_world()

        def producer_main():
            yield from publish(worker, mq_pod.ip, 5672, channel=1,
                               delivery_tag=9, queue="unwatched",
                               body=b"x")

        sim.run_process(sim.spawn(producer_main()))
        assert len(broker.queues["unwatched"]) == 1
        sim.run(until=sim.now + 1.0)
        assert len(broker.queues["unwatched"]) == 0
        assert consumer.consumed == 0
