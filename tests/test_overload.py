"""Unit tests for the overload self-protection subsystem.

Covers the kernel half (token buckets at firing time, perf-buffer
high-water/drop attribution) and the agent half (head sampler, the
degradation-tier state machine, the degraded span pipeline, and the
``agent.health()`` surface).
"""

import pytest

from repro.agent.agent import AgentConfig
from repro.agent.overload import (
    ADMIT,
    ADMIT_HEAD,
    DEGRADED_PROTOCOL,
    DROP,
    HeadSampler,
    OverloadController,
    Tier,
    sample_permille,
)
from repro.apps.runtime import HttpService, Response
from repro.kernel.ebpf import (
    BPFProgram,
    HookRegistry,
    PerfBuffer,
    TokenBucket,
)
from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction
from repro.network.topology import ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator

FLOW = FiveTuple("10.0.0.1", 40000, "10.0.0.2", 80)


# ---------------------------------------------------------------------------
# Token bucket + firing-time throttling


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [
            True, True, True, False]
        assert bucket.admitted == 3
        assert bucket.throttled == 1

    def test_refill_from_sim_time(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        # 0.1 s at 10 tokens/s refills exactly one token.
        assert bucket.allow(0.1)
        assert not bucket.allow(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.allow(0.0)
        # A long idle period must not bank more than the burst.
        assert [bucket.allow(10.0) for _ in range(3)] == [
            True, True, False]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestFiringTimeThrottle:
    def _registry(self):
        sim = Simulator(seed=1)
        registry = HookRegistry(sim)
        fired = []
        program = BPFProgram("p", fired.append, instructions=100)
        program.rate_limiter = TokenBucket(rate=1.0, burst=2.0)
        registry.attach("sys_enter_read", program)
        return sim, registry, program, fired

    def test_throttled_firings_skip_the_handler(self):
        sim, registry, program, fired = self._registry()
        for _ in range(5):
            registry.fire("sys_enter_read", "ctx")
        assert len(fired) == 2  # burst admitted, rest refused
        assert program.throttled == 3
        assert registry.total_throttled == 3
        assert registry.total_firings == 5

    def test_throttled_cost_is_the_early_exit(self):
        sim, registry, program, fired = self._registry()
        admitted_cost = registry.fire("sys_enter_read", "ctx")
        registry.fire("sys_enter_read", "ctx")
        throttled_cost = registry.fire("sys_enter_read", "ctx")
        assert throttled_cost < admitted_cost
        assert throttled_cost > 0.0  # the refused probe is not free

    def test_total_cost_accumulates(self):
        sim, registry, program, fired = self._registry()
        for _ in range(3):
            registry.fire("sys_enter_read", "ctx")
        assert registry.total_cost_ns > 0.0


# ---------------------------------------------------------------------------
# Perf buffer pressure accounting


class TestPerfBufferAccounting:
    def test_high_water_and_drop_attribution(self):
        sim = Simulator(seed=1)
        perf = PerfBuffer(sim, capacity=4)
        for index in range(4):
            assert perf.submit(index, "read")
        assert perf.high_water == 4
        assert perf.occupancy == 1.0
        assert not perf.submit(99, "read")
        assert not perf.submit(98, "write")
        assert not perf.submit(97, "write")
        assert perf.dropped == 3
        assert perf.drops_by_source == {"read": 1, "write": 2}
        perf.drain()
        assert perf.occupancy == 0.0
        assert perf.high_water == 4  # the mark is a maximum, not a gauge


# ---------------------------------------------------------------------------
# Head sampler: trace-atomic admission


class TestHeadSampler:
    def test_rate_one_admits_everything(self):
        sampler = HeadSampler(rate=1.0)
        assert sampler.admit(1, FLOW, Direction.EGRESS) == ADMIT_HEAD
        assert sampler.admit(1, FLOW, Direction.EGRESS) == ADMIT
        assert sampler.admit(1, FLOW, Direction.INGRESS) == ADMIT_HEAD
        assert sampler.exchanges_kept == 1

    def test_rate_zero_drops_new_exchanges(self):
        sampler = HeadSampler(rate=0.0)
        assert sampler.admit(1, FLOW, Direction.EGRESS) == DROP
        assert sampler.admit(1, FLOW, Direction.INGRESS) == DROP
        assert sampler.exchanges_dropped == 1

    def test_decision_is_sticky_across_rate_changes(self):
        sampler = HeadSampler(rate=1.0)
        assert sampler.admit(1, FLOW, Direction.EGRESS) == ADMIT_HEAD
        sampler.rate = 0.0  # mid-exchange rate change
        # The response of the admitted exchange still flows...
        assert sampler.admit(1, FLOW, Direction.INGRESS) == ADMIT_HEAD
        # ...and only the next exchange (response→request flip) re-decides.
        assert sampler.admit(1, FLOW, Direction.EGRESS) == DROP
        assert sampler.admit(1, FLOW, Direction.INGRESS) == DROP

    def test_forced_off_preserves_inflight_exchange(self):
        sampler = HeadSampler(rate=1.0)
        assert sampler.admit(1, FLOW, Direction.EGRESS) == ADMIT_HEAD
        sampler.forced_off = True  # SHED_SPANS engages mid-exchange
        assert sampler.admit(1, FLOW, Direction.INGRESS) == ADMIT_HEAD
        assert sampler.admit(1, FLOW, Direction.EGRESS) == DROP

    def test_both_flow_endpoints_agree(self):
        client = HeadSampler(rate=0.5)
        server = HeadSampler(rate=0.5)
        directions = [Direction.EGRESS, Direction.INGRESS] * 8
        mirrored = [Direction.INGRESS, Direction.EGRESS] * 8
        kept_client = [client.admit(7, FLOW, d) != DROP
                       for d in directions]
        kept_server = [server.admit(9, FLOW.reversed(), d) != DROP
                       for d in mirrored]
        assert kept_client == kept_server

    def test_close_socket_releases_state(self):
        sampler = HeadSampler()
        sampler.admit(1, FLOW, Direction.EGRESS)
        assert sampler.open_sockets() == 1
        sampler.close_socket(1)
        assert sampler.open_sockets() == 0

    def test_sample_permille_is_stable_and_canonical(self):
        value = sample_permille(FLOW, 3)
        assert 0 <= value < 1000
        assert sample_permille(FLOW, 3) == value
        assert sample_permille(FLOW.reversed(), 3) == value
        assert sample_permille(FLOW, 4) != value or True  # may collide


# ---------------------------------------------------------------------------
# The degradation-tier state machine


def make_controller(**kwargs):
    sampler = HeadSampler()
    defaults = dict(high_water=0.75, low_water=0.25, hysteresis_ticks=3,
                    min_rate=0.25, initial_rate=0.5)
    defaults.update(kwargs)
    return sampler, OverloadController(sampler, **defaults)


class TestOverloadController:
    def test_escalation_ladder_order(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.9, 0)
        assert ctl.tier is Tier.SHED_PAYLOAD
        ctl.tick(0.2, 0.9, 0)
        assert ctl.tier is Tier.HEAD_SAMPLE
        assert sampler.rate == 0.5
        ctl.tick(0.3, 0.9, 0)  # AIMD halve: 0.5 -> 0.25 (the floor)
        assert ctl.tier is Tier.HEAD_SAMPLE
        assert sampler.rate == 0.25
        ctl.tick(0.4, 0.9, 0)  # below the floor: shed spans entirely
        assert ctl.tier is Tier.SHED_SPANS
        assert sampler.forced_off
        names = [t[2] for t in ctl.transitions]
        assert names == ["SHED_PAYLOAD", "HEAD_SAMPLE", "SHED_SPANS"]

    def test_drops_alone_escalate(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.0, 5)  # occupancy fine, but records were lost
        assert ctl.tier is Tier.SHED_PAYLOAD

    def test_recovery_requires_hysteresis(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.9, 0)
        assert ctl.tier is Tier.SHED_PAYLOAD
        ctl.tick(0.2, 0.0, 0)
        ctl.tick(0.3, 0.0, 0)
        assert ctl.tier is Tier.SHED_PAYLOAD  # 2 healthy ticks < 3
        ctl.tick(0.4, 0.0, 0)
        assert ctl.tier is Tier.FULL

    def test_pressure_resets_hysteresis_credit(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.9, 0)
        ctl.tick(0.2, 0.0, 0)
        ctl.tick(0.3, 0.0, 0)
        ctl.tick(0.4, 0.9, 0)  # pressure returns: credit wiped, tier down
        assert ctl.tier is Tier.HEAD_SAMPLE
        ctl.tick(0.5, 0.0, 0)
        ctl.tick(0.6, 0.0, 0)
        assert ctl.tier is Tier.HEAD_SAMPLE

    def test_middle_zone_holds_tier_and_credit(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.9, 0)
        ctl.tick(0.2, 0.0, 0)
        ctl.tick(0.3, 0.0, 0)
        ctl.tick(0.4, 0.5, 0)  # between the watermarks: nothing moves
        assert ctl.tier is Tier.SHED_PAYLOAD
        assert ctl.healthy_ticks == 2
        ctl.tick(0.5, 0.0, 0)
        assert ctl.tier is Tier.FULL

    def test_full_recovery_from_shed_spans(self):
        sampler, ctl = make_controller(hysteresis_ticks=1)
        for step in range(4):
            ctl.tick(0.1 * step, 1.0, 0)
        assert ctl.tier is Tier.SHED_SPANS
        now = 1.0
        for _ in range(12):
            ctl.tick(now, 0.0, 0)
            now += 0.1
        assert ctl.tier is Tier.FULL
        assert not sampler.forced_off
        assert sampler.rate == 1.0
        # The rate walked back up multiplicatively, never past 1.0.
        rates = [rate for _, rate in ctl.rate_changes]
        assert all(rate <= 1.0 for rate in rates)

    def test_transition_log_is_deterministic(self):
        def run():
            sampler, ctl = make_controller()
            pattern = [(0.9, 0), (0.9, 0), (0.0, 0), (0.5, 0), (0.9, 3),
                       (0.0, 0), (0.0, 0), (0.0, 0), (0.0, 0), (0.0, 0)]
            for step, (occupancy, drops) in enumerate(pattern):
                ctl.tick(0.1 * step, occupancy, drops)
            return ctl.transitions, ctl.rate_changes

        assert run() == run()

    def test_validation(self):
        sampler = HeadSampler()
        with pytest.raises(ValueError):
            OverloadController(sampler, high_water=0.2, low_water=0.5)
        with pytest.raises(ValueError):
            OverloadController(sampler, hysteresis_ticks=0)

    def test_snapshot_surfaces_the_state(self):
        sampler, ctl = make_controller()
        ctl.tick(0.1, 0.9, 0)
        snapshot = ctl.snapshot()
        assert snapshot["tier"] == "SHED_PAYLOAD"
        assert snapshot["ticks"] == 1
        assert len(snapshot["transitions"]) == 1


# ---------------------------------------------------------------------------
# Agent integration: degraded pipeline, program swap, health surface


def build_world(**config_kwargs):
    sim = Simulator(seed=42)
    builder = ClusterBuilder(node_count=2)
    client_pod = builder.add_pod(0, "client")
    service_pod = builder.add_pod(1, "svc")
    cluster = builder.build()
    Network(sim, cluster)
    server = DeepFlowServer()
    config = AgentConfig(**config_kwargs)
    agents = []
    for node in cluster.nodes:
        agent = server.new_agent(node.kernel, node=node,
                                 config=AgentConfig(**config_kwargs))
        agent.deploy(mode="full")
        agents.append(agent)
    service = HttpService("svc", service_pod.node, 9000, pod=service_pod,
                          service_time=0.001)

    @service.route("/")
    def home(worker, request):
        yield from worker.work(0.0001)
        return Response(200, body=b"ok")

    service.start()
    return sim, server, agents, client_pod, service_pod


def drive_requests(sim, client_pod, service_pod, count=6):
    from repro.apps.loadgen import LoadGenerator
    generator = LoadGenerator(client_pod.node, service_pod.ip, 9000,
                              rate=count / 0.5, duration=0.5,
                              connections=1, pod=client_pod, name="c")
    return sim.run_process(generator.run())


class TestAgentDegradedPipeline:
    def test_shed_payload_still_builds_linked_spans(self):
        sim, server, agents, client_pod, service_pod = build_world()
        for agent in agents:
            # Force SHED_PAYLOAD before any traffic.
            agent.overload.tick(sim.now, 1.0, 0)
            assert agent.overload.tier is Tier.SHED_PAYLOAD
        report = drive_requests(sim, client_pod, service_pod)
        assert report.errors == 0
        for agent in agents:
            agent.flush()
        spans = [span for span in server.store.all_spans()
                 if span.kind.name == "SYSCALL"]
        assert spans
        assert all(span.protocol == DEGRADED_PROTOCOL for span in spans)
        # Association survived payload loss: no error sessions, and the
        # request/response pairing matched every exchange.
        assert all(not span.tags.get("error.kind") for span in spans)
        svc_agent = agents[1]
        assert svc_agent.stats["payload_shed_records"] > 0
        assert svc_agent.stats["degraded_messages"] > 0
        assert svc_agent.aggregator.degraded > 0

    def test_tier_change_swaps_bytecode_and_tax(self):
        sim, server, agents, client_pod, service_pod = build_world()
        agent = agents[0]
        exit_program = agent._exit_programs[0]
        full_instructions = exit_program.effective_instructions
        full_tax = exit_program.system_tax_ns
        agent.overload.tick(0.1, 1.0, 0)
        assert exit_program.effective_instructions < full_instructions
        assert exit_program.system_tax_ns < full_tax
        assert (exit_program.effective_instructions
                == agent.config.trace_instructions)
        # Recovery restores the full program.
        for step in range(agent.config.overload_hysteresis_ticks):
            agent.overload.tick(0.2 + 0.1 * step, 0.0, 0)
        assert exit_program.effective_instructions == full_instructions
        assert exit_program.system_tax_ns == full_tax

    def test_protection_disabled_is_the_seed_behavior(self):
        sim, server, agents, client_pod, service_pod = build_world(
            overload_protection=False)
        assert all(agent.overload is None for agent in agents)
        report = drive_requests(sim, client_pod, service_pod)
        assert report.errors == 0
        for agent in agents:
            agent.flush()
        spans = [span for span in server.store.all_spans()
                 if span.kind.name == "SYSCALL"]
        assert spans
        assert all(span.protocol != DEGRADED_PROTOCOL for span in spans)
        health = agents[0].health()
        assert health["protection"] is False
        assert health["tier"] == "FULL"

    def test_health_and_hook_stats_surfaces(self):
        sim, server, agents, client_pod, service_pod = build_world()
        drive_requests(sim, client_pod, service_pod)
        for agent in agents:
            agent.flush()
        agent = agents[1]
        health = agent.health()
        assert health["protection"] is True
        assert health["tier"] == "FULL"
        assert health["perf"]["capacity"] == 65536
        assert health["perf"]["high_water"] >= 1
        assert health["perf"]["submitted"] > 0
        assert "records_admitted" in health
        stats = agent.hook_stats()
        assert stats["throttled"] == 0
        assert stats["perf"]["dropped"] == 0
        assert all("throttled" in entry for entry in stats["programs"])

    def test_hook_rate_limit_throttles_firings(self):
        sim, server, agents, client_pod, service_pod = build_world(
            hook_rate_limit=4.0, hook_rate_burst=2.0)
        drive_requests(sim, client_pod, service_pod, count=20)
        for agent in agents:
            agent.flush()
        stats = agents[1].hook_stats()
        assert stats["throttled"] > 0
        assert agents[1].health()["throttled"] == stats["throttled"]
