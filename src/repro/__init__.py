"""repro — a Python reproduction of DeepFlow (SIGCOMM 2023).

Network-centric, zero-code distributed tracing: eBPF-style syscall
instrumentation, implicit context propagation, and tag-based correlation,
rebuilt on a deterministic simulated substrate.

The most common entry points are re-exported here; see README.md for the
full tour and DESIGN.md for the substitution map against the paper.
"""

from repro.agent.agent import AgentConfig, DeepFlowAgent
from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.network.topology import Cluster, ClusterBuilder
from repro.network.transport import Network
from repro.server.server import DeepFlowServer
from repro.sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "AgentConfig",
    "Cluster",
    "ClusterBuilder",
    "DeepFlowAgent",
    "DeepFlowServer",
    "Network",
    "Simulator",
    "Span",
    "SpanKind",
    "SpanSide",
    "Trace",
    "__version__",
]
