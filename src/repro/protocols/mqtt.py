"""MQTT v3.1 — a parallel protocol keyed by packet identifier.

Real fixed-header framing (packet type in the high nibble, remaining-length
varint).  QoS-1 PUBLISH/PUBACK and SUBSCRIBE/SUBACK pairs carry a 16-bit
packet identifier which session aggregation uses for request/response
matching.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

CONNECT = 1
CONNACK = 2
PUBLISH = 3
PUBACK = 4
SUBSCRIBE = 8
SUBACK = 9
PINGREQ = 12
PINGRESP = 13

_REQUESTS = {CONNECT: "CONNECT", PUBLISH: "PUBLISH",
             SUBSCRIBE: "SUBSCRIBE", PINGREQ: "PINGREQ"}
_RESPONSES = {CONNACK: "CONNACK", PUBACK: "PUBACK", SUBACK: "SUBACK",
              PINGRESP: "PINGRESP"}


def _remaining_length(n: int) -> bytes:
    out = bytearray()
    while True:
        byte = n % 128
        n //= 128
        out.append(byte | (0x80 if n else 0))
        if not n:
            return bytes(out)


def _decode_remaining_length(data: bytes, offset: int) -> tuple[int, int]:
    value, multiplier = 0, 1
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) * multiplier
        if not byte & 0x80:
            return value, offset
        multiplier *= 128


def encode_publish(packet_id: int, topic: str, payload: bytes = b"",
                   qos: int = 1) -> bytes:
    """Serialize a PUBLISH packet (QoS 1 carries a packet id)."""
    topic_raw = topic.encode()
    variable = struct.pack(">H", len(topic_raw)) + topic_raw
    if qos > 0:
        variable += struct.pack(">H", packet_id)
    body = variable + payload
    fixed = bytes([(PUBLISH << 4) | (qos << 1)])
    return fixed + _remaining_length(len(body)) + body


def encode_puback(packet_id: int, success: bool = True) -> bytes:
    """Serialize a PUBACK packet (return code nonzero signals failure)."""
    body = struct.pack(">HB", packet_id, 0 if success else 0x80)
    return bytes([PUBACK << 4]) + _remaining_length(len(body)) + body


def encode_subscribe(packet_id: int, topic: str) -> bytes:
    """Serialize a SUBSCRIBE packet."""
    topic_raw = topic.encode()
    body = struct.pack(">H", packet_id)
    body += struct.pack(">H", len(topic_raw)) + topic_raw + b"\x01"
    return bytes([(SUBSCRIBE << 4) | 0x02]) + _remaining_length(
        len(body)) + body


def encode_suback(packet_id: int, granted_qos: int = 1) -> bytes:
    """Serialize a SUBACK packet."""
    body = struct.pack(">HB", packet_id, granted_qos)
    return bytes([SUBACK << 4]) + _remaining_length(len(body)) + body


class MqttSpec(ProtocolSpec):
    """MQTT inference + parsing."""
    name = "mqtt"
    multiplexed = True
    default_port = 1883

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 2:
            return False
        packet_type = payload[0] >> 4
        if packet_type not in (_REQUESTS | _RESPONSES):
            return False
        try:
            remaining, offset = _decode_remaining_length(payload, 1)
        except ValueError:
            return False
        return offset + remaining == len(payload)

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        try:
            return self._parse(payload)
        except (ValueError, struct.error, IndexError):
            return None  # truncated or malformed packet

    def _parse(self, payload: bytes) -> Optional[ParsedMessage]:
        if len(payload) < 2:
            return None
        packet_type = payload[0] >> 4
        qos = (payload[0] >> 1) & 0x3
        remaining, offset = _decode_remaining_length(payload, 1)
        body = payload[offset:offset + remaining]
        if packet_type == PUBLISH:
            topic_len = struct.unpack(">H", body[:2])[0]
            topic = body[2:2 + topic_len].decode("utf-8", errors="replace")
            packet_id = None
            if qos > 0:
                packet_id = struct.unpack(
                    ">H", body[2 + topic_len:4 + topic_len])[0]
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation="PUBLISH",
                resource=topic,
                stream_id=packet_id,
                size=len(payload),
            )
        if packet_type == SUBSCRIBE:
            packet_id = struct.unpack(">H", body[:2])[0]
            topic_len = struct.unpack(">H", body[2:4])[0]
            topic = body[4:4 + topic_len].decode("utf-8", errors="replace")
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation="SUBSCRIBE",
                resource=topic,
                stream_id=packet_id,
                size=len(payload),
            )
        if packet_type in (PUBACK, SUBACK):
            packet_id = struct.unpack(">H", body[:2])[0]
            failed = len(body) > 2 and body[2] >= 0x80
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                operation=_RESPONSES[packet_type],
                status="error" if failed else "ok",
                stream_id=packet_id,
                size=len(payload),
            )
        if packet_type in _REQUESTS:
            return ParsedMessage(
                protocol=self.name, msg_type=MessageType.REQUEST,
                operation=_REQUESTS[packet_type], size=len(payload))
        if packet_type in _RESPONSES:
            return ParsedMessage(
                protocol=self.name, msg_type=MessageType.RESPONSE,
                operation=_RESPONSES[packet_type], status="ok",
                size=len(payload))
        return None
