"""HTTP/2 (RFC 7540) — frames with stream identifiers.

A *parallel* protocol: many requests multiplex one connection, and session
aggregation pairs request and response by the embedded stream identifier
(§3.3.1: "stream identifiers in HTTP/2 headers").

The frame layout is the real 9-byte RFC 7540 header (length, type, flags,
stream id).  One documented simplification: the header block inside a
HEADERS frame uses a plain ``name: value`` text encoding instead of HPACK —
HPACK is pure compression and plays no role in any mechanism the paper
relies on.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

FRAME_DATA = 0x0
FRAME_HEADERS = 0x1

FLAG_END_STREAM = 0x1
FLAG_END_HEADERS = 0x4


def _frame(frame_type: int, flags: int, stream_id: int,
           payload: bytes) -> bytes:
    header = struct.pack(">I", len(payload))[1:]  # 24-bit length
    header += struct.pack(">BBI", frame_type, flags, stream_id & 0x7FFFFFFF)
    return header + payload


def _headers_block(headers: dict[str, str]) -> bytes:
    return "\r\n".join(f"{k}: {v}" for k, v in headers.items()).encode()


def _parse_headers_block(block: bytes) -> dict[str, str]:
    headers = {}
    for line in block.decode("utf-8", errors="replace").split("\r\n"):
        if ":" in line[1:]:  # allow pseudo-headers starting with ':'
            key, _, value = line[1:].partition(":")
            headers[(line[0] + key).strip().lower()] = value.strip()
    return headers


def encode_request(method: str, path: str, stream_id: int,
                   headers: Optional[dict[str, str]] = None,
                   body: bytes = b"", with_preface: bool = False) -> bytes:
    """Serialize one HTTP/2 request (HEADERS [+ DATA]) on *stream_id*."""
    merged = {":method": method, ":path": path, ":scheme": "http"}
    merged.update(headers or {})
    flags = FLAG_END_HEADERS | (0 if body else FLAG_END_STREAM)
    out = _frame(FRAME_HEADERS, flags, stream_id, _headers_block(merged))
    if body:
        out += _frame(FRAME_DATA, FLAG_END_STREAM, stream_id, body)
    return (PREFACE + out) if with_preface else out


def encode_response(status_code: int, stream_id: int,
                    headers: Optional[dict[str, str]] = None,
                    body: bytes = b"") -> bytes:
    """Serialize one HTTP/2 response on *stream_id*."""
    merged = {":status": str(status_code)}
    merged.update(headers or {})
    flags = FLAG_END_HEADERS | (0 if body else FLAG_END_STREAM)
    out = _frame(FRAME_HEADERS, flags, stream_id, _headers_block(merged))
    if body:
        out += _frame(FRAME_DATA, FLAG_END_STREAM, stream_id, body)
    return out


class Http2Spec(ProtocolSpec):
    """HTTP/2 inference + parsing."""
    name = "http2"
    multiplexed = True
    default_port = 8443

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if payload.startswith(PREFACE):
            return True
        return self._valid_frame_sequence(payload)

    @staticmethod
    def _valid_frame_sequence(payload: bytes) -> bool:
        """True iff the payload is exactly a sequence of known frames."""
        offset = 0
        frames = 0
        while offset < len(payload):
            if len(payload) - offset < 9:
                return False
            length = int.from_bytes(payload[offset:offset + 3], "big")
            frame_type = payload[offset + 3]
            if frame_type not in (FRAME_DATA, FRAME_HEADERS):
                return False
            offset += 9 + length
            frames += 1
        return frames >= 1 and offset == len(payload)

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        data = payload
        if data.startswith(PREFACE):
            data = data[len(PREFACE):]
        if len(data) < 9:
            return None
        length = int.from_bytes(data[:3], "big")
        frame_type, _flags, stream_id = struct.unpack(">BBI", data[3:9])
        stream_id &= 0x7FFFFFFF
        if frame_type != FRAME_HEADERS:
            return None  # continuation/data-only segment
        block = data[9:9 + length]
        headers = _parse_headers_block(block)
        if ":status" in headers:
            if not headers[":status"].isdigit():
                return None  # corrupted header block
            code = int(headers[":status"])
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                status="ok" if code < 400 else "error",
                status_code=code,
                stream_id=stream_id,
                headers=headers,
                size=len(payload),
            )
        if ":method" in headers:
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation=headers[":method"],
                resource=headers.get(":path", ""),
                stream_id=stream_id,
                headers=headers,
                size=len(payload),
            )
        return None
