"""Redis RESP (REdis Serialization Protocol) — a pipeline protocol.

Requests are arrays of bulk strings; responses are simple strings, errors,
integers, or bulk strings.  Order within the connection pairs request and
response (§3.3.1, pipeline matching).
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

COMMANDS = ("GET", "SET", "DEL", "INCR", "EXPIRE", "HGET", "HSET",
            "LPUSH", "RPOP", "PING", "MGET", "EXISTS")


def encode_request(*args: str) -> bytes:
    """Serialize a command as a RESP array of bulk strings."""
    out = f"*{len(args)}\r\n".encode()
    for arg in args:
        raw = arg.encode()
        out += b"$" + str(len(raw)).encode() + b"\r\n" + raw + b"\r\n"
    return out


def encode_response(value: Optional[str] = None, *, error: str = "",
                    integer: Optional[int] = None) -> bytes:
    """Serialize a RESP reply: +OK, -ERR ..., :n, or a bulk string."""
    if error:
        return f"-ERR {error}\r\n".encode()
    if integer is not None:
        return f":{integer}\r\n".encode()
    if value is None:
        return b"$-1\r\n"  # null bulk string
    raw = value.encode()
    if "\r" not in value and "\n" not in value and len(value) < 32:
        return b"+" + raw + b"\r\n"
    return b"$" + str(len(raw)).encode() + b"\r\n" + raw + b"\r\n"


class RedisSpec(ProtocolSpec):
    """RESP inference + parsing."""
    name = "redis"
    multiplexed = False
    default_port = 6379

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if not payload or payload[:1] not in b"*+-:$":
            return False
        if payload.startswith(b"*"):
            # Must look like an array header followed by a bulk string.
            return b"\r\n$" in payload[:16]
        return b"\r\n" in payload

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if not payload:
            return None
        first = payload[:1]
        if first == b"*":
            return self._parse_request(payload)
        if first in b"+-:$":
            return self._parse_response(payload)
        return None

    def _parse_request(self, payload: bytes) -> Optional[ParsedMessage]:
        try:
            parts = self._decode_array(payload)
        except ValueError:
            return None
        if not parts:
            return None
        command = parts[0].upper()
        resource = parts[1] if len(parts) > 1 else ""
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.REQUEST,
            operation=command,
            resource=resource,
            size=len(payload),
        )

    def _parse_response(self, payload: bytes) -> ParsedMessage:
        kind = payload[:1]
        status = "error" if kind == b"-" else "ok"
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.RESPONSE,
            status=status,
            size=len(payload),
        )

    @staticmethod
    def _decode_array(payload: bytes) -> list[str]:
        lines = payload.split(b"\r\n")
        if not lines or not lines[0].startswith(b"*"):
            raise ValueError("not a RESP array")
        count = int(lines[0][1:])
        parts: list[str] = []
        index = 1
        for _ in range(count):
            if (index + 1 >= len(lines)
                    or not lines[index].startswith(b"$")):
                raise ValueError("malformed bulk string header")
            parts.append(lines[index + 1].decode("utf-8", errors="replace"))
            index += 2
        return parts


def decode_request(payload: bytes) -> list[str]:
    """Decode a RESP array request into its argument list."""
    return RedisSpec._decode_array(payload)


def decode_response(payload: bytes) -> Optional[str]:
    """Decode a simple/bulk string response value (None for null/error)."""
    if payload.startswith(b"+"):
        return payload[1:].split(b"\r\n")[0].decode()
    if payload.startswith(b":"):
        return payload[1:].split(b"\r\n")[0].decode()
    if payload.startswith(b"$-1"):
        return None
    if payload.startswith(b"$"):
        body = payload.split(b"\r\n", 1)[1]
        return body.rsplit(b"\r\n", 1)[0].decode()
    return None
