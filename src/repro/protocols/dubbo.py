"""Apache Dubbo RPC protocol — a parallel protocol keyed by request id.

Real 16-byte header: magic 0xdabb, flag byte (request bit, two-way bit),
status byte, 64-bit request id, 32-bit body length.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

MAGIC = 0xDABB
FLAG_REQUEST = 0x80
FLAG_TWOWAY = 0x40

STATUS_OK = 20
STATUS_SERVER_ERROR = 80
STATUS_TIMEOUT = 31


def encode_request(request_id: int, service: str, method: str) -> bytes:
    """Serialize a Dubbo two-way request."""
    body = f"{service}#{method}".encode()
    header = struct.pack(">HBBQI", MAGIC, FLAG_REQUEST | FLAG_TWOWAY, 0,
                         request_id, len(body))
    return header + body


def encode_response(request_id: int, status: int = STATUS_OK,
                    body: bytes = b"") -> bytes:
    """Serialize a Dubbo response."""
    header = struct.pack(">HBBQI", MAGIC, 0, status, request_id, len(body))
    return header + body


class DubboSpec(ProtocolSpec):
    """Dubbo inference + parsing."""
    name = "dubbo"
    multiplexed = True
    default_port = 20880

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        return len(payload) >= 16 and payload[:2] == b"\xda\xbb"

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if len(payload) < 16 or payload[:2] != b"\xda\xbb":
            return None
        _magic, flags, status, request_id, body_len = struct.unpack(
            ">HBBQI", payload[:16])
        body = payload[16:16 + body_len]
        if flags & FLAG_REQUEST:
            service, _, method = body.decode(
                "utf-8", errors="replace").partition("#")
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation=method or "invoke",
                resource=service,
                stream_id=request_id,
                size=len(payload),
            )
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.RESPONSE,
            status="ok" if status == STATUS_OK else "error",
            status_code=status,
            stream_id=request_id,
            size=len(payload),
        )
