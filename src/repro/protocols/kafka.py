"""Kafka wire protocol — a parallel protocol keyed by correlation id.

Real framing: 4-byte size prefix; requests carry api_key, api_version,
correlation_id, and a client-id string; responses echo the correlation id.
Session aggregation pairs them by that id (§3.3.1, parallel protocols).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

API_PRODUCE = 0
API_FETCH = 1
API_METADATA = 3

_API_NAMES = {API_PRODUCE: "Produce", API_FETCH: "Fetch",
              API_METADATA: "Metadata"}

#: Error codes (subset).
ERROR_NONE = 0
ERROR_UNKNOWN_TOPIC = 3
ERROR_REQUEST_TIMED_OUT = 7


def encode_request(api_key: int, correlation_id: int, topic: str,
                   client_id: str = "repro") -> bytes:
    """Serialize a Kafka request frame."""
    client = client_id.encode()
    topic_raw = topic.encode()
    body = struct.pack(">hhih", api_key, 1, correlation_id, len(client))
    body += client
    body += struct.pack(">h", len(topic_raw)) + topic_raw
    return struct.pack(">i", len(body)) + body


def encode_response(correlation_id: int,
                    error_code: int = ERROR_NONE) -> bytes:
    """Serialize a Kafka response frame."""
    body = struct.pack(">ih", correlation_id, error_code)
    return struct.pack(">i", len(body)) + body


class KafkaSpec(ProtocolSpec):
    """Kafka inference + parsing."""
    name = "kafka"
    multiplexed = True
    default_port = 9092

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 8:
            return False
        size = struct.unpack(">i", payload[:4])[0]
        if size != len(payload) - 4:
            return False
        # Requests: plausible api_key/api_version at the front of the body.
        api_key, api_version = struct.unpack(">hh", payload[4:8])
        if (0 <= api_key <= 67 and 0 <= api_version <= 15
                and len(payload) >= 14):
            return True
        # Responses: correlation id only; size check must carry the weight.
        return size >= 6

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if len(payload) < 10:
            return None
        size = struct.unpack(">i", payload[:4])[0]
        if size != len(payload) - 4:
            return None
        body = payload[4:]
        # Try request layout first.
        if len(body) >= 10:
            api_key, api_version, correlation_id, client_len = struct.unpack(
                ">hhih", body[:10])
            if (0 <= api_key <= 67 and 0 <= api_version <= 15
                    and 0 <= client_len <= 255
                    and 10 + client_len + 2 <= len(body)):
                offset = 10 + client_len
                topic_len = struct.unpack(">h", body[offset:offset + 2])[0]
                topic = body[offset + 2:offset + 2 + topic_len].decode(
                    "utf-8", errors="replace")
                return ParsedMessage(
                    protocol=self.name,
                    msg_type=MessageType.REQUEST,
                    operation=_API_NAMES.get(api_key, f"Api{api_key}"),
                    resource=topic,
                    stream_id=correlation_id,
                    size=len(payload),
                )
        # Response layout: correlation id + error code.
        if len(body) >= 6:
            correlation_id, error_code = struct.unpack(">ih", body[:6])
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                status="ok" if error_code == ERROR_NONE else "error",
                status_code=error_code,
                stream_id=correlation_id,
                size=len(payload),
            )
        return None
