"""MySQL client/server protocol — a pipeline protocol.

Real packet framing: 3-byte little-endian payload length + 1-byte sequence
id.  Requests are COM_QUERY (0x03) commands; responses are OK (0x00),
ERR (0xff), or a result-set header.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

COM_QUERY = 0x03
COM_PING = 0x0E

OK_HEADER = 0x00
ERR_HEADER = 0xFF


def _packet(seq: int, payload: bytes) -> bytes:
    return struct.pack("<I", len(payload))[:3] + bytes([seq]) + payload


def encode_query(sql: str) -> bytes:
    """Serialize a COM_QUERY request packet."""
    return _packet(0, bytes([COM_QUERY]) + sql.encode("utf-8"))


def encode_ok(affected_rows: int = 0) -> bytes:
    """Serialize an OK response packet."""
    return _packet(1, bytes([OK_HEADER, affected_rows & 0xFF, 0, 2, 0]))


def encode_error(code: int = 1064, message: str = "syntax error") -> bytes:
    """Serialize an ERR response packet."""
    payload = bytes([ERR_HEADER]) + struct.pack("<H", code)
    payload += b"#42000" + message.encode("utf-8")
    return _packet(1, payload)


def encode_resultset(column_count: int = 1, rows: int = 1) -> bytes:
    """Serialize a (simplified, single-packet) result-set header."""
    payload = bytes([column_count & 0xFF]) + struct.pack("<H", rows)
    return _packet(1, payload)


def _table_of(sql: str) -> str:
    tokens = sql.replace(",", " ").split()
    uppers = [token.upper() for token in tokens]
    for keyword in ("FROM", "INTO", "UPDATE", "TABLE", "JOIN"):
        if keyword in uppers:
            index = uppers.index(keyword)
            if index + 1 < len(tokens):
                return tokens[index + 1].strip("`;")
    return ""


class MysqlSpec(ProtocolSpec):
    """MySQL inference + parsing."""
    name = "mysql"
    multiplexed = False
    default_port = 3306

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 5:
            return False
        length = int.from_bytes(payload[:3], "little")
        seq = payload[3]
        if length == 0 or length + 4 != len(payload):
            return False
        command = payload[4]
        if seq == 0:
            return command in (COM_QUERY, COM_PING)
        return command in (OK_HEADER, ERR_HEADER) or 1 <= command <= 250

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if len(payload) < 5:
            return None
        length = int.from_bytes(payload[:3], "little")
        if length + 4 != len(payload):
            return None
        seq = payload[3]
        body = payload[4:]
        if seq == 0 and body[0] == COM_QUERY:
            sql = body[1:].decode("utf-8", errors="replace")
            operation = sql.split(" ", 1)[0].upper() if sql else "QUERY"
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation=operation,
                resource=_table_of(sql),
                size=len(payload),
            )
        if seq == 0 and body[0] == COM_PING:
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation="PING",
                size=len(payload),
            )
        if seq >= 1:
            if body[0] == ERR_HEADER:
                # A self-consistent packet can still truncate the ERR
                # code (length field counts only what is really there).
                code = (struct.unpack("<H", body[1:3])[0]
                        if len(body) >= 3 else None)
                return ParsedMessage(
                    protocol=self.name,
                    msg_type=MessageType.RESPONSE,
                    status="error",
                    status_code=code,
                    size=len(payload),
                )
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                status="ok",
                size=len(payload),
            )
        return None
