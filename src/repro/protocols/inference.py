"""Per-connection protocol inference (Figure 6, phase 2).

The agent "iterates through the common protocol specifications and the
optional user-supplied protocol specifications, executing a one-time
protocol inference for each newly established connection" (§3.3.1).

Inference is sticky: once a connection is classified, subsequent payloads
are parsed with the chosen spec only.  Payloads seen before a successful
classification (e.g. a body continuation first observed mid-connection)
stay unclassified and surface as opaque messages.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.protocols.amqp import AmqpSpec
from repro.protocols.base import ParsedMessage, ProtocolSpec
from repro.protocols.dns import DnsSpec
from repro.protocols.dubbo import DubboSpec
from repro.protocols.grpc import GrpcSpec
from repro.protocols.http1 import Http1Spec
from repro.protocols.http2 import Http2Spec
from repro.protocols.kafka import KafkaSpec
from repro.protocols.mqtt import MqttSpec
from repro.protocols.mysql import MysqlSpec
from repro.protocols.redis import RedisSpec
from repro.protocols.tls import TlsSpec

#: Common specs, tried in order.  More-distinctive formats come first so
#: that permissive ones (HTTP/1's text heuristic) cannot shadow them;
#: gRPC precedes plain HTTP/2 because every gRPC exchange is also valid
#: HTTP/2.
DEFAULT_SPECS: tuple[ProtocolSpec, ...] = (
    GrpcSpec(),
    Http2Spec(),
    DubboSpec(),
    AmqpSpec(),
    TlsSpec(),
    DnsSpec(),
    MysqlSpec(),
    KafkaSpec(),
    MqttSpec(),
    RedisSpec(),
    Http1Spec(),
)


#: Bound on the memoized parse table; on overflow the table is cleared
#: (cheap, and steady-state workloads re-warm it within one batch).
PARSE_CACHE_MAX = 4096

#: Distinguishes "cached None" (a continuation) from "not cached".
_MISS = object()


class ProtocolInferenceEngine:
    """Sticky per-connection protocol classification + parsing.

    Parsing is memoized: ``ProtocolSpec.parse`` is a pure function of the
    payload bytes, and production traffic repeats the same small message
    set (health checks, identical requests), so a bounded
    ``(protocol, payload) → ParsedMessage`` table turns the steady-state
    parse into one dict hit.  Cached :class:`ParsedMessage` objects are
    shared between hits and must be treated as immutable — nothing in the
    pipeline mutates a parsed message after construction.
    """

    def __init__(self, user_specs: Optional[Iterable[ProtocolSpec]] = None,
                 specs: Optional[Iterable[ProtocolSpec]] = None):
        base = tuple(specs) if specs is not None else DEFAULT_SPECS
        self._specs: tuple[ProtocolSpec, ...] = (
            tuple(user_specs or ()) + base)
        self._by_connection: dict[int, ProtocolSpec] = {}
        self._parse_cache: dict[tuple[str, bytes], object] = {}
        self.inference_attempts = 0
        self.parse_cache_hits = 0

    def spec_for(self, socket_id: int) -> Optional[ProtocolSpec]:
        """The spec previously inferred for this connection, if any."""
        return self._by_connection.get(socket_id)

    def classify(self, socket_id: int,
                 payload: bytes) -> Optional[ProtocolSpec]:
        """One-time inference for a connection; sticky once successful."""
        spec = self._by_connection.get(socket_id)
        if spec is not None:
            return spec
        self.inference_attempts += 1
        for candidate in self._specs:
            if candidate.infer(payload):
                self._by_connection[socket_id] = candidate
                return candidate
        return None

    def parse(self, socket_id: int,
              payload: bytes) -> Optional[ParsedMessage]:
        """Classify (if needed) then parse; None for continuations."""
        if not payload:
            return None
        spec = self._by_connection.get(socket_id)
        if spec is None:
            spec = self.classify(socket_id, payload)
            if spec is None:
                return None
        cache_key = (spec.name, payload)
        parsed = self._parse_cache.get(cache_key, _MISS)
        if parsed is not _MISS:
            self.parse_cache_hits += 1
            return parsed
        parsed = spec.parse(payload)
        if len(self._parse_cache) >= PARSE_CACHE_MAX:
            self._parse_cache.clear()
        self._parse_cache[cache_key] = parsed
        return parsed

    def forget(self, socket_id: int) -> None:
        """Drop the classification (connection closed)."""
        self._by_connection.pop(socket_id, None)
