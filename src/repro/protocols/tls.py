"""TLS record wrapping — the opaque-payload case motivating uprobes.

When a component speaks TLS, the syscall layer sees only ciphertext and
protocol inference fails; DeepFlow's uprobe extension on ``ssl_read`` /
``ssl_write`` recovers the plaintext before encryption (§3.2.1).  We model
a TLS 1.3 application-data record (type 0x17, version 0x0303) whose body
is reversibly obfuscated — enough to defeat every other parser while
letting tests confirm nothing leaks.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

RECORD_APPLICATION_DATA = 0x17
_XOR_KEY = 0x5A


def encrypt(plaintext: bytes) -> bytes:
    """Wrap *plaintext* in an application-data record (toy cipher)."""
    body = bytes(byte ^ _XOR_KEY for byte in plaintext)
    header = struct.pack(">BHH", RECORD_APPLICATION_DATA, 0x0303, len(body))
    return header + body


def decrypt(record: bytes) -> bytes:
    """Inverse of :func:`encrypt`."""
    record_type, _version, length = struct.unpack(">BHH", record[:5])
    if record_type != RECORD_APPLICATION_DATA:
        raise ValueError("not an application-data record")
    body = record[5:5 + length]
    return bytes(byte ^ _XOR_KEY for byte in body)


class TlsSpec(ProtocolSpec):
    """Recognizes TLS records but yields only an opaque marker message.

    The agent uses this to know the connection is encrypted (and to fall
    back to uprobe data when available) rather than to extract semantics.
    """

    name = "tls"
    multiplexed = False
    default_port = 443

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 5:
            return False
        record_type, version, length = struct.unpack(">BHH", payload[:5])
        return (record_type == RECORD_APPLICATION_DATA
                and version in (0x0301, 0x0302, 0x0303, 0x0304)
                and 5 + length == len(payload))

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if not self.infer(payload):
            return None
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.UNKNOWN,
            operation="encrypted",
            size=len(payload),
        )
