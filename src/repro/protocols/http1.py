"""HTTP/1.1 (RFC 7231) — the workhorse pipeline protocol.

Real textual wire format.  Headers are significant to the reproduction:
``X-Request-ID`` (inserted by Nginx/Envoy/HAProxy, used for cross-thread
intra-component association, §3.3.2), ``traceparent`` (W3C) and ``b3``
(Zipkin) for third-party span integration.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

METHODS = ("GET", "POST", "PUT", "DELETE", "HEAD", "PATCH", "OPTIONS")

_CRLF = "\r\n"


def encode_request(method: str, path: str,
                   headers: Optional[dict[str, str]] = None,
                   body: bytes = b"", host: str = "") -> bytes:
    """Serialize an HTTP/1.1 request."""
    lines = [f"{method} {path} HTTP/1.1"]
    merged = {"Host": host or "service"}
    merged.update(headers or {})
    merged["Content-Length"] = str(len(body))
    for key, value in merged.items():
        lines.append(f"{key}: {value}")
    head = _CRLF.join(lines) + _CRLF + _CRLF
    return head.encode("ascii") + body


def encode_response(status_code: int, reason: str = "",
                    headers: Optional[dict[str, str]] = None,
                    body: bytes = b"") -> bytes:
    """Serialize an HTTP/1.1 response."""
    reason = reason or _default_reason(status_code)
    lines = [f"HTTP/1.1 {status_code} {reason}"]
    merged = dict(headers or {})
    merged["Content-Length"] = str(len(body))
    for key, value in merged.items():
        lines.append(f"{key}: {value}")
    head = _CRLF.join(lines) + _CRLF + _CRLF
    return head.encode("ascii") + body


def _default_reason(status_code: int) -> str:
    return {
        200: "OK", 201: "Created", 204: "No Content",
        301: "Moved Permanently", 302: "Found",
        400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
        404: "Not Found", 408: "Request Timeout", 429: "Too Many Requests",
        500: "Internal Server Error", 502: "Bad Gateway",
        503: "Service Unavailable", 504: "Gateway Timeout",
    }.get(status_code, "Unknown")


def _parse_headers(block: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in block:
        if ":" not in line:
            continue
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return headers


class Http1Spec(ProtocolSpec):
    """HTTP/1.1 inference + parsing."""
    name = "http"
    multiplexed = False
    default_port = 80

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if payload.startswith(b"HTTP/1."):
            return True
        head = payload.split(b" ", 1)[0]
        try:
            return head.decode("ascii") in METHODS
        except UnicodeDecodeError:
            return False

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        try:
            head, _, _body = payload.partition(b"\r\n\r\n")
            lines = head.decode("ascii", errors="replace").split(_CRLF)
        except (ValueError, IndexError, UnicodeDecodeError):
            return None  # malformed payload
        if not lines or not lines[0]:
            return None
        start = lines[0]
        headers = _parse_headers(lines[1:])
        if start.startswith("HTTP/1."):
            parts = start.split(" ", 2)
            if len(parts) < 2 or not parts[1].isdigit():
                return None
            code = int(parts[1])
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                operation="",
                status="ok" if code < 400 else "error",
                status_code=code,
                headers=headers,
                size=len(payload),
            )
        parts = start.split(" ")
        if len(parts) != 3 or parts[0] not in METHODS:
            return None
        method, path, _version = parts
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.REQUEST,
            operation=method,
            resource=path,
            headers=headers,
            size=len(payload),
        )
