"""gRPC over HTTP/2 — the de-facto microservice RPC format.

Real layering: requests are HTTP/2 HEADERS (``:method: POST``, ``:path:
/package.Service/Method``, ``content-type: application/grpc``) followed
by a DATA frame carrying the 5-byte length-prefixed message; responses
end with a trailing HEADERS frame carrying ``grpc-status``.

A *parallel* protocol like its transport: stream ids pair requests with
responses.  The spec must be tried before plain HTTP/2 during inference —
a gRPC exchange is also valid HTTP/2, but carries richer semantics
(method/service split, grpc-status error codes).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols import http2
from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

CONTENT_TYPE = "application/grpc"

#: Canonical gRPC status codes (subset).
OK = 0
INVALID_ARGUMENT = 3
NOT_FOUND = 5
INTERNAL = 13
UNAVAILABLE = 14

_STATUS_NAMES = {OK: "OK", INVALID_ARGUMENT: "INVALID_ARGUMENT",
                 NOT_FOUND: "NOT_FOUND", INTERNAL: "INTERNAL",
                 UNAVAILABLE: "UNAVAILABLE"}


def _length_prefixed(message: bytes) -> bytes:
    return struct.pack(">BI", 0, len(message)) + message


def encode_request(service: str, method: str, stream_id: int,
                   message: bytes = b"",
                   with_preface: bool = False) -> bytes:
    """Serialize one unary gRPC request."""
    headers = {":method": "POST", ":path": f"/{service}/{method}",
               ":scheme": "http", "content-type": CONTENT_TYPE,
               "te": "trailers"}
    out = http2._frame(http2.FRAME_HEADERS, http2.FLAG_END_HEADERS,
                       stream_id, http2._headers_block(headers))
    out += http2._frame(http2.FRAME_DATA, 0, stream_id,
                        _length_prefixed(message))
    if with_preface:
        return http2.PREFACE + out
    return out


def encode_response(stream_id: int, grpc_status: int = OK,
                    message: bytes = b"") -> bytes:
    """Serialize one unary gRPC response with trailers."""
    initial = {":status": "200", "content-type": CONTENT_TYPE}
    out = http2._frame(http2.FRAME_HEADERS, http2.FLAG_END_HEADERS,
                       stream_id, http2._headers_block(initial))
    if message:
        out += http2._frame(http2.FRAME_DATA, 0, stream_id,
                            _length_prefixed(message))
    trailers = {"grpc-status": str(grpc_status),
                "grpc-message": _STATUS_NAMES.get(grpc_status, "")}
    out += http2._frame(http2.FRAME_HEADERS,
                        http2.FLAG_END_HEADERS | http2.FLAG_END_STREAM,
                        stream_id, http2._headers_block(trailers))
    return out


def _walk_header_blocks(payload: bytes) -> list[tuple[int, dict]]:
    """All (stream_id, headers) blocks in a frame sequence."""
    data = payload
    if data.startswith(http2.PREFACE):
        data = data[len(http2.PREFACE):]
    blocks = []
    offset = 0
    while offset + 9 <= len(data):
        length = int.from_bytes(data[offset:offset + 3], "big")
        frame_type, _flags, stream_id = struct.unpack(
            ">BBI", data[offset + 3:offset + 9])
        if offset + 9 + length > len(data):
            break
        if frame_type == http2.FRAME_HEADERS:
            blocks.append((stream_id & 0x7FFFFFFF,
                           http2._parse_headers_block(
                               data[offset + 9:offset + 9 + length])))
        offset += 9 + length
    return blocks


class GrpcSpec(ProtocolSpec):
    """gRPC-over-HTTP/2 inference + parsing."""
    name = "grpc"
    multiplexed = True
    default_port = 50051

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if not http2.Http2Spec().infer(payload):
            return False
        blocks = _walk_header_blocks(payload)
        return any(headers.get("content-type") == CONTENT_TYPE
                   for _stream, headers in blocks)

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        blocks = _walk_header_blocks(payload)
        if not blocks:
            return None
        stream_id, first = blocks[0]
        if first.get(":method") == "POST" and ":path" in first:
            path = first[":path"]
            service, _, method = path.lstrip("/").partition("/")
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation=method or "call",
                resource=service,
                stream_id=stream_id,
                headers=first,
                size=len(payload),
            )
        if ":status" in first:
            grpc_status = OK
            for _stream, headers in blocks:
                if "grpc-status" in headers:
                    value = headers["grpc-status"]
                    if value.isdigit():
                        grpc_status = int(value)
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                status="ok" if grpc_status == OK else "error",
                status_code=grpc_status,
                stream_id=stream_id,
                headers=first,
                size=len(payload),
            )
        return None
