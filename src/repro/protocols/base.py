"""Common protocol-parsing types.

A :class:`ParsedMessage` is the output of phase 2 of span construction
(Figure 6): the message type (request/response), the operation and resource
it names, the embedded distinguishing attribute used to pair requests with
responses on multiplexed connections, and any trace-context headers that a
third-party tracer (OpenTelemetry/Zipkin) smuggled along — which DeepFlow
extracts for third-party span integration (§3.3.2).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Optional


class MessageType(enum.Enum):
    """Request/response classification of a message."""
    REQUEST = "request"
    RESPONSE = "response"
    UNKNOWN = "unknown"


@dataclass
class ParsedMessage:
    """A protocol message recovered from raw payload bytes."""

    protocol: str
    msg_type: MessageType
    operation: str = ""          # verb: GET, QUERY, PUBLISH, ...
    resource: str = ""           # path, key, topic, domain, SQL table ...
    status: str = ""             # "ok" | "error" | "" (requests)
    status_code: Optional[int] = None
    stream_id: Optional[int] = None   # multiplex key, None for pipeline
    headers: dict[str, str] = field(default_factory=dict)
    size: int = 0

    @property
    def endpoint(self) -> str:
        """Human-readable endpoint label used in span names."""
        if self.resource:
            return f"{self.operation} {self.resource}".strip()
        return self.operation or self.protocol

    @property
    def x_request_id(self) -> Optional[str]:
        """The proxy-generated X-Request-ID, if present (§3.3.2)."""
        return self.headers.get("x-request-id")

    @property
    def traceparent(self) -> Optional[str]:
        """W3C trace-context header, if a third-party tracer added one."""
        return self.headers.get("traceparent")

    @property
    def b3(self) -> Optional[str]:
        """Zipkin B3 single-header propagation value, if present."""
        return self.headers.get("b3")

    @property
    def is_error(self) -> bool:
        """Whether this carries an error status."""
        return self.status == "error"


class ProtocolSpec(abc.ABC):
    """One protocol's inference + parsing logic.

    ``multiplexed`` distinguishes parallel protocols (match sessions by
    ``stream_id``) from pipeline protocols (match by order within the
    flow).
    """

    name: str = "unknown"
    multiplexed: bool = False
    #: Default TCP port convention, used only by examples for readability.
    default_port: Optional[int] = None

    @abc.abstractmethod
    def infer(self, payload: bytes) -> bool:
        """Does *payload* plausibly start a message of this protocol?"""

    @abc.abstractmethod
    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None if not parseable.

        Returning None signals a continuation segment (the tail of a
        message whose head was already parsed); the agent folds it into
        the preceding message data (§3.3.1: "we only process the first
        system call for a message").
        """

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ProtocolSpec {self.name}>"
