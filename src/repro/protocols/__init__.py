"""Application-layer protocol suite.

DeepFlow's agent performs one-time *protocol inference* per connection and
then parses payloads "with their original semantics" (§3.3.1, Figure 6,
phase 2).  This package provides genuine wire formats for the protocols the
paper names ([35, 36, 57, 59, 60, 106, 114]): each module offers
``encode_request``/``encode_response`` used by the workload applications
and a :class:`~repro.protocols.base.ProtocolSpec` used by the agent.

Protocols are classified as *pipeline* (order-preserving: HTTP/1.1, Redis,
MySQL) or *parallel* (multiplexed with embedded IDs: HTTP/2 stream ids,
DNS transaction ids, Kafka correlation ids, MQTT packet ids, Dubbo request
ids) — the distinction drives session aggregation (§3.3.1, phase 3).
"""

from repro.protocols.base import (
    MessageType,
    ParsedMessage,
    ProtocolSpec,
)
from repro.protocols.inference import (
    DEFAULT_SPECS,
    ProtocolInferenceEngine,
)

__all__ = [
    "DEFAULT_SPECS",
    "MessageType",
    "ParsedMessage",
    "ProtocolInferenceEngine",
    "ProtocolSpec",
]
