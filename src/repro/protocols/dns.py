"""DNS (RFC 1035) — the cluster-service protocol (CoreDNS in the survey).

Real wire format: 12-byte header, QNAME label encoding.  A *parallel*
protocol: the 16-bit transaction ID in the header pairs a response with its
request (§3.3.1: "IDs in DNS headers").
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

QTYPE_A = 1
QTYPE_AAAA = 28
QTYPE_SRV = 33

_QTYPE_NAMES = {QTYPE_A: "A", QTYPE_AAAA: "AAAA", QTYPE_SRV: "SRV"}

RCODE_OK = 0
RCODE_NXDOMAIN = 3
RCODE_SERVFAIL = 2


def _encode_qname(domain: str) -> bytes:
    out = b""
    for label in domain.strip(".").split("."):
        raw = label.encode("ascii")
        out += bytes([len(raw)]) + raw
    return out + b"\x00"


def _decode_qname(data: bytes, offset: int) -> tuple[str, int]:
    labels = []
    while True:
        if offset >= len(data):
            raise ValueError("truncated qname")
        length = data[offset]
        offset += 1
        if length == 0:
            break
        labels.append(data[offset:offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), offset


def encode_query(txn_id: int, domain: str, qtype: int = QTYPE_A) -> bytes:
    """Serialize a DNS query."""
    header = struct.pack(">HHHHHH", txn_id, 0x0100, 1, 0, 0, 0)
    question = _encode_qname(domain) + struct.pack(">HH", qtype, 1)
    return header + question


def encode_response(txn_id: int, domain: str, address: str = "",
                    rcode: int = RCODE_OK, qtype: int = QTYPE_A) -> bytes:
    """Serialize a DNS response (one A record, or an error rcode)."""
    ancount = 1 if address and rcode == RCODE_OK else 0
    flags = 0x8180 | (rcode & 0xF)
    header = struct.pack(">HHHHHH", txn_id, flags, 1, ancount, 0, 0)
    question = _encode_qname(domain) + struct.pack(">HH", qtype, 1)
    answer = b""
    if ancount:
        octets = bytes(int(part) for part in address.split("."))
        answer = (_encode_qname(domain) + struct.pack(">HHIH", qtype, 1, 60,
                                                      len(octets)) + octets)
    return header + question + answer


def decode_address(payload: bytes) -> Optional[str]:
    """Extract the first A-record address from a response payload."""
    try:
        _txn, flags, qdcount, ancount = struct.unpack(">HHHH", payload[:8])
        if not (flags & 0x8000) or ancount == 0:
            return None
        offset = 12
        for _ in range(qdcount):
            _domain, offset = _decode_qname(payload, offset)
            offset += 4
        _domain, offset = _decode_qname(payload, offset)
        _qtype, _qclass, _ttl, rdlength = struct.unpack(
            ">HHIH", payload[offset:offset + 10])
        offset += 10
        octets = payload[offset:offset + rdlength]
        return ".".join(str(b) for b in octets)
    except (ValueError, IndexError, struct.error):
        return None


class DnsSpec(ProtocolSpec):
    """DNS inference + parsing."""
    name = "dns"
    multiplexed = True
    default_port = 53

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 12:
            return False
        _txn, flags, qdcount, ancount, nscount, arcount = struct.unpack(
            ">HHHHHH", payload[:12])
        opcode = (flags >> 11) & 0xF
        if opcode != 0 or not 1 <= qdcount <= 4:
            return False
        if max(ancount, nscount, arcount) > 32:
            return False
        try:
            _domain, offset = _decode_qname(payload, 12)
            qtype, qclass = struct.unpack(">HH", payload[offset:offset + 4])
        except (ValueError, IndexError, struct.error, UnicodeDecodeError):
            return False  # malformed question section
        return qclass == 1 and 1 <= qtype <= 255

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if len(payload) < 12:
            return None
        try:
            txn_id, flags, qdcount = struct.unpack(">HHH", payload[:6])
            domain, offset = _decode_qname(payload, 12)
            qtype, _qclass = struct.unpack(">HH", payload[offset:offset + 4])
        except (ValueError, IndexError, struct.error, UnicodeDecodeError):
            return None
        is_response = bool(flags & 0x8000)
        rcode = flags & 0xF
        qtype_name = _QTYPE_NAMES.get(qtype, str(qtype))
        if is_response:
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                operation=qtype_name,
                resource=domain,
                status="ok" if rcode == RCODE_OK else "error",
                status_code=rcode,
                stream_id=txn_id,
                size=len(payload),
            )
        return ParsedMessage(
            protocol=self.name,
            msg_type=MessageType.REQUEST,
            operation=qtype_name,
            resource=domain,
            stream_id=txn_id,
            size=len(payload),
        )
