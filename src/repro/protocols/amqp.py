"""AMQP 0-9-1 (RabbitMQ) — message-queue protocol for the §4.1.3 case.

Real AMQP framing: frame type (1=method), 16-bit channel, 32-bit size,
payload, 0xCE frame-end octet.  Method payloads carry (class-id,
method-id); we implement the basic.publish / basic.ack pair used by the
RabbitMQ backlog case study, matched by delivery tag on a channel.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.protocols.base import MessageType, ParsedMessage, ProtocolSpec

FRAME_METHOD = 1
FRAME_END = 0xCE

CLASS_BASIC = 60
METHOD_PUBLISH = 40
METHOD_ACK = 80
METHOD_NACK = 120
METHOD_DELIVER = 60


def _frame(channel: int, payload: bytes) -> bytes:
    return (struct.pack(">BHI", FRAME_METHOD, channel, len(payload))
            + payload + bytes([FRAME_END]))


def encode_publish(channel: int, delivery_tag: int, queue: str,
                   body: bytes = b"") -> bytes:
    """Serialize basic.publish carrying a delivery tag and queue name."""
    queue_raw = queue.encode()
    payload = struct.pack(">HHQB", CLASS_BASIC, METHOD_PUBLISH,
                          delivery_tag, len(queue_raw))
    payload += queue_raw + body
    return _frame(channel, payload)


def encode_ack(channel: int, delivery_tag: int) -> bytes:
    """Serialize basic.ack for *delivery_tag*."""
    payload = struct.pack(">HHQ", CLASS_BASIC, METHOD_ACK, delivery_tag)
    return _frame(channel, payload)


def encode_nack(channel: int, delivery_tag: int) -> bytes:
    """Serialize basic.nack (broker could not enqueue)."""
    payload = struct.pack(">HHQ", CLASS_BASIC, METHOD_NACK, delivery_tag)
    return _frame(channel, payload)


def encode_deliver(channel: int, delivery_tag: int, queue: str,
                   body: bytes = b"") -> bytes:
    """Serialize basic.deliver — broker pushing a message to a consumer.

    Carries the *original* delivery tag of the publish, which is what
    lets the queue-relay trace extension pair the two sides of the queue
    (see ``repro.server.assembler``, rule R11).
    """
    queue_raw = queue.encode()
    payload = struct.pack(">HHQB", CLASS_BASIC, METHOD_DELIVER,
                          delivery_tag, len(queue_raw))
    payload += queue_raw + body
    return _frame(channel, payload)


class AmqpSpec(ProtocolSpec):
    """AMQP 0-9-1 inference + parsing."""
    name = "amqp"
    multiplexed = True
    default_port = 5672

    def infer(self, payload: bytes) -> bool:
        """Check whether *payload* plausibly starts this protocol."""
        if len(payload) < 12 or payload[0] != FRAME_METHOD:
            return False
        _type, _channel, size = struct.unpack(">BHI", payload[:7])
        return (len(payload) >= 8 + size
                and payload[7 + size] == FRAME_END)

    def parse(self, payload: bytes) -> Optional[ParsedMessage]:
        """Parse one message from *payload*; None when not parseable."""
        if len(payload) < 12 or payload[0] != FRAME_METHOD:
            return None
        _type, channel, size = struct.unpack(">BHI", payload[:7])
        if len(payload) < 8 + size or payload[7 + size] != FRAME_END:
            return None
        body = payload[7:7 + size]
        if len(body) < 12:
            return None
        class_id, method_id = struct.unpack(">HH", body[:4])
        if class_id != CLASS_BASIC:
            return None
        if method_id in (METHOD_PUBLISH, METHOD_DELIVER):
            if len(body) < 13:
                return None  # publish/deliver payload truncated
            delivery_tag, queue_len = struct.unpack(">QB", body[4:13])
            queue = body[13:13 + queue_len].decode("utf-8", errors="replace")
            operation = ("basic.publish" if method_id == METHOD_PUBLISH
                         else "basic.deliver")
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.REQUEST,
                operation=operation,
                resource=queue,
                stream_id=(channel << 32) | (delivery_tag & 0xFFFFFFFF),
                size=len(payload),
            )
        if method_id in (METHOD_ACK, METHOD_NACK):
            delivery_tag = struct.unpack(">Q", body[4:12])[0]
            return ParsedMessage(
                protocol=self.name,
                msg_type=MessageType.RESPONSE,
                operation="basic.ack" if method_id == METHOD_ACK
                else "basic.nack",
                status="ok" if method_id == METHOD_ACK else "error",
                stream_id=(channel << 32) | (delivery_tag & 0xFFFFFFFF),
                size=len(payload),
            )
        return None
