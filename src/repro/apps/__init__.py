"""Microservice workload applications.

These are the monitored systems: genuine multi-component applications that
move real protocol bytes over the simulated kernel's sockets.  None of
them know anything about DeepFlow — the zero-code property is structural:
the agent observes them purely through syscall hooks.

* :mod:`repro.apps.runtime` — the component runtime (thread-pool or
  coroutine workers, connection pooling, request dispatch);
* :mod:`repro.apps.proxy` — Nginx-like reverse proxy / ingress and an
  Envoy-like sidecar (both inject ``X-Request-ID``);
* :mod:`repro.apps.services` — DNS, Redis, and MySQL backends;
* :mod:`repro.apps.rabbitmq` — AMQP broker with bounded queues (the
  §4.1.3 backlog case);
* :mod:`repro.apps.loadgen` — wrk2-style constant-throughput generator;
* :mod:`repro.apps.bookinfo` / :mod:`repro.apps.springboot` — the two
  end-to-end demo applications of §5.4.
"""

from repro.apps.extra_services import (
    DubboService,
    GrpcService,
    Http2Service,
    KafkaService,
    MqttBroker,
)
from repro.apps.loadgen import LoadGenerator, LoadReport
from repro.apps.proxy import EnvoySidecar, NginxProxy
from repro.apps.rabbitmq import ConsumerService, RabbitMQBroker
from repro.apps.runtime import Component, HttpService, Request, Response
from repro.apps.services import DnsService, MysqlService, RedisService

__all__ = [
    "Component",
    "ConsumerService",
    "DnsService",
    "DubboService",
    "EnvoySidecar",
    "GrpcService",
    "Http2Service",
    "HttpService",
    "KafkaService",
    "LoadGenerator",
    "LoadReport",
    "MqttBroker",
    "MysqlService",
    "NginxProxy",
    "RabbitMQBroker",
    "RedisService",
    "Request",
    "Response",
]
