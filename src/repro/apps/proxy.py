"""Reverse proxies: Nginx-like ingress and Envoy-like sidecar.

Both generate ``X-Request-ID`` for incoming requests that lack one — their
*original capability* which DeepFlow leverages for cross-thread
intra-component association (§3.3.2) and gateway traversal (Appendix A).

``NginxProxy`` supports ``cross_thread=True``: the upstream call happens
on a different worker thread than the one that accepted the request
(handed over through an in-process queue, which syscall hooks cannot see).
That breaks thread-based systrace association on purpose; only the
X-Request-ID keeps the proxy's server and client spans connected.

The §4.1.1 case study is modelled by :meth:`NginxProxy.inject_fault`:
one backing pod of the ingress misroutes a specific endpoint to 404.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.runtime import (
    Component,
    Response,
    WorkerContext,
    decode_http_request,
    http_message_complete,
    http_message_length,
)
from repro.network.topology import Node, Pod
from repro.protocols import http1
from repro.sim.queue import Queue


class NginxProxy(Component):
    """HTTP reverse proxy with round-robin upstreams per path prefix."""

    def __init__(self, name: str, node: Node, port: int,
                 pod: Optional[Pod] = None, *, cross_thread: bool = False,
                 proxy_time: float = 0.0002, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.cross_thread = cross_thread
        self.proxy_time = proxy_time
        self._routes: list[tuple[str, list[tuple[str, int]]]] = []
        self._rr: dict[str, int] = {}
        self._fault_routes: dict[str, int] = {}
        self._xreq_counter = 0
        self._handoff: Optional[Queue] = None

    def add_route(self, prefix: str,
                  upstreams: list[tuple[str, int]]) -> None:
        """Route *prefix* to the given upstream endpoints."""
        self._routes.append((prefix, list(upstreams)))
        self._rr[prefix] = 0

    def inject_fault(self, prefix: str, status_code: int = 404) -> None:
        """Make this proxy instance misroute *prefix* (the §4.1.1 bug)."""
        self._fault_routes[prefix] = status_code

    def clear_faults(self) -> None:
        """Remove every fault from this device."""
        self._fault_routes.clear()

    def _pick_upstream(self, path: str) -> Optional[tuple[str, int]]:
        for prefix, upstreams in self._routes:
            if path.startswith(prefix) and upstreams:
                index = self._rr[prefix] % len(upstreams)
                self._rr[prefix] = index + 1
                return upstreams[index]
        return None

    def _next_x_request_id(self) -> str:
        self._xreq_counter += 1
        return f"{self.name}-{self._xreq_counter:08x}"

    def start(self) -> None:
        """Start serving (spawns the accept loop)."""
        super().start()
        if self.cross_thread:
            self._handoff = Queue(self.sim, name=f"{self.name}:handoff")
            upstream_thread = self.kernel.create_thread(self.process)
            self.sim.spawn(self._upstream_worker(upstream_thread),
                           name=f"{self.name}:upstream")

    def message_complete(self, buffer: bytes) -> bool:
        """Whether *buffer* holds one full request."""
        return http_message_complete(buffer)

    def split_message(self, buffer: bytes) -> tuple[bytes, bytes]:
        """Split one HTTP message off the front (pipelining support)."""
        length = http_message_length(buffer)
        if length is None:
            return buffer, b""
        return buffer[:length], buffer[length:]

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        request = decode_http_request(data)
        if self.proxy_time:
            yield from worker.work(self.proxy_time)
        x_request_id = request.headers.get("x-request-id")
        if not x_request_id:
            x_request_id = self._next_x_request_id()
        for prefix, status_code in self._fault_routes.items():
            if request.path.startswith(prefix):
                return http1.encode_response(
                    status_code, headers={"X-Request-ID": x_request_id})
        upstream = self._pick_upstream(request.path)
        if upstream is None:
            return http1.encode_response(
                502, headers={"X-Request-ID": x_request_id})
        headers = dict(request.headers)
        headers["x-request-id"] = x_request_id
        forwarded = {key.title(): value for key, value in headers.items()
                     if key not in ("content-length", "host")}
        if self.cross_thread:
            response = yield from self._forward_cross_thread(
                upstream, request, forwarded)
        else:
            try:
                response = yield from worker.call_http(
                    upstream[0], upstream[1], request.method, request.path,
                    headers=forwarded, body=request.body)
            except (ConnectionResetError, BrokenPipeError, ConnectionError):
                response = Response(status_code=502)
        reply_headers = dict(response.headers)
        reply_headers.pop("content-length", None)
        reply_headers["X-Request-ID"] = x_request_id
        return http1.encode_response(response.status_code,
                                     headers=reply_headers,
                                     body=response.body)

    # -- cross-thread forwarding -------------------------------------------

    def _forward_cross_thread(self, upstream, request,
                              headers) -> Generator:
        done = self.sim.event()
        self._handoff.put((upstream, request, headers, done))
        response = yield done
        return response

    def _upstream_worker(self, thread) -> Generator:
        worker = WorkerContext(self, thread, None)
        while self.running:
            upstream, request, headers, done = yield self._handoff.get()
            try:
                response = yield from worker.call_http(
                    upstream[0], upstream[1], request.method, request.path,
                    headers=headers, body=request.body)
            except (ConnectionResetError, BrokenPipeError,
                    ConnectionError):
                response = Response(status_code=502)
            done.succeed(response)


class EnvoySidecar(NginxProxy):
    """A sidecar proxy: one fixed upstream (the co-located app container).

    Deployed on the same pod as the application it fronts, as in the Istio
    Bookinfo topology.  Inherits the X-Request-ID behaviour.
    """

    def __init__(self, name: str, node: Node, port: int,
                 app_ip: str, app_port: int, pod: Optional[Pod] = None,
                 **kwargs):
        kwargs.setdefault("proxy_time", 0.0001)
        super().__init__(name, node, port, pod, **kwargs)
        self.add_route("/", [(app_ip, app_port)])
