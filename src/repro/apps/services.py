"""Infrastructure backends: DNS, Redis, MySQL.

Each speaks its genuine wire protocol from :mod:`repro.protocols`, so the
agent's protocol inference classifies their connections without hints.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.runtime import Component, WorkerContext
from repro.network.topology import Node, Pod
from repro.protocols import dns, mysql, redis


class DnsService(Component):
    """Cluster DNS (CoreDNS stand-in).  Resolves service names to IPs."""

    def __init__(self, name: str, node: Node, port: int = 53,
                 pod: Optional[Pod] = None, *,
                 lookup_time: float = 0.0002, **kwargs):
        kwargs.setdefault("ingress_abi", "recvfrom")
        kwargs.setdefault("egress_abi", "sendto")
        super().__init__(name, node, port, pod, **kwargs)
        self.lookup_time = lookup_time
        self.records: dict[str, str] = {}

    def add_record(self, domain: str, address: str) -> None:
        """Add a name -> address record."""
        self.records[domain] = address

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = dns.DnsSpec().parse(data)
        if parsed is None:
            return None
        if self.lookup_time:
            yield from worker.work(self.lookup_time)
        address = self.records.get(parsed.resource)
        if address is None:
            return dns.encode_response(parsed.stream_id, parsed.resource,
                                       rcode=dns.RCODE_NXDOMAIN)
        return dns.encode_response(parsed.stream_id, parsed.resource,
                                   address)


class RedisService(Component):
    """In-memory cache speaking RESP."""

    def __init__(self, name: str, node: Node, port: int = 6379,
                 pod: Optional[Pod] = None, *,
                 op_time: float = 0.0001, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.op_time = op_time
        self.data: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        try:
            args = redis.decode_request(data)
        except ValueError:
            return redis.encode_response(error="protocol error")
        if self.op_time:
            yield from worker.work(self.op_time)
        command = args[0].upper() if args else ""
        if command == "GET":
            value = self.data.get(args[1])
            if value is None:
                self.misses += 1
                return redis.encode_response(None)
            self.hits += 1
            return redis.encode_response(value)
        if command == "SET" and len(args) >= 3:
            self.data[args[1]] = args[2]
            return redis.encode_response("OK")
        if command == "DEL" and len(args) >= 2:
            existed = args[1] in self.data
            self.data.pop(args[1], None)
            return redis.encode_response(integer=int(existed))
        if command == "PING":
            return redis.encode_response("PONG")
        return redis.encode_response(error=f"unknown command '{command}'")


class MysqlService(Component):
    """A database backend speaking the MySQL packet protocol."""

    def __init__(self, name: str, node: Node, port: int = 3306,
                 pod: Optional[Pod] = None, *,
                 query_time: float = 0.002, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.query_time = query_time
        self.tables: dict[str, int] = {}  # table -> row count
        self.queries_served = 0
        self.fail_table: Optional[str] = None

    def add_table(self, table: str, rows: int = 100) -> None:
        """Register a table with a row count."""
        self.tables[table] = rows

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = mysql.MysqlSpec().parse(data)
        if parsed is None:
            return mysql.encode_error(1064, "malformed packet")
        if self.query_time:
            yield from worker.work(self.query_time)
        self.queries_served += 1
        if parsed.operation == "PING":
            return mysql.encode_ok()
        table = parsed.resource
        if self.fail_table and table == self.fail_table:
            return mysql.encode_error(1146,
                                      f"Table '{table}' doesn't exist")
        if parsed.operation == "SELECT":
            rows = self.tables.get(table, 0)
            return mysql.encode_resultset(column_count=3,
                                          rows=min(rows, 0xFFFF))
        if parsed.operation in ("INSERT", "UPDATE", "DELETE"):
            if table in self.tables and parsed.operation == "INSERT":
                self.tables[table] += 1
            return mysql.encode_ok(affected_rows=1)
        return mysql.encode_ok()
