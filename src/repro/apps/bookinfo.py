"""The Istio Bookinfo application (§5.4, Figure 16(b)).

The canonical service-mesh demo [61], with an Envoy-like sidecar in front
of every application container (this is what makes its traces deep):

    loadgen → ingress → [sidecar → productpage]
                           ├→ [sidecar → details]
                           └→ [sidecar → reviews] → [sidecar → ratings]

The Zipkin comparison of Figure 16(b) attaches a Zipkin-like tracer to
the application services (sidecars and ratings-v1 stay untraced — exactly
the blind spots intrusive tracing leaves).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.proxy import EnvoySidecar, NginxProxy
from repro.apps.runtime import HttpService, Response
from repro.network.topology import Cluster, ClusterBuilder, Pod
from repro.network.transport import Network
from repro.sim.engine import Simulator

#: Sidecar listen port on every pod; the app container listens on 9080.
SIDECAR_PORT = 15001
APP_PORT = 9080


@dataclass
class BookinfoApp:
    """Handle to the deployed application."""

    sim: Simulator
    cluster: Cluster
    network: Network
    pods: dict[str, Pod]
    components: dict[str, object]
    entry_ip: str = ""
    entry_port: int = 8080

    def stop(self) -> None:
        """Stop all components of this deployment."""
        for component in self.components.values():
            component.stop()


def build(sim: Simulator | None = None, *, tracer=None,
          reviews_runtime: str = "coroutines",
          node_count: int = 3) -> BookinfoApp:
    """Deploy Bookinfo on a fresh three-node cluster."""
    sim = sim or Simulator(seed=23)
    builder = ClusterBuilder(node_count=node_count)
    pods = {
        "loadgen": builder.add_pod(0, "loadgen-pod",
                                   labels={"app": "loadgen"}),
        "ingress": builder.add_pod(0, "ingress-pod",
                                   labels={"app": "istio-ingress"}),
        "productpage": builder.add_pod(
            1, "productpage-v1", labels={"app": "productpage",
                                         "version": "v1"}),
        "details": builder.add_pod(2, "details-v1",
                                   labels={"app": "details",
                                           "version": "v1"}),
        "reviews": builder.add_pod(1, "reviews-v2",
                                   labels={"app": "reviews",
                                           "version": "v2"}),
        "ratings": builder.add_pod(2, "ratings-v1",
                                   labels={"app": "ratings",
                                           "version": "v1"}),
    }
    cluster = builder.build()
    network = Network(sim, cluster)
    components: dict[str, object] = {}

    def with_sidecar(key: str, service: HttpService) -> None:
        """Register the service plus its Envoy sidecar."""
        sidecar = EnvoySidecar(f"{key}-sidecar", pods[key].node,
                               SIDECAR_PORT, app_ip=pods[key].ip,
                               app_port=APP_PORT, pod=pods[key])
        components[service.name] = service
        components[sidecar.name] = sidecar

    ratings = HttpService("ratings", pods["ratings"].node, APP_PORT,
                          pod=pods["ratings"], service_time=0.002)

    @ratings.route("/ratings")
    def get_ratings(worker, request):
        """Ratings handler."""
        yield from worker.work(0.0002)
        return Response(200, body=b'{"stars": 5}')

    with_sidecar("ratings", ratings)

    reviews = HttpService("reviews", pods["reviews"].node, APP_PORT,
                          pod=pods["reviews"], tracer=tracer,
                          runtime=reviews_runtime, service_time=0.006)

    @reviews.route("/reviews")
    def get_reviews(worker, request):
        """Reviews handler (calls ratings)."""
        upstream = yield from reviews.call_downstream(
            worker, pods["ratings"].ip, SIDECAR_PORT, "GET", "/ratings/1")
        status = 200 if upstream.status_code < 400 else 502
        return Response(status,
                        body=b'{"reviews": ["good", "great"], "stars": 5}')

    with_sidecar("reviews", reviews)

    details = HttpService("details", pods["details"].node, APP_PORT,
                          pod=pods["details"], tracer=tracer,
                          service_time=0.003)

    @details.route("/details")
    def get_details(worker, request):
        """Details handler."""
        yield from worker.work(0.0001)
        return Response(200, body=b'{"author": "Shakespeare"}')

    with_sidecar("details", details)

    productpage = HttpService("productpage", pods["productpage"].node,
                              APP_PORT, pod=pods["productpage"],
                              tracer=tracer, service_time=0.008)

    @productpage.route("/productpage")
    def get_productpage(worker, request):
        """Productpage handler (calls details and reviews)."""
        details_reply = yield from productpage.call_downstream(
            worker, pods["details"].ip, SIDECAR_PORT, "GET", "/details/0")
        reviews_reply = yield from productpage.call_downstream(
            worker, pods["reviews"].ip, SIDECAR_PORT, "GET", "/reviews/0")
        ok = (details_reply.status_code < 400
              and reviews_reply.status_code < 400)
        return Response(200 if ok else 502,
                        body=b"<html>bookinfo</html>")

    with_sidecar("productpage", productpage)

    ingress = NginxProxy("istio-ingress", pods["ingress"].node, 8080,
                         pod=pods["ingress"])
    ingress.add_route("/productpage",
                      [(pods["productpage"].ip, SIDECAR_PORT)])
    components["istio-ingress"] = ingress

    for component in components.values():
        component.start()
    return BookinfoApp(sim=sim, cluster=cluster, network=network,
                       pods=pods, components=components,
                       entry_ip=pods["ingress"].ip, entry_port=8080)
