"""The Spring-Boot-style demo application (§5.4, Figure 16(a)).

A small service chain behind an API gateway, in the shape of the Jaeger
Spring Boot demo [12]:

    loadgen → api-gateway → order-service → user-service
                               ├→ redis (session cache)
                               └→ mysql (orders table)

Build it with :func:`build`, optionally passing an intrusive tracer
(Jaeger-like) to instrument the HTTP services — the comparison point of
Figure 16(a).  DeepFlow observes the same deployment with zero code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.runtime import HttpService, Response
from repro.apps.services import MysqlService, RedisService
from repro.network.topology import Cluster, ClusterBuilder, Pod
from repro.network.transport import Network
from repro.protocols import mysql as mysql_proto
from repro.protocols import redis as redis_proto
from repro.sim.engine import Simulator


@dataclass
class SpringBootDemo:
    """Handle to the deployed demo."""

    sim: Simulator
    cluster: Cluster
    network: Network
    pods: dict[str, Pod]
    components: dict[str, object]
    entry_ip: str = ""
    entry_port: int = 8080

    def stop(self) -> None:
        """Stop all components of this deployment."""
        for component in self.components.values():
            component.stop()


def _mysql_complete(buffer: bytes) -> bool:
    if len(buffer) < 4:
        return False
    length = int.from_bytes(buffer[:3], "little")
    return len(buffer) >= length + 4


def build(sim: Simulator | None = None, *, tracer=None,
          gateway_time: float = 0.0012, order_time: float = 0.005,
          user_time: float = 0.0025,
          node_count: int = 3) -> SpringBootDemo:
    """Deploy the demo on a fresh cluster; returns a handle."""
    sim = sim or Simulator(seed=16)
    builder = ClusterBuilder(node_count=node_count)
    pods = {
        "loadgen": builder.add_pod(0, "loadgen-pod",
                                   labels={"app": "loadgen"}),
        "gateway": builder.add_pod(0, "gateway-pod",
                                   labels={"app": "api-gateway",
                                           "version": "v1"}),
        "order": builder.add_pod(1, "order-pod",
                                 labels={"app": "order-service",
                                         "version": "v1"}),
        "user": builder.add_pod(2, "user-pod",
                                labels={"app": "user-service",
                                        "version": "v1"}),
        "redis": builder.add_pod(1, "redis-pod", labels={"app": "redis"}),
        "mysql": builder.add_pod(2, "mysql-pod", labels={"app": "mysql"}),
    }
    cluster = builder.build()
    network = Network(sim, cluster)

    redis_backend = RedisService("redis", pods["redis"].node, 6379,
                                 pod=pods["redis"])
    redis_backend.data["session:active"] = "42"
    mysql_backend = MysqlService("mysql", pods["mysql"].node, 3306,
                                 pod=pods["mysql"], query_time=0.0035)
    mysql_backend.add_table("orders", rows=1000)

    user_service = HttpService("user-service", pods["user"].node, 8083,
                               pod=pods["user"], tracer=tracer,
                               service_time=user_time)

    @user_service.route("/users")
    def get_user(worker, request):
        """User-service handler."""
        yield from worker.work(0.0002)
        return Response(200, body=b'{"user": "u-1", "tier": "gold"}')

    order_service = HttpService("order-service", pods["order"].node, 8082,
                                pod=pods["order"], tracer=tracer,
                                service_time=order_time)

    @order_service.route("/orders")
    def get_orders(worker, request):
        # Cache lookup (RESP), then the user service, then the database.
        """Order-service handler: cache, user service, database."""
        cache_reply = yield from worker.call_raw(
            pods["redis"].ip, 6379,
            redis_proto.encode_request("GET", "session:active"))
        del cache_reply
        user_reply = yield from order_service.call_downstream(
            worker, pods["user"].ip, 8083, "GET", "/users/u-1")
        db_reply = yield from worker.call_raw(
            pods["mysql"].ip, 3306,
            mysql_proto.encode_query(
                "SELECT * FROM orders WHERE user='u-1'"),
            complete=_mysql_complete)
        del db_reply
        status = 200 if user_reply.status_code < 400 else 502
        return Response(status, body=b'{"orders": [1, 2, 3]}')

    gateway = HttpService("api-gateway", pods["gateway"].node, 8080,
                          pod=pods["gateway"], tracer=tracer,
                          service_time=gateway_time)

    @gateway.route("/api")
    def api(worker, request):
        """Gateway entry handler."""
        upstream = yield from gateway.call_downstream(
            worker, pods["order"].ip, 8082, "GET", "/orders")
        return Response(upstream.status_code, body=upstream.body)

    components = {
        "redis": redis_backend,
        "mysql": mysql_backend,
        "user-service": user_service,
        "order-service": order_service,
        "api-gateway": gateway,
    }
    for component in components.values():
        component.start()
    return SpringBootDemo(sim=sim, cluster=cluster, network=network,
                          pods=pods, components=components,
                          entry_ip=pods["gateway"].ip, entry_port=8080)
