"""Microservice component runtime.

A :class:`Component` is one deployable service: it owns an OS process on a
pod (or directly on a node), listens on a port, and serves requests with a
pool of worker threads or, in ``runtime="coroutines"`` mode, with
goroutine-style coroutines multiplexed on one thread.

Components are *unaware of tracing*.  When an intrusive baseline tracer is
attached (the Jaeger/Zipkin comparators of §5.4), the HTTP dispatch path
explicitly calls into it — which is precisely the source-modification the
paper's intrusive category requires and DeepFlow avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.kernel.kernel import Kernel
from repro.kernel.process import Coroutine, OSProcess, Thread
from repro.network.topology import Node, Pod
from repro.protocols import http1


@dataclass
class Request:
    """A decoded HTTP request as seen by handlers."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes = b""


@dataclass
class Response:
    """What a handler returns."""

    status_code: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


class Component:
    """Base class: raw request/response service over one listening port."""

    def __init__(self, name: str, node: Node, port: int,
                 pod: Optional[Pod] = None, *,
                 runtime: str = "threads",
                 ingress_abi: str = "read",
                 egress_abi: str = "write",
                 service_time: float = 0.0):
        if runtime not in ("threads", "coroutines"):
            raise ValueError(f"unknown runtime {runtime!r}")
        self.name = name
        self.node = node
        self.pod = pod
        self.port = port
        self.runtime = runtime
        self.ingress_abi = ingress_abi
        self.egress_abi = egress_abi
        self.service_time = service_time
        self.kernel: Kernel = node.kernel
        self.sim = self.kernel.sim
        self.ip = pod.ip if pod is not None else node.ip
        self.process: Optional[OSProcess] = None
        self.running = False
        self.requests_handled = 0
        self._main_thread: Optional[Thread] = None
        self._acceptor_coroutine: Optional[Coroutine] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start serving (spawns the accept loop)."""
        if self.running:
            raise RuntimeError(f"{self.name} already started")
        self.process = self.kernel.create_process(self.name, self.ip)
        self._main_thread = self.kernel.create_thread(self.process)
        listener = self.kernel.listen(self.process, self.port)
        self.running = True
        if self.runtime == "coroutines":
            self._acceptor_coroutine = self.kernel.create_coroutine(
                self._main_thread)
        self.sim.spawn(self._accept_loop(listener),
                       name=f"{self.name}:accept")

    def stop(self) -> None:
        """Stop all components of this deployment."""
        self.running = False
        self.kernel.network.unregister_listener(self.ip, self.port)

    def _accept_loop(self, listener) -> Generator:
        while self.running:
            fd = yield from self.kernel.accept(self._main_thread, listener)
            if self.runtime == "threads":
                worker = self.kernel.create_thread(self.process)
                self.sim.spawn(self._serve(worker, fd, None),
                               name=f"{self.name}:conn")
            else:
                coroutine = self.kernel.create_coroutine(
                    self._main_thread, parent=self._acceptor_coroutine)
                self.sim.spawn(
                    self._serve(self._main_thread, fd, coroutine),
                    name=f"{self.name}:conn")

    # -- connection serving --------------------------------------------------

    def _enter(self, thread: Thread, coroutine: Optional[Coroutine]) -> None:
        """Schedule this worker's coroutine onto the thread (if any)."""
        if coroutine is not None:
            thread.current_coroutine = coroutine

    def _serve(self, thread: Thread, fd: int,
               coroutine: Optional[Coroutine]) -> Generator:
        worker = WorkerContext(self, thread, coroutine)
        buffer = b""
        try:
            while self.running:
                while not (buffer and self.message_complete(buffer)):
                    self._enter(thread, coroutine)
                    data = yield from self.kernel.recv_abi(
                        self.ingress_abi, thread, fd)
                    if not data:
                        return
                    buffer += data
                request, buffer = self.split_message(buffer)
                self.requests_handled += 1
                reply = yield from self.handle_payload(worker, request)
                if reply is None:
                    return
                self._enter(thread, coroutine)
                yield from self.kernel.send_abi(self.egress_abi, thread,
                                                fd, reply)
        except (ConnectionResetError, BrokenPipeError, ConnectionError):
            return
        finally:
            worker.close_pool()
            try:
                self._enter(thread, coroutine)
                self.kernel.close(thread, fd)
            except Exception:  # noqa: BLE001 - already torn down
                pass

    # -- to override ----------------------------------------------------

    def message_complete(self, buffer: bytes) -> bool:
        """Whether *buffer* holds one full request (override per protocol)."""
        return True

    def split_message(self, buffer: bytes) -> tuple[bytes, bytes]:
        """Split one complete request off the front of *buffer*.

        Pipelined clients may coalesce several requests into one read;
        the default keeps everything (single-message protocols), while
        HTTP splits at the message boundary so the remainder is served
        next iteration.
        """
        return buffer, b""

    def handle_payload(self, worker: "WorkerContext",
                       data: bytes) -> Generator:
        """Process one request; returns response bytes (or None to close)."""
        raise NotImplementedError
        yield  # pragma: no cover


class WorkerContext:
    """Per-connection worker state: thread, coroutine, connection pool."""

    def __init__(self, component: Component, thread: Thread,
                 coroutine: Optional[Coroutine]):
        self.component = component
        self.kernel = component.kernel
        self.sim = component.sim
        self.thread = thread
        self.coroutine = coroutine
        self.current_app_span = None  # set by intrusive tracers only
        self._pool: dict[tuple[str, int], int] = {}

    def _enter(self) -> None:
        if self.coroutine is not None:
            self.thread.current_coroutine = self.coroutine

    # -- handler utilities ----------------------------------------------

    def work(self, duration: float) -> Generator:
        """Simulated computation (never yields the CPU to the network)."""
        if duration > 0:
            yield duration
        return None

    def connect(self, ip: str, port: int) -> Generator:
        """Pooled connection to (ip, port); returns the fd."""
        key = (ip, port)
        fd = self._pool.get(key)
        if fd is not None:
            return fd
        self._enter()
        fd = yield from self.kernel.connect(self.thread, ip, port)
        self._pool[key] = fd
        return fd

    def drop_connection(self, ip: str, port: int) -> None:
        """Close and forget the pooled connection to (ip, port)."""
        key = (ip, port)
        fd = self._pool.pop(key, None)
        if fd is not None:
            try:
                self.kernel.close(self.thread, fd)
            except Exception:  # noqa: BLE001
                pass

    def call_raw(self, ip: str, port: int, payload: bytes,
                 complete: Callable[[bytes], bool] = lambda _b: True,
                 chunk_size: int = 0) -> Generator:
        """Send *payload*, read one reply.  Optionally chunk the send to
        exercise multi-syscall messages."""
        component = self.component
        fd = yield from self.connect(ip, port)
        chunks = ([payload] if not chunk_size else
                  [payload[i:i + chunk_size]
                   for i in range(0, len(payload), chunk_size)])
        try:
            for chunk in chunks:
                self._enter()
                yield from self.kernel.send_abi(component.egress_abi,
                                                self.thread, fd, chunk)
            buffer = b""
            while True:
                self._enter()
                data = yield from self.kernel.recv_abi(
                    component.ingress_abi, self.thread, fd)
                if not data:
                    raise ConnectionError(f"{ip}:{port} closed mid-reply")
                buffer += data
                if complete(buffer):
                    return buffer
        except (ConnectionResetError, BrokenPipeError):
            self.drop_connection(ip, port)
            raise

    def call_http(self, ip: str, port: int, method: str, path: str,
                  headers: Optional[dict[str, str]] = None,
                  body: bytes = b"", chunk_size: int = 0) -> Generator:
        """HTTP/1.1 request/response over a pooled connection."""
        payload = http1.encode_request(method, path, headers=headers,
                                       body=body, host=f"{ip}:{port}")
        raw = yield from self.call_raw(ip, port, payload,
                                       complete=http_message_complete,
                                       chunk_size=chunk_size)
        return decode_http_response(raw)

    def close_pool(self) -> None:
        """Close every pooled connection."""
        for fd in self._pool.values():
            try:
                self._enter()
                self.kernel.close(self.thread, fd)
            except Exception:  # noqa: BLE001
                pass
        self._pool.clear()


def http_message_complete(buffer: bytes) -> bool:
    """True when *buffer* holds one complete HTTP/1.1 message."""
    return http_message_length(buffer) is not None


def http_message_length(buffer: bytes) -> Optional[int]:
    """Byte length of the first complete HTTP/1.1 message, or None."""
    head, separator, body = buffer.partition(b"\r\n\r\n")
    if not separator:
        return None
    expected = 0
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            expected = int(line.split(b":", 1)[1].strip())
            break
    if len(body) < expected:
        return None
    return len(head) + len(separator) + expected


def decode_http_response(raw: bytes) -> Response:
    """Decode raw bytes into a Response."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii", errors="replace").split("\r\n")
    status_code = int(lines[0].split(" ")[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return Response(status_code=status_code, headers=headers, body=body)


def decode_http_request(raw: bytes) -> Request:
    """Decode raw bytes into a Request."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii", errors="replace").split("\r\n")
    method, path, _version = lines[0].split(" ")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return Request(method=method, path=path, headers=headers, body=body)


class HttpService(Component):
    """An HTTP/1.1 component with path-routed handlers.

    Handlers are generators: ``handler(worker, request) -> Response``.
    They may call downstream services through the worker context.  When an
    intrusive tracer is attached (baselines), the dispatch path starts and
    finishes an application span around the handler and injects the
    propagation headers into downstream calls made via
    :meth:`call_downstream`.
    """

    def __init__(self, name: str, node: Node, port: int,
                 pod: Optional[Pod] = None, *, tracer=None, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.tracer = tracer
        self._routes: list[tuple[str, Callable]] = []
        self.fallback_status = 404

    def route(self, prefix: str):
        """Decorator registering a handler for a path prefix."""

        def register(handler: Callable) -> Callable:
            """Register a handler."""
            self._routes.append((prefix, handler))
            return handler

        return register

    def _find_handler(self, path: str) -> Optional[Callable]:
        for prefix, handler in self._routes:
            if path.startswith(prefix):
                return handler
        return None

    def message_complete(self, buffer: bytes) -> bool:
        """Whether *buffer* holds one full request."""
        return http_message_complete(buffer)

    def split_message(self, buffer: bytes) -> tuple[bytes, bytes]:
        """Split one HTTP message off the front (pipelining support)."""
        length = http_message_length(buffer)
        if length is None:
            return buffer, b""
        return buffer[:length], buffer[length:]

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        request = decode_http_request(data)
        span = None
        if self.tracer is not None:
            span = self.tracer.start_server_span(self, request.headers,
                                                 f"{self.name}:{request.path}")
            yield self.tracer.overhead
            worker.current_app_span = span
        try:
            handler = self._find_handler(request.path)
            if handler is None:
                response = Response(status_code=self.fallback_status)
            else:
                if self.service_time:
                    yield from worker.work(self.service_time)
                response = yield from handler(worker, request)
        except (ConnectionResetError, BrokenPipeError, ConnectionError):
            response = Response(status_code=502)
        finally:
            if span is not None:
                yield self.tracer.overhead
        if span is not None:
            status = "error" if response.status_code >= 400 else "ok"
            self.tracer.finish_span(span, status=status,
                                    status_code=response.status_code)
            worker.current_app_span = None
        return http1.encode_response(response.status_code,
                                     headers=response.headers,
                                     body=response.body)

    def call_downstream(self, worker: WorkerContext, ip: str, port: int,
                        method: str, path: str,
                        headers: Optional[dict[str, str]] = None,
                        body: bytes = b"") -> Generator:
        """Downstream HTTP call; intrusive tracers wrap it in a client
        span and inject their propagation headers."""
        headers = dict(headers or {})
        span = None
        if self.tracer is not None:
            parent = getattr(worker, "current_app_span", None)
            span = self.tracer.start_client_span(
                self, parent, f"{self.name}->{ip}:{port}{path}")
            headers.update(self.tracer.inject(span))
            yield self.tracer.overhead
        try:
            response = yield from worker.call_http(ip, port, method, path,
                                                   headers=headers,
                                                   body=body)
        except (ConnectionResetError, BrokenPipeError, ConnectionError):
            if span is not None:
                self.tracer.finish_span(span, status="error",
                                        status_code=502)
                yield self.tracer.overhead
            raise
        if span is not None:
            status = "error" if response.status_code >= 400 else "ok"
            self.tracer.finish_span(span, status=status,
                                    status_code=response.status_code)
            yield self.tracer.overhead
        return response
