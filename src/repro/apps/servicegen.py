"""Random microservice topology generation.

The paper motivates DeepFlow with microservice graphs of up to 1,500
components [89]; this module generates layered random service graphs
(chains, fan-outs, diamonds) so that stress tests and campaigns exercise
shapes beyond the hand-built demos.  Generation is seeded through the
simulator's RNG, so topologies are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.runtime import HttpService, Response
from repro.network.topology import Cluster, ClusterBuilder, Pod
from repro.network.transport import Network
from repro.sim.engine import Simulator


@dataclass
class GeneratedApp:
    """A deployed random service graph."""

    sim: Simulator
    cluster: Cluster
    network: Network
    services: dict[str, HttpService]
    edges: list[tuple[str, str]]       # caller -> callee
    pods: dict[str, Pod]
    entry: str = ""

    @property
    def entry_ip(self) -> str:
        """IP of the entry service's pod."""
        return self.pods[self.entry].ip

    @property
    def entry_port(self) -> int:
        """Listening port of the entry service."""
        return self.services[self.entry].port

    def sessions_per_request(self) -> int:
        """Sessions one entry request triggers, counting repeated
        invocations (a diamond's shared callee runs once per caller),
        plus the load generator's edge session."""
        adjacency: dict[str, list[str]] = {}
        for caller, callee in self.edges:
            adjacency.setdefault(caller, []).append(callee)

        def downstream_sessions(name: str) -> int:
            """Sessions triggered by one invocation."""
            total = 0
            for callee in adjacency.get(name, ()):
                total += 1 + downstream_sessions(callee)
            return total

        return downstream_sessions(self.entry) + 1

    def stop(self) -> None:
        """Stop all components of this deployment."""
        for service in self.services.values():
            service.stop()


def generate(sim: Optional[Simulator] = None, *, seed: int = 0,
             layers: int = 3, width: int = 3,
             fanout: int = 2, node_count: int = 4,
             service_time_range: tuple[float, float] = (0.0005, 0.002),
             ) -> GeneratedApp:
    """Build a layered DAG of HTTP services and deploy it.

    Layer 0 is the single entry service; each service in layer *i* calls
    up to *fanout* services in layer *i+1* (at least one, so every layer
    is reachable).
    """
    if layers < 1 or width < 1 or fanout < 1:
        raise ValueError("layers, width, and fanout must be >= 1")
    sim = sim or Simulator(seed=seed)
    rng = sim.rng
    builder = ClusterBuilder(node_count=node_count)
    pods: dict[str, Pod] = {"loadgen": builder.add_pod(0, "loadgen-pod")}
    names: list[list[str]] = []
    for layer in range(layers):
        layer_width = 1 if layer == 0 else width
        row = []
        for index in range(layer_width):
            name = f"svc-l{layer}-{index}"
            pods[name] = builder.add_pod(
                rng.randrange(node_count), f"{name}-pod",
                labels={"app": name, "layer": str(layer)})
            row.append(name)
        names.append(row)
    cluster = builder.build()
    network = Network(sim, cluster)

    edges: list[tuple[str, str]] = []
    callees: dict[str, list[str]] = {}
    for layer in range(layers - 1):
        for caller in names[layer]:
            targets = rng.sample(
                names[layer + 1],
                k=min(len(names[layer + 1]), rng.randint(1, fanout)))
            callees[caller] = targets
            edges.extend((caller, callee) for callee in targets)

    services: dict[str, HttpService] = {}
    port = 9100
    low, high = service_time_range
    for layer_row in names:
        for name in layer_row:
            service = HttpService(name, pods[name].node, port,
                                  pod=pods[name],
                                  service_time=rng.uniform(low, high))
            services[name] = service
            port += 1

    def make_handler(name: str):
        """Build the request handler for one service."""
        def handler(worker, request) -> Generator:
            """Request handler."""
            yield from worker.work(0.0001)
            for callee in callees.get(name, ()):
                target = services[callee]
                reply = yield from worker.call_http(
                    pods[callee].ip, target.port, "GET", f"/{callee}")
                if reply.status_code >= 400:
                    return Response(502)
            return Response(200)
        return handler

    for name, service in services.items():
        service.route("/")(make_handler(name))
        service.start()

    entry = names[0][0]
    return GeneratedApp(sim=sim, cluster=cluster, network=network,
                        services=services, edges=edges, pods=pods,
                        entry=entry)
