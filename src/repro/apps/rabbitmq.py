"""RabbitMQ-like AMQP broker with bounded queues.

The §4.1.3 case study substrate: producers ``basic.publish`` into named
queues; messages are drained either by an internal consumer (a pure rate,
enough for the backlog case) or pushed to *subscribed consumer services*
as ``basic.deliver`` frames carrying the original delivery tag — the
substrate for the queue-relay tracing extension (assembler rule R11).

When a queue's backlog reaches its capacity the broker first NACKs and —
if ``reset_on_backlog`` is set, matching the observed production failure —
starts resetting producer connections, which surfaces at clients as
``ECONNRESET`` and in flow metrics as TCP resets.

The broker also exposes its queue depth as a gauge, exported periodically
to the metrics database with the broker pod's resource tags — that shared
``pod`` tag is what lets DeepFlow correlate the backlog with the affected
traces in under a minute (Figure 12).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.apps.runtime import Component, WorkerContext
from repro.kernel.syscalls import Direction
from repro.network.topology import Node, Pod
from repro.protocols import amqp


class RabbitMQBroker(Component):
    """Message broker speaking the AMQP-method subset of the case study."""

    def __init__(self, name: str, node: Node, port: int = 5672,
                 pod: Optional[Pod] = None, *,
                 queue_capacity: int = 100,
                 consume_rate: float = 200.0,
                 publish_time: float = 0.0003,
                 reset_on_backlog: bool = False,
                 **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.queue_capacity = queue_capacity
        self.consume_rate = consume_rate
        self.publish_time = publish_time
        self.reset_on_backlog = reset_on_backlog
        #: queue name -> pending (channel, delivery_tag, body) messages
        self.queues: dict[str, deque] = {}
        #: queue name -> (consumer ip, consumer port)
        self.subscriptions: dict[str, tuple[str, int]] = {}
        self.published = 0
        self.delivered = 0
        self.nacked = 0
        self.resets_issued = 0
        self._consumer_started = False

    def start(self) -> None:
        """Start serving (spawns the accept loop)."""
        super().start()
        if not self._consumer_started:
            self._consumer_started = True
            self.sim.spawn(self._drain_loop(), name=f"{self.name}:drain")

    # -- consumption ---------------------------------------------------------

    def subscribe(self, queue: str, consumer_ip: str,
                  consumer_port: int) -> None:
        """Push *queue*'s messages to a consumer as basic.deliver frames.

        Must be called after :meth:`start`; spawns the push loop.
        """
        if queue in self.subscriptions:
            raise ValueError(f"queue {queue!r} already has a consumer")
        self.subscriptions[queue] = (consumer_ip, consumer_port)
        thread = self.kernel.create_thread(self.process)
        self.sim.spawn(self._push_loop(thread, queue),
                       name=f"{self.name}:push:{queue}")

    def _drain_loop(self) -> Generator:
        """Internal consumer for unsubscribed queues (a pure drain rate)."""
        interval = 1.0 / self.consume_rate if self.consume_rate > 0 else 1.0
        while self.running:
            yield interval
            for queue_name, pending in self.queues.items():
                if queue_name not in self.subscriptions and pending:
                    pending.popleft()

    def _push_loop(self, thread, queue: str) -> Generator:
        interval = 1.0 / self.consume_rate if self.consume_rate > 0 else 1.0
        worker = WorkerContext(self, thread, None)
        consumer_ip, consumer_port = self.subscriptions[queue]
        while self.running:
            pending = self.queues.get(queue)
            if not pending:
                yield interval
                continue
            channel, delivery_tag, body = pending.popleft()
            frame = amqp.encode_deliver(channel, delivery_tag, queue, body)
            try:
                reply = yield from worker.call_raw(consumer_ip,
                                                   consumer_port, frame)
            except (ConnectionResetError, ConnectionError):
                # Consumer gone: requeue at the front and back off.
                pending.appendleft((channel, delivery_tag, body))
                worker.drop_connection(consumer_ip, consumer_port)
                yield interval
                continue
            parsed = amqp.AmqpSpec().parse(reply)
            if parsed is not None and not parsed.is_error:
                self.delivered += 1
            yield interval

    def total_depth(self) -> int:
        """Messages pending across all queues."""
        return sum(len(pending) for pending in self.queues.values())

    # -- publish handling ----------------------------------------------------

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = amqp.AmqpSpec().parse(data)
        if parsed is None or parsed.operation != "basic.publish":
            return None  # protocol violation: close the connection
        if self.publish_time:
            yield from worker.work(self.publish_time)
        queue_name = parsed.resource
        pending = self.queues.setdefault(queue_name, deque())
        channel = (parsed.stream_id or 0) >> 32
        delivery_tag = (parsed.stream_id or 0) & 0xFFFFFFFF
        if len(pending) >= self.queue_capacity:
            self.nacked += 1
            if self.reset_on_backlog:
                # The production failure mode: the broker tears the
                # connection down instead of answering.
                self.resets_issued += 1
                sock = self._worker_socket(worker)
                if sock is not None and sock.flow is not None:
                    sock.flow.reset()
                return None
            return amqp.encode_nack(channel, delivery_tag)
        pending.append((channel, delivery_tag, b""))
        self.published += 1
        return amqp.encode_ack(channel, delivery_tag)

    def _worker_socket(self, worker: WorkerContext):
        # The serving socket is the most recently accepted one owned by
        # this process; resets act on the connection being served.
        table = self.kernel._fd_tables.get(self.process.pid, {})
        if not table:
            return None
        last_fd = max(table)
        return table[last_fd]

    # -- metrics export (Prometheus-style, §3.4) -----------------------------

    def start_metrics_exporter(self, metrics_db, interval: float = 0.5,
                               tags: Optional[dict] = None) -> None:
        """Periodically export queue depth with this pod's resource tags."""
        export_tags = dict(tags or {})
        if self.pod is not None:
            export_tags.setdefault("pod", self.pod.name)
        export_tags.setdefault("app", "rabbitmq")

        def exporter() -> Generator:
            """Periodic metric export loop."""
            while self.running:
                yield interval
                metrics_db.record("rabbitmq.queue_depth", export_tags,
                                  self.sim.now, float(self.total_depth()))
                metrics_db.record("rabbitmq.nacked_total", export_tags,
                                  self.sim.now, float(self.nacked))

        self.sim.spawn(exporter(), name=f"{self.name}:metrics")


class ConsumerService(Component):
    """A worker service consuming basic.deliver pushes from the broker."""

    def __init__(self, name: str, node: Node, port: int,
                 pod: Optional[Pod] = None, *,
                 process_time: float = 0.001, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.process_time = process_time
        self.consumed = 0

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = amqp.AmqpSpec().parse(data)
        if parsed is None or parsed.operation != "basic.deliver":
            return None
        if self.process_time:
            yield from worker.work(self.process_time)
        self.consumed += 1
        channel = (parsed.stream_id or 0) >> 32
        delivery_tag = (parsed.stream_id or 0) & 0xFFFFFFFF
        return amqp.encode_ack(channel, delivery_tag)


def publish(worker: WorkerContext, broker_ip: str, broker_port: int,
            channel: int, delivery_tag: int, queue: str,
            body: bytes = b"") -> Generator:
    """Client helper: publish one message, await the broker's ack/nack.

    Returns the parsed response message; raises ConnectionResetError when
    the broker resets the connection (the backlog failure mode).
    """
    payload = amqp.encode_publish(channel, delivery_tag, queue, body)
    raw = yield from worker.call_raw(broker_ip, broker_port, payload)
    return amqp.AmqpSpec().parse(raw)
