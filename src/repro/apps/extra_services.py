"""Additional protocol backends: Kafka, MQTT, Dubbo, HTTP/2.

Together with :mod:`repro.apps.services` (DNS/Redis/MySQL) and the HTTP
runtime, these cover every protocol the agent can infer, so integration
tests can drive genuine traffic of each format through the full tracing
pipeline.
"""

from __future__ import annotations

import struct
from typing import Callable, Generator, Optional

from repro.apps.runtime import Component, WorkerContext
from repro.network.topology import Node, Pod
from repro.protocols import dubbo, grpc, http2, kafka, mqtt


class KafkaService(Component):
    """A broker node answering Produce/Fetch/Metadata requests."""

    def __init__(self, name: str, node: Node, port: int = 9092,
                 pod: Optional[Pod] = None, *,
                 op_time: float = 0.0005, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.op_time = op_time
        self.topics: dict[str, int] = {}  # topic -> message count
        self.requests_served = 0

    def message_complete(self, buffer: bytes) -> bool:
        """Whether *buffer* holds one full request."""
        if len(buffer) < 4:
            return False
        size = struct.unpack(">i", buffer[:4])[0]
        return len(buffer) >= size + 4

    def split_message(self, buffer: bytes) -> tuple[bytes, bytes]:
        """Split one size-prefixed frame off the front."""
        size = struct.unpack(">i", buffer[:4])[0]
        return buffer[:size + 4], buffer[size + 4:]

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = kafka.KafkaSpec().parse(data)
        if parsed is None or parsed.stream_id is None:
            return None
        if self.op_time:
            yield from worker.work(self.op_time)
        self.requests_served += 1
        topic = parsed.resource
        if parsed.operation == "Produce":
            self.topics[topic] = self.topics.get(topic, 0) + 1
            return kafka.encode_response(parsed.stream_id)
        if parsed.operation == "Fetch":
            error = (kafka.ERROR_NONE if topic in self.topics
                     else kafka.ERROR_UNKNOWN_TOPIC)
            return kafka.encode_response(parsed.stream_id, error)
        return kafka.encode_response(parsed.stream_id)


class MqttBroker(Component):
    """An MQTT broker acknowledging QoS-1 publishes and subscribes."""

    def __init__(self, name: str, node: Node, port: int = 1883,
                 pod: Optional[Pod] = None, *,
                 op_time: float = 0.0003, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.op_time = op_time
        self.retained: dict[str, bytes] = {}
        self.subscriptions: list[str] = []
        self.fail_topic: Optional[str] = None

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = mqtt.MqttSpec().parse(data)
        if parsed is None:
            return None
        if self.op_time:
            yield from worker.work(self.op_time)
        if parsed.operation == "PUBLISH" and parsed.stream_id is not None:
            success = parsed.resource != self.fail_topic
            if success:
                self.retained[parsed.resource] = b""
            return mqtt.encode_puback(parsed.stream_id, success=success)
        if parsed.operation == "SUBSCRIBE":
            self.subscriptions.append(parsed.resource)
            return mqtt.encode_suback(parsed.stream_id)
        return None


class DubboService(Component):
    """An RPC provider answering Dubbo two-way invocations."""

    def __init__(self, name: str, node: Node, port: int = 20880,
                 pod: Optional[Pod] = None, *,
                 invoke_time: float = 0.001, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.invoke_time = invoke_time
        self.methods: dict[str, Callable[[], bytes]] = {}
        self.invocations = 0

    def register_method(self, method: str,
                        result: bytes = b"ok") -> None:
        """Register an RPC method returning *result*."""
        self.methods[method] = lambda: result

    def message_complete(self, buffer: bytes) -> bool:
        """Whether *buffer* holds one full request."""
        if len(buffer) < 16:
            return False
        body_len = struct.unpack(">I", buffer[12:16])[0]
        return len(buffer) >= 16 + body_len

    def split_message(self, buffer: bytes) -> tuple[bytes, bytes]:
        """Split one Dubbo frame off the front."""
        body_len = struct.unpack(">I", buffer[12:16])[0]
        return buffer[:16 + body_len], buffer[16 + body_len:]

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = dubbo.DubboSpec().parse(data)
        if parsed is None or parsed.stream_id is None:
            return None
        if self.invoke_time:
            yield from worker.work(self.invoke_time)
        self.invocations += 1
        handler = self.methods.get(parsed.operation)
        if handler is None:
            return dubbo.encode_response(parsed.stream_id,
                                         dubbo.STATUS_SERVER_ERROR)
        return dubbo.encode_response(parsed.stream_id, body=handler())


class GrpcService(Component):
    """A unary gRPC server: register handlers per Service/Method."""

    def __init__(self, name: str, node: Node, port: int = 50051,
                 pod: Optional[Pod] = None, *,
                 call_time: float = 0.001, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.call_time = call_time
        self._methods: dict[tuple[str, str], Callable] = {}
        self.calls = 0

    def register(self, service: str, method: str,
                 handler: Callable[[bytes], tuple[int, bytes]]) -> None:
        """``handler(request_bytes) -> (grpc_status, response_bytes)``."""
        self._methods[(service, method)] = handler

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = grpc.GrpcSpec().parse(data)
        if parsed is None or parsed.stream_id is None:
            return None
        if self.call_time:
            yield from worker.work(self.call_time)
        self.calls += 1
        handler = self._methods.get((parsed.resource, parsed.operation))
        if handler is None:
            return grpc.encode_response(parsed.stream_id,
                                        grpc.NOT_FOUND)
        status, message = handler(b"")
        return grpc.encode_response(parsed.stream_id, status,
                                    message=message)


class Http2Service(Component):
    """An HTTP/2 service answering one stream per request message."""

    def __init__(self, name: str, node: Node, port: int = 8443,
                 pod: Optional[Pod] = None, *,
                 service_time: float = 0.001, **kwargs):
        super().__init__(name, node, port, pod, **kwargs)
        self.service_time_h2 = service_time
        self._routes: list[tuple[str, Callable]] = []

    def route(self, prefix: str):
        """Decorator registering a handler for a path prefix."""
        def register(handler):
            """Register a handler."""
            self._routes.append((prefix, handler))
            return handler

        return register

    def handle_payload(self, worker: WorkerContext,
                       data: bytes) -> Generator:
        """Process one request; returns the response bytes."""
        parsed = http2.Http2Spec().parse(data)
        if parsed is None or parsed.stream_id is None:
            return None
        if self.service_time_h2:
            yield from worker.work(self.service_time_h2)
        for prefix, handler in self._routes:
            if parsed.resource.startswith(prefix):
                status, body = yield from handler(worker, parsed)
                return http2.encode_response(status, parsed.stream_id,
                                             body=body)
        return http2.encode_response(404, parsed.stream_id)
