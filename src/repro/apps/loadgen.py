"""wrk2-style constant-throughput load generator.

Like wrk2 [133], requests are scheduled on a fixed cadence *independently
of completions*, and latency is measured from the scheduled start time —
correcting for coordinated omission, so a stalling server inflates the
recorded latency instead of silently thinning the load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.runtime import (
    decode_http_response,
    http_message_complete,
)
from repro.network.topology import Node, Pod
from repro.protocols import http1


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    offered_rate: float
    duration: float
    sent: int = 0
    completed: int = 0
    errors: int = 0
    #: Wall time actually taken to finish every scheduled request; under
    #: overload this exceeds *duration* (the backlog drains late).
    elapsed: float = 0.0
    latencies: list = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Achieved completions per second of actual elapsed time."""
        window = self.elapsed or self.duration
        if window <= 0:
            return 0.0
        return self.completed / window

    def percentile(self, p: float) -> float:
        """The *p*-th percentile latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p90(self) -> float:
        """90th-percentile latency."""
        return self.percentile(90)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        """Arithmetic mean latency."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class LoadGenerator:
    """Drives an HTTP target at a constant offered rate."""

    def __init__(self, node: Node, target_ip: str, target_port: int, *,
                 rate: float, duration: float, connections: int = 8,
                 method: str = "GET", path: str = "/",
                 headers: Optional[dict[str, str]] = None,
                 pod: Optional[Pod] = None,
                 name: str = "wrk2",
                 ingress_abi: str = "read", egress_abi: str = "write"):
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        self.node = node
        self.kernel = node.kernel
        self.sim = node.kernel.sim
        self.target = (target_ip, target_port)
        self.rate = rate
        self.duration = duration
        self.connections = connections
        self.method = method
        self.path = path
        self.headers = dict(headers or {})
        self.name = name
        self.ip = pod.ip if pod is not None else node.ip
        self.ingress_abi = ingress_abi
        self.egress_abi = egress_abi
        self._next_slot = 0
        self._start_time = 0.0

    def run(self):
        """Spawn the run; the returned process's result is a LoadReport."""
        return self.sim.spawn(self._run(), name=f"{self.name}:run")

    def _run(self) -> Generator:
        report = LoadReport(offered_rate=self.rate, duration=self.duration)
        self._start_time = self.sim.now
        self._next_slot = 0
        process = self.kernel.create_process(self.name, self.ip)
        workers = []
        for _ in range(self.connections):
            thread = self.kernel.create_thread(process)
            workers.append(self.sim.spawn(
                self._connection_loop(thread, report),
                name=f"{self.name}:conn"))
        yield self.sim.all_of([worker.done_event for worker in workers])
        report.elapsed = self.sim.now - self._start_time
        return report

    def _take_slot(self) -> Optional[float]:
        """Next scheduled request start time, or None past the deadline."""
        scheduled = self._start_time + self._next_slot / self.rate
        if scheduled >= self._start_time + self.duration:
            return None
        self._next_slot += 1
        return scheduled

    def _connection_loop(self, thread, report: LoadReport) -> Generator:
        kernel = self.kernel
        fd = None
        payload = http1.encode_request(self.method, self.path,
                                       headers=self.headers,
                                       host=f"{self.target[0]}")
        while True:
            scheduled = self._take_slot()
            if scheduled is None:
                break
            if scheduled > self.sim.now:
                yield scheduled - self.sim.now
            report.sent += 1
            try:
                if fd is None:
                    fd = yield from kernel.connect(thread, *self.target)
                yield from kernel.send_abi(self.egress_abi, thread, fd,
                                           payload)
                buffer = b""
                while True:
                    data = yield from kernel.recv_abi(self.ingress_abi,
                                                      thread, fd)
                    if not data:
                        raise ConnectionError("closed mid-response")
                    buffer += data
                    if http_message_complete(buffer):
                        break
                response = decode_http_response(buffer)
                latency = self.sim.now - scheduled
                report.latencies.append(latency)
                if response.status_code >= 400:
                    report.errors += 1
                else:
                    report.completed += 1
            except (ConnectionError, ConnectionResetError,
                    BrokenPipeError, ConnectionRefusedError):
                report.errors += 1
                if fd is not None:
                    try:
                        kernel.close(thread, fd)
                    except Exception:  # noqa: BLE001
                        pass
                fd = None
        if fd is not None:
            try:
                kernel.close(thread, fd)
            except Exception:  # noqa: BLE001
                pass
