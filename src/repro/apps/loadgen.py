"""wrk2-style constant-throughput load generator.

Like wrk2 [133], requests are scheduled on a fixed cadence *independently
of completions*, and latency is measured from the scheduled start time —
correcting for coordinated omission, so a stalling server inflates the
recorded latency instead of silently thinning the load.

Two drive modes:

* the default closed-ish loop — each connection pipelines one request at
  a time and waits for its response (still cadence-scheduled);
* :meth:`LoadGenerator.ramp` — fully *open-loop*: senders emit requests
  on a linearly accelerating schedule without ever waiting for
  responses, and dedicated readers drain and match responses FIFO.
  Overload experiments need this mode: a closed loop self-throttles the
  moment the target saturates, while the ramp keeps pushing and
  deterministically overruns the agent under test.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.apps.runtime import (
    decode_http_response,
    http_message_complete,
    http_message_length,
)
from repro.network.topology import Node, Pod
from repro.protocols import http1


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    offered_rate: float
    duration: float
    sent: int = 0
    completed: int = 0
    errors: int = 0
    #: Wall time actually taken to finish every scheduled request; under
    #: overload this exceeds *duration* (the backlog drains late).
    elapsed: float = 0.0
    latencies: list = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Achieved completions per second of actual elapsed time."""
        window = self.elapsed or self.duration
        if window <= 0:
            return 0.0
        return self.completed / window

    def percentile(self, p: float) -> float:
        """The *p*-th percentile latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
        return ordered[index]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50)

    @property
    def p90(self) -> float:
        """90th-percentile latency."""
        return self.percentile(90)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99)

    @property
    def mean_latency(self) -> float:
        """Arithmetic mean latency."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class LoadGenerator:
    """Drives an HTTP target at a constant offered rate."""

    def __init__(self, node: Node, target_ip: str, target_port: int, *,
                 rate: float, duration: float, connections: int = 8,
                 method: str = "GET", path: str = "/",
                 headers: Optional[dict[str, str]] = None,
                 pod: Optional[Pod] = None,
                 name: str = "wrk2",
                 ingress_abi: str = "read", egress_abi: str = "write"):
        if rate <= 0 or duration <= 0:
            raise ValueError("rate and duration must be positive")
        self.node = node
        self.kernel = node.kernel
        self.sim = node.kernel.sim
        self.target = (target_ip, target_port)
        self.rate = rate
        self.duration = duration
        self.connections = connections
        self.method = method
        self.path = path
        self.headers = dict(headers or {})
        self.name = name
        self.ip = pod.ip if pod is not None else node.ip
        self.ingress_abi = ingress_abi
        self.egress_abi = egress_abi
        self._next_slot = 0
        self._start_time = 0.0
        self._ramp: Optional[tuple[float, float, float]] = None
        self._drain_grace = 2.0

    def ramp(self, start_rps: float, end_rps: float,
             duration: float, *, drain_grace: float = 2.0) \
            -> "LoadGenerator":
        """Switch to open-loop ramp mode: the offered rate rises linearly
        from *start_rps* to *end_rps* over *duration* seconds.

        Senders never wait for responses, so the schedule holds even when
        the target (or the agent observing it) falls over — the overrun
        is deterministic, not negotiated by backpressure.  After the last
        request is sent the run waits up to *drain_grace* seconds for
        in-flight responses, then stops reading.  Returns ``self``.
        """
        if start_rps < 0 or end_rps <= 0 or duration <= 0:
            raise ValueError("need start_rps >= 0, end_rps > 0, "
                             "duration > 0")
        if start_rps == 0 and end_rps == start_rps:
            raise ValueError("ramp needs a positive rate somewhere")
        self._ramp = (start_rps, end_rps, duration)
        self.duration = duration
        self.rate = (start_rps + end_rps) / 2.0
        self._drain_grace = drain_grace
        return self

    def run(self):
        """Spawn the run; the returned process's result is a LoadReport."""
        body = self._run_open() if self._ramp is not None else self._run()
        return self.sim.spawn(body, name=f"{self.name}:run")

    def _run(self) -> Generator:
        report = LoadReport(offered_rate=self.rate, duration=self.duration)
        self._start_time = self.sim.now
        self._next_slot = 0
        process = self.kernel.create_process(self.name, self.ip)
        workers = []
        for _ in range(self.connections):
            thread = self.kernel.create_thread(process)
            workers.append(self.sim.spawn(
                self._connection_loop(thread, report),
                name=f"{self.name}:conn"))
        yield self.sim.all_of([worker.done_event for worker in workers])
        report.elapsed = self.sim.now - self._start_time
        return report

    def _slot_time(self, index: int) -> float:
        """Offset of slot *index* from the run start.

        Constant mode spaces slots evenly; ramp mode inverts the
        cumulative-count integral N(t) = start·t + accel·t²/2 (a closed
        form, so the schedule is exact and deterministic).
        """
        if self._ramp is None:
            return index / self.rate
        start, end, duration = self._ramp
        accel = (end - start) / duration
        if accel == 0.0:
            return index / start
        return (((start * start + 2.0 * accel * index) ** 0.5 - start)
                / accel)

    def _take_slot(self) -> Optional[float]:
        """Next scheduled request start time, or None past the deadline."""
        offset = self._slot_time(self._next_slot)
        if offset >= self.duration:
            return None
        self._next_slot += 1
        return self._start_time + offset

    def _connection_loop(self, thread, report: LoadReport) -> Generator:
        kernel = self.kernel
        fd = None
        payload = http1.encode_request(self.method, self.path,
                                       headers=self.headers,
                                       host=f"{self.target[0]}")
        while True:
            scheduled = self._take_slot()
            if scheduled is None:
                break
            if scheduled > self.sim.now:
                yield scheduled - self.sim.now
            report.sent += 1
            try:
                if fd is None:
                    fd = yield from kernel.connect(thread, *self.target)
                yield from kernel.send_abi(self.egress_abi, thread, fd,
                                           payload)
                buffer = b""
                while True:
                    data = yield from kernel.recv_abi(self.ingress_abi,
                                                      thread, fd)
                    if not data:
                        raise ConnectionError("closed mid-response")
                    buffer += data
                    if http_message_complete(buffer):
                        break
                response = decode_http_response(buffer)
                latency = self.sim.now - scheduled
                report.latencies.append(latency)
                if response.status_code >= 400:
                    report.errors += 1
                else:
                    report.completed += 1
            except (ConnectionError, ConnectionResetError,
                    BrokenPipeError, ConnectionRefusedError):
                report.errors += 1
                if fd is not None:
                    try:
                        kernel.close(thread, fd)
                    except Exception:  # noqa: BLE001
                        pass
                fd = None
        if fd is not None:
            try:
                kernel.close(thread, fd)
            except Exception:  # noqa: BLE001
                pass

    # -- open-loop ramp mode ---------------------------------------------

    def _run_open(self) -> Generator:
        """Open-loop drive: per connection, a sender pushes requests on
        the ramp schedule while a dedicated reader drains responses."""
        report = LoadReport(offered_rate=self.rate, duration=self.duration)
        self._start_time = self.sim.now
        self._next_slot = 0
        process = self.kernel.create_process(self.name, self.ip)
        senders = []
        readers = []
        pendings: list[deque] = []
        fds: list[tuple] = []
        for index in range(self.connections):
            # Distinct kernel threads for the send and receive sides, so
            # the (pid, tid) one-syscall-at-a-time rule holds per side.
            send_thread = self.kernel.create_thread(process)
            read_thread = self.kernel.create_thread(process)
            fd = yield from self.kernel.connect(send_thread, *self.target)
            fds.append((send_thread, fd))
            pending: deque = deque()
            pendings.append(pending)
            senders.append(self.sim.spawn(
                self._sender_loop(send_thread, fd, pending, report),
                name=f"{self.name}:send{index}"))
            readers.append(self.sim.spawn(
                self._reader_loop(read_thread, fd, pending, report),
                name=f"{self.name}:read{index}"))
        yield self.sim.all_of([sender.done_event for sender in senders])
        deadline = self.sim.now + self._drain_grace
        while any(pendings) and self.sim.now < deadline:
            yield min(0.05, deadline - self.sim.now)
        for reader in readers:
            reader.kill()
        # Clean close after the drain: every response the server sent has
        # been read, so the close events let observing agents promptly
        # fail any *half-observed* exchange instead of holding it open.
        for thread, fd in fds:
            try:
                self.kernel.close(thread, fd)
            except Exception:  # noqa: BLE001
                pass
        report.elapsed = self.sim.now - self._start_time
        return report

    def _sender_loop(self, thread, fd, pending: deque,
                     report: LoadReport) -> Generator:
        """Emit requests on the schedule, never waiting for responses."""
        kernel = self.kernel
        payload = http1.encode_request(self.method, self.path,
                                       headers=self.headers,
                                       host=f"{self.target[0]}")
        while True:
            scheduled = self._take_slot()
            if scheduled is None:
                break
            if scheduled > self.sim.now:
                yield scheduled - self.sim.now
            report.sent += 1
            pending.append(scheduled)
            try:
                yield from kernel.send_abi(self.egress_abi, thread, fd,
                                           payload)
            except (ConnectionError, ConnectionResetError,
                    BrokenPipeError, ConnectionRefusedError):
                pending.pop()
                report.errors += 1
                break

    def _reader_loop(self, thread, fd, pending: deque,
                     report: LoadReport) -> Generator:
        """Drain the socket, splitting pipelined responses and matching
        them FIFO against the sender's scheduled start times."""
        kernel = self.kernel
        buffer = b""
        while True:
            try:
                data = yield from kernel.recv_abi(self.ingress_abi,
                                                  thread, fd)
            except (ConnectionError, ConnectionResetError,
                    BrokenPipeError):
                return
            if not data:
                return
            buffer += data
            while True:
                length = http_message_length(buffer)
                if length is None:
                    break
                message = buffer[:length]
                buffer = buffer[length:]
                response = decode_http_response(message)
                if not pending:
                    continue  # unsolicited data; nothing to account
                scheduled = pending.popleft()
                report.latencies.append(self.sim.now - scheduled)
                if response.status_code >= 400:
                    report.errors += 1
                else:
                    report.completed += 1
