"""Sharded multi-tenant span store with scatter-gather trace assembly.

DeepFlow's server tier scales ingest and query by partitioning span
storage across nodes while Algorithm 1 still has to stitch whole traces
across partition boundaries.  :class:`ShardedSpanStore` reproduces that
architecture in-process: N independent :class:`repro.server.database.
SpanStore` shards, a stateless hash router, and a boundary-key layer
that records association keys observed on more than one shard so
``trace()`` can merge per-shard union-find components into the global
component — the exact cross-partition correlation problem CrossTrace
(arXiv:2508.11342) isolates: association keys do not respect partition
edges, so assembly must merge components across shards rather than
assume locality.

Routing
-------
A span routes by a stable hash of its *primary* association key (first
present axis in a fixed priority order: systrace id, X-Request-ID,
third-party trace id, per-flow request sequence, pseudo-thread, queue
message key, falling back to the span id) mixed with a **time-window
index** (``start_time // window``), so one shard owns one key's spans
within one window and windows can later seal into immutable runs.  A
tenant label, when given, salts the hash so tenants spread independently.
The router is stateless — no global span→shard map is maintained; point
lookups probe the shards (queries are orders of magnitude rarer than
inserts, and keeping ingest memory flat is the point of sharding).

Each shard keeps its own write-optimized memtable discipline: routing a
batch costs one hash per span, and the shard-side insert stays register
+ tail append.  All index maintenance still commits lazily per shard.

Boundary keys and scatter-gather trace()
----------------------------------------
Because routing uses one key and windowing splits even that key across
time, spans sharing *any* association key can land on different shards.
Each shard's key commit logs the keys it sees for the **first time**
(one event per distinct key per shard, piggy-backed on the posting
creation it already performs); the router buckets those events by a
stable hash of the key into *boundary partitions* (the model of a
hash-partitioned association-key service), and each partition's table
maps key → first owning (shard, span).  A key observed from a second
shard contributes one link to a small cross-shard union-find over span
ids.  ``component_ids`` then runs scatter-gather: fetch the start
span's per-shard component, follow boundary links to components on
other shards, and repeat to the fixed point.  The merged component
provably equals what a single unsharded store returns (the boundary
links restore exactly the cross-shard shared-key edges; the property
tests in tests/test_trace_index_properties.py hold the two in lock
step for shard counts up to 8).

The seal/merge phases are exposed separately (:meth:`seal_shard`,
:meth:`probe_partition`, :meth:`apply_boundary_links`) so the scaling
benchmark can price each parallelizable phase on its own; callers that
don't care use :meth:`flush` or just query (queries trigger the commits
they need, same as the unsharded store).
"""

from __future__ import annotations

import heapq
import zlib
from typing import Callable, Iterable, Optional

from repro.core.metrics import Counter, PipelineMetrics
from repro.core.span import Span
from repro.server.database import AssociationFilter, SpanStore
from repro.server.index import TraceGraphIndex

__all__ = ["DEFAULT_WINDOW", "MAX_SHARDS", "ShardedSpanStore"]

#: Default routing time-window, seconds.  Matches the agent's default
#: session slot: one window of one key's spans lands on one shard.
DEFAULT_WINDOW = 60.0

#: Shard indexes are packed into the low bits of the boundary owner
#: table's values, so the fleet size is bounded (generously).
MAX_SHARDS = 64

#: Knuth/Fibonacci multiplicative mixers for integer routing keys.
_MIX_KEY = 0x9E3779B1
_MIX_WINDOW = 0x85EBCA6B


def _slow_route_hash(value: object) -> int:
    """Stable hash for the rare non-int routing keys (tuples: the
    pseudo-thread key, the flow key).  Allocates; the router's fast
    path never reaches here for spans carrying an integer axis."""
    return zlib.crc32(repr(value).encode("utf-8", "surrogatepass"))


def _partition_hash(tag: str, value: object) -> int:
    """Stable partition index source for one tagged boundary key."""
    if value.__class__ is int:
        inner = value * _MIX_KEY
    else:
        inner = zlib.crc32(repr(value).encode("utf-8", "surrogatepass"))
    return zlib.crc32(tag.encode("ascii")) ^ (inner & 0xFFFFFFFF)


class ShardedSpanStore:
    """N-way sharded span store presenting the ``SpanStore`` query API.

    Drop-in for :class:`repro.server.assembler.TraceAssembler`: both the
    union-find fast path (``component_spans``) and the iterative
    Algorithm 1 reference (``get`` / ``search_new``) work unchanged,
    the latter fanning each round's frontier keys out to every shard.
    """

    def __init__(self, shard_count: int = 4, *,
                 window: float = DEFAULT_WINDOW,
                 boundary_partitions: Optional[int] = None,
                 metrics: Optional[PipelineMetrics] = None) -> None:
        if not 1 <= shard_count <= MAX_SHARDS:
            raise ValueError(
                f"shard_count must be in [1, {MAX_SHARDS}]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.shard_count = shard_count
        self.window = window
        self.partition_count = boundary_partitions or shard_count
        if self.partition_count < 1:
            raise ValueError("boundary_partitions must be >= 1")
        self.shards: list[SpanStore] = []
        for _ in range(shard_count):
            shard = SpanStore()
            # Arm the first-seen-key log: the boundary layer consumes it.
            shard.first_seen_keys = []
            self.shards.append(shard)
        #: Cross-shard union-find over span ids; only spans whose key was
        #: observed on a second shard ever enter it.
        self.boundary = TraceGraphIndex()
        #: Per-partition boundary-key table: tagged key → packed
        #: ``(span_id << 6) | shard_index`` of the first observer.
        self._owners: list[dict[tuple, int]] = [
            {} for _ in range(self.partition_count)]
        #: Per-partition buckets of (tag, value, span_id, shard) events
        #: sealed but not yet probed.
        self._buckets: list[list[tuple]] = [
            [] for _ in range(self.partition_count)]
        self.search_count = 0
        #: Cross-shard links applied so far (observability: how much of
        #: the keyspace actually straddles shards).
        self.boundary_links = 0
        # Shard-routing self-metrics; standalone counters when no
        # registry is shared, so the ingest path has no None-check.
        if metrics is not None:
            self._m_routed = metrics.counter(
                "router.spans_routed", "spans hashed to a shard")
            self._m_boundary = metrics.counter(
                "router.boundary_links",
                "cross-shard links merged into the boundary forest")
        else:
            self._m_routed = Counter("router.spans_routed")
            self._m_boundary = Counter("router.boundary_links")

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- routing -----------------------------------------------------------

    def _route(self, span: Span, salt: int) -> int:
        """Shard index for one span: primary-key hash × time window.

        Allocation-free on the common path — integer axes mix with
        multiplicative constants; only tuple-keyed spans fall through to
        the (cold) repr/crc32 helper.
        """
        window = int(span.start_time / self.window)
        value = span.systrace_id
        if value is not None:
            h = value * _MIX_KEY
        else:
            text = span.x_request_id
            if text:
                h = zlib.crc32(text.encode("utf-8"))
            else:
                text = span.otel_trace_id
                if text:
                    h = zlib.crc32(text.encode("utf-8"))
                elif span.flow_key is not None \
                        and span.req_tcp_seq is not None:
                    h = (_slow_route_hash(span.flow_key)
                         + span.req_tcp_seq * _MIX_KEY)
                elif span.pseudo_thread_key:
                    h = _slow_route_hash(span.pseudo_thread_key)
                elif span.message_id is not None:
                    h = span.message_id * _MIX_KEY
                else:
                    h = span.span_id * _MIX_KEY
        h += window * _MIX_WINDOW + salt
        h ^= h >> 16
        return h % self.shard_count

    @staticmethod
    def _tenant_salt(tenant: Optional[str]) -> int:
        """Routing salt for a tenant label (0 for the default tenant)."""
        if not tenant:
            return 0
        return zlib.crc32(tenant.encode("utf-8"))

    def route_batches(self, spans: Iterable[Span],
                      tenant: Optional[str] = None) -> list[list[Span]]:
        """Partition *spans* into per-shard insert batches (pure)."""
        batches: list[list[Span]] = [[] for _ in range(self.shard_count)]
        salt = self._tenant_salt(tenant)
        route = self._route
        for span in spans:
            batches[route(span, salt)].append(span)
        return batches

    # -- ingest ------------------------------------------------------------

    def insert(self, span: Span, tenant: Optional[str] = None) -> None:
        """Route and register one span."""
        self.insert_many((span,), tenant=tenant)

    def insert_many(self, spans: Iterable[Span],
                    tenant: Optional[str] = None) -> None:
        """Route each span and register it with its shard.

        Ingest pays one routing hash plus the shard's register + tail
        append per span; every index — per-shard secondary indexes,
        per-shard union-find, time runs, and the cross-shard boundary
        table — catches up lazily when a query (or :meth:`flush`) needs
        it.  When *tenant* is given the label is stamped into
        ``span.tags`` and salted into the route.

        Duplicate span ids are rejected per shard (same guarantee a
        distributed deployment can give without a global id service);
        two *different* spans reusing one id may land on two shards
        undetected — span ids are allocator-unique by construction.
        """
        salt = self._tenant_salt(tenant)
        shards = self.shards
        route = self._route
        if tenant:
            routed = 0
            for span in spans:
                span.tags.setdefault("tenant", tenant)
                shards[route(span, salt)].insert(span)
                routed += 1
            self._m_routed.inc(routed)
            return
        # Batch per shard so each shard's insert_many runs one tight
        # loop (duplicate check + append) over its share.
        batches = self.route_batches(spans)
        routed = 0
        for shard, batch in zip(shards, batches):
            if batch:
                shard.insert_many(batch)
                routed += len(batch)
        self._m_routed.inc(routed)

    # -- commit / seal phases ---------------------------------------------

    def seal_shard(self, shard_index: int) -> int:
        """Commit one shard's deferred indexes and bucket its first-seen
        keys by boundary partition.  Returns the number of key events
        sealed.  Per-shard work: in the modeled deployment every shard
        server runs this phase in parallel."""
        shard = self.shards[shard_index]
        shard.flush()
        log = shard.first_seen_keys
        if not log:
            return 0
        shard.first_seen_keys = []
        buckets = self._buckets
        count = self.partition_count
        sealed = 0
        for tag, value, span_id in log:
            index = _partition_hash(tag, value) % count
            buckets[index].append((tag, value, span_id, shard_index))
            sealed += 1
        return sealed

    def probe_partition(self, partition: int) -> list[tuple[int, int]]:
        """Probe one boundary partition's owner table with its sealed key
        events; returns the cross-shard links discovered.  Per-partition
        work: partitions model independent slices of a hash-partitioned
        association-key service and run in parallel in the deployment
        this reproduces."""
        bucket = self._buckets[partition]
        if not bucket:
            return []
        self._buckets[partition] = []
        owners = self._owners[partition]
        links: list[tuple[int, int]] = []
        links_append = links.append
        for tag, value, span_id, shard_index in bucket:
            key = (tag, value)
            packed = owners.get(key)
            if packed is None:
                owners[key] = (span_id << 6) | shard_index
            elif (packed & 63) != shard_index:
                # Key straddles shards: link this shard's first carrier
                # to the owning shard's representative.
                links_append((span_id, packed >> 6))
            # Same-shard re-observation cannot happen (the shard logs a
            # key once), so any other case is already linked.
        return links

    def apply_boundary_links(self,
                             links: Iterable[tuple[int, int]]) -> None:
        """Merge discovered cross-shard links into the boundary forest."""
        links = list(links)
        if links:
            self.boundary.link_batch(links)
            self.boundary_links += len(links)
            self._m_boundary.inc(len(links))

    def merge_boundaries(self) -> None:
        """Run every partition probe and apply the discovered links."""
        for partition in range(self.partition_count):
            links = self.probe_partition(partition)
            if links:
                self.boundary.link_batch(links)
                self.boundary_links += len(links)
                self._m_boundary.inc(len(links))

    def flush(self) -> None:
        """Force all deferred maintenance: shard commits, boundary seal,
        partition probes, and the cross-shard merge."""
        for shard_index in range(self.shard_count):
            self.seal_shard(shard_index)
        self.merge_boundaries()

    def _ensure_traceable(self) -> None:
        """Bring key indexes and the boundary forest up to date (the
        lazy-commit step trace queries trigger)."""
        dirty = False
        for shard_index, shard in enumerate(self.shards):
            if shard.first_seen_keys or shard.pending_key_count():
                shard.commit_keys()
                log = shard.first_seen_keys
                if log:
                    shard.first_seen_keys = []
                    buckets = self._buckets
                    count = self.partition_count
                    for tag, value, span_id in log:
                        index = _partition_hash(tag, value) % count
                        buckets[index].append(
                            (tag, value, span_id, shard_index))
                dirty = True
        if dirty or any(self._buckets):
            self.merge_boundaries()

    # -- component-changed events (continuous pipeline) ---------------------

    def arm_component_events(self) -> None:
        """Arm the link-event sinks: every per-shard union-find *and*
        the cross-shard boundary forest.  The continuous assembler then
        sees intra-shard merges and cross-shard merges through one
        drain.  Idempotent."""
        for shard in self.shards:
            shard.arm_component_events()
        if self.boundary.events is None:
            self.boundary.events = []

    def take_component_events(self) -> list[tuple[int, int]]:
        """Commit pending work on every shard, merge boundaries, and
        drain the accumulated link events from all forests.

        Per-shard events come first (their spans must exist before a
        cross-shard link can cite them), then boundary links — each as
        "span *a* joined span *b*'s component".
        """
        self._ensure_traceable()
        out: list[tuple[int, int]] = []
        for shard in self.shards:
            events = shard.graph.events
            if events:
                out.extend(events)
                shard.graph.events = []
        events = self.boundary.events
        if events:
            out.extend(events)
            self.boundary.events = []
        return out

    # -- point lookups -----------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        """Fetch a span by id, probing the shards."""
        for shard in self.shards:
            span = shard.get(span_id)
            if span is not None:
                return span
        return None

    def shard_of(self, span_id: int) -> Optional[int]:
        """Which shard holds *span_id* (None if unknown)."""
        for index, shard in enumerate(self.shards):
            if shard.get(span_id) is not None:
                return index
        return None

    def all_spans(self) -> list[Span]:
        """Every stored span across all shards."""
        out: list[Span] = []
        for shard in self.shards:
            out.extend(shard.all_spans())
        return out

    # -- Algorithm 1 support (scatter-gather) ------------------------------

    def component_ids(self, span_id: int) -> set[int]:
        """The span's whole trace component, merged across shards.

        Scatter-gather fixed point: start with the owning shard's local
        union-find component, then follow boundary links to components
        on other shards until no new span appears.  Cost is O(result)
        dict probes — independent of total store size, preserving the
        flat Fig-15 query-delay curve under sharding.
        """
        home = self._owning_store(span_id)
        if home is None:
            raise KeyError(f"unknown span id {span_id}")
        self._ensure_traceable()
        boundary = self.boundary
        linked = boundary.linked_ids()
        component = boundary.component
        result: set[int] = set()
        stack = [span_id]
        store = home
        while stack:
            current = stack.pop()
            if current in result:
                continue
            if current != span_id:
                store = self._owning_store(current)
                if store is None:  # boundary rep of a foreign tenant? no:
                    continue       # defensive — links only cite stored ids
            local = store.component_ids(current)
            result |= local
            for member in local:
                if member in linked:
                    for other in component(member):
                        if other not in result:
                            stack.append(other)
        return result

    def component_spans(self, span_id: int) -> list[Span]:
        """Every span in *span_id*'s merged cross-shard component."""
        get = self.get
        return [get(member) for member in self.component_ids(span_id)]

    def _owning_store(self, span_id: int) -> Optional[SpanStore]:
        for shard in self.shards:
            if shard.get(span_id) is not None:
                return shard
        return None

    def search(self, assoc: AssociationFilter,
               tenant: Optional[str] = None) -> set[int]:
        """Scatter one Algorithm 1 filter to every shard; union the
        matches (optionally restricted to one tenant's spans)."""
        self.search_count += 1
        result: set[int] = set()
        for shard in self.shards:
            result |= shard.search(assoc)
        if tenant is not None:
            get = self.get
            result = {span_id for span_id in result
                      if (span := get(span_id)) is not None
                      and span.tags.get("tenant") == tenant}
        return result

    def search_new(self, assoc: AssociationFilter) -> set[int]:
        """Scatter the filter's not-yet-queried keys to every shard.

        The pending frontier is drained once and broadcast, so the
        iterative reference path costs one fan-out per round regardless
        of which shards hold the matching postings.
        """
        self.search_count += 1
        pending_ids, pending_keys = assoc.take_pending()
        result: set[int] = set()
        for shard in self.shards:
            shard.commit_keys()
            result |= shard.lookup_tagged(pending_ids, pending_keys)
        return result

    # -- span-list queries (Fig 15) ----------------------------------------

    def span_list(self, start: float, end: float,
                  predicate: Optional[Callable[[Span], bool]] = None,
                  tenant: Optional[str] = None) -> list[Span]:
        """Spans with start_time in [start, end): k-way merge of the
        shards' sorted time runs, optionally filtered by predicate
        and/or tenant label."""
        runs = [shard.span_list(start, end) for shard in self.shards]
        runs = [run for run in runs if run]
        if len(runs) == 1:
            merged: Iterable[Span] = runs[0]
        elif runs:
            merged = heapq.merge(
                *runs, key=lambda span: (span.start_time, span.span_id))
        else:
            merged = ()
        if tenant is None and predicate is None:
            return list(merged)
        out: list[Span] = []
        for span in merged:
            if tenant is not None and span.tags.get("tenant") != tenant:
                continue
            if predicate is not None and not predicate(span):
                continue
            out.append(span)
        return out

    # -- observability -----------------------------------------------------

    def shard_stats(self) -> dict:
        """Balance and boundary-pressure counters."""
        sizes = [len(shard) for shard in self.shards]
        total = sum(sizes)
        return {
            "shards": self.shard_count,
            "partitions": self.partition_count,
            "spans": total,
            "shard_sizes": sizes,
            "imbalance": (max(sizes) * self.shard_count / total
                          if total else 1.0),
            "boundary_keys": sum(len(t) for t in self._owners),
            "boundary_links": self.boundary_links,
            "boundary_spans": len(self.boundary),
        }
