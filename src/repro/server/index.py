"""Incremental association-graph index: the Algorithm 1 fast path.

Algorithm 1 computes, for a starting span, the fixed point of "all spans
sharing an association key with the current set".  That fixed point is
exactly a connected component of the *association graph* whose vertices
are spans and whose edges join spans carrying a common association key
(systrace_id, pseudo-thread, X-Request-ID, per-flow TCP sequence,
third-party trace id, queue message key).

Instead of re-running the iterative search from cold indexes on every
query, :class:`TraceGraphIndex` maintains those components *at ingest
time* with a union-find (disjoint-set forest, union by size + path
halving): each association key remembers one span that carries it, and
every later span with the same key is unioned into that span's set.
Trace membership then becomes a near-O(α) ``find`` plus a component
read-out — no iteration, no per-query filter construction.

Spans that never share a key with anyone are kept implicit: they get no
forest entry at all, and ``component`` answers ``{span_id}`` for them
directly.  This keeps the ingest hot path from paying forest setup for
singleton spans, and lets :meth:`link` batches coalesce.

The iterative search survives as the property-tested reference
implementation (:meth:`repro.server.assembler.TraceAssembler.collect`
with ``use_index=False``); the Fig 15 benchmark reports both so the
paper's span-list vs trace-query ratio story stays visible.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Protocols whose (resource, message id) pairs identify a message across
#: a broker relay — the queue-tracing extension's association axis.
QUEUE_RELAY_PROTOCOLS = ("amqp", "kafka", "mqtt")


def association_keys(span) -> list[tuple]:
    """The tagged association keys one span contributes to Algorithm 1.

    This is the reference definition of the association axes, shared by
    :meth:`repro.server.database.AssociationFilter.absorb` (the
    iterative path) and :meth:`TraceGraphIndex.add_span`; the span
    store's fused ingest loop inlines the same checks per axis and the
    fast-vs-reference property test holds the two in lock step.  Tags
    keep the per-axis key spaces disjoint:

    ``("sys", id)`` systrace · ``("pt", key)`` pseudo-thread ·
    ``("xr", id)`` X-Request-ID · ``("fs", (flow, leg, seq))`` per-flow
    TCP sequence · ``("ot", id)`` third-party trace · ``("mq",
    (protocol, resource, message id))`` queue-relay message.
    """
    keys: list[tuple] = []
    if span.systrace_id is not None:
        keys.append(("sys", span.systrace_id))
    if span.pseudo_thread_key:
        keys.append(("pt", span.pseudo_thread_key))
    if span.x_request_id:
        keys.append(("xr", span.x_request_id))
    if span.flow_key is not None:
        # Sequence numbers are per-direction counters, so the key carries
        # which leg (request vs response) it refers to.
        if span.req_tcp_seq is not None:
            keys.append(("fs", (span.flow_key, "q", span.req_tcp_seq)))
        if span.resp_tcp_seq is not None:
            keys.append(("fs", (span.flow_key, "p", span.resp_tcp_seq)))
    if span.otel_trace_id:
        keys.append(("ot", span.otel_trace_id))
    if (span.message_id is not None
            and span.protocol in QUEUE_RELAY_PROTOCOLS):
        keys.append(("mq", (span.protocol, span.resource,
                            span.message_id)))
    return keys


class TraceGraphIndex:
    """Union-find over spans, merged along shared association keys.

    Supports only growth (spans are never deleted from the store), which
    is the regime where union-find is optimal: a link is amortized
    near-O(α), ``component`` is a find plus returning the root's member
    set.  Member sets are merged smaller-into-larger, bounding total
    membership moves at O(n log n) over any insert sequence.

    Two usage modes:

    * the span store resolves key→owner through its own secondary
      indexes and calls :meth:`link` / :meth:`link_batch` directly;
    * standalone callers use :meth:`add_span` / :meth:`add`, which keep
      an internal key→owner table.  Don't mix the modes on one instance
      — the internal table doesn't see store-resolved links.
    """

    def __init__(self) -> None:
        #: span id → union-find parent.  Singleton spans are implicit:
        #: no entry at all until they first share a key.
        self._parent: dict[int, int] = {}
        #: root span id → the ids of every span in its component.
        self._members: dict[int, set[int]] = {}
        #: association key → one span id known to carry it (standalone
        #: mode only).
        self._key_owner: dict[tuple, int] = {}
        self.merges = 0
        #: Optional component-changed event sink.  When armed (set to a
        #: list — the continuous pipeline does this through
        #: ``SpanStore.arm_component_events``), every link applied by
        #: :meth:`link_batch` is also appended here as an ``(a, b)``
        #: pair, giving push-path consumers the exact merge stream the
        #: forest saw.  Mirrors the ``first_seen_keys`` armed-sink
        #: pattern: None (the default) costs one branch per batch.
        self.events: Optional[list] = None

    def __len__(self) -> int:
        return len(self._parent)

    # -- growth -----------------------------------------------------------

    def add_span(self, span) -> None:
        """Index one span standalone (computes its keys)."""
        self.add(span.span_id, association_keys(span))

    def add(self, span_id: int, keys: Iterable[tuple]) -> None:
        """Index *span_id* under pre-computed tagged *keys*, resolving
        key ownership through the internal table (standalone mode)."""
        key_owner = self._key_owner
        for key in keys:
            owner = key_owner.get(key)
            if owner is None:
                key_owner[key] = span_id
            else:
                self.link(span_id, owner)

    def link(self, a: int, b: int) -> None:
        """Record that spans *a* and *b* share an association key."""
        self.link_batch(((a, b),))

    def link_batch(self, links: Iterable[tuple[int, int]]) -> None:
        """Apply a batch of shared-key links in one tight pass.

        The batched ingest path: the store accumulates one (new span,
        existing carrier) pair per matched key across a whole shipment,
        then coalesces every merge here with the forest dicts held in
        locals — no per-link method dispatch.
        """
        events = self.events
        if events is not None:
            links = list(links)
            events.extend(links)
        parent = self._parent
        members = self._members
        merges = 0
        for a, b in links:
            root_b = parent.get(b)
            if root_b is None:
                parent[b] = b
                members[b] = {b}
                root_b = b
            else:
                while parent[root_b] != root_b:
                    parent[root_b] = parent[parent[root_b]]
                    root_b = parent[root_b]
            root_a = parent.get(a)
            if root_a is None:
                # The common ingest shape: *a* is a fresh span joining an
                # existing component — attach it directly instead of
                # building a singleton set only to merge it away.
                parent[a] = root_b
                members[root_b].add(a)
                merges += 1
                continue
            while parent[root_a] != root_a:
                parent[root_a] = parent[parent[root_a]]
                root_a = parent[root_a]
            if root_a == root_b:
                continue
            members_a = members[root_a]
            members_b = members[root_b]
            if len(members_a) < len(members_b):
                root_a, root_b = root_b, root_a
                members_a, members_b = members_b, members_a
            parent[root_b] = root_a
            members_a.update(members_b)
            del members[root_b]
            merges += 1
        self.merges += merges

    # -- queries ----------------------------------------------------------

    def linked_ids(self):
        """Read-only view of every span id present in the forest (spans
        that have shared at least one key; implicit singletons absent).
        A dict keys view: O(1) membership, live, no copy."""
        return self._parent.keys()

    def find(self, span_id: int) -> int:
        """Component representative of *span_id* (path halving).

        Implicit singletons are their own representative.
        """
        parent = self._parent
        if span_id not in parent:
            return span_id
        while parent[span_id] != span_id:
            parent[span_id] = parent[parent[span_id]]
            span_id = parent[span_id]
        return span_id

    def component(self, span_id: int) -> set[int]:
        """Every span id in *span_id*'s component.

        For spans that have shared a key this returns the live member
        set — treat it as read-only; it is updated in place by later
        inserts.  Callers that need a snapshot copy it.
        """
        parent = self._parent
        root = parent.get(span_id)
        if root is None:
            return {span_id}
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return self._members[root]

    def component_size(self, span_id: int) -> int:
        """Number of spans in *span_id*'s component."""
        return len(self.component(span_id))

    def same_component(self, a: int, b: int) -> bool:
        """Whether two spans belong to one trace component."""
        return self.find(a) == self.find(b)
