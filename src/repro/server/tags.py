"""Resource-tag registry (Figure 8, tag collection + smart-encoding).

Agents push Kubernetes tags (①→②); cloud resource tags arrive directly at
the server (③).  The registry keeps them keyed by (VPC, IP) — the only two
tags the agent injects into spans (④–⑥) — and pre-encodes every tag key
and value as an integer so the storage layer never touches strings (⑦).
Self-defined (custom) labels stay out of storage entirely and are joined
back in at query time (⑧).
"""

from __future__ import annotations

from typing import Optional


class StringInterner:
    """Bidirectional string↔int dictionary used by the Int tag encoding."""

    def __init__(self) -> None:
        self._to_int: dict[str, int] = {}
        self._to_str: list[str] = []

    def __len__(self) -> int:
        return len(self._to_str)

    def intern(self, value: str) -> int:
        """Map a string to its stable integer code."""
        code = self._to_int.get(value)
        if code is None:
            code = len(self._to_str)
            self._to_int[value] = code
            self._to_str.append(value)
        return code

    def lookup(self, code: int) -> str:
        """Look up by key, or None."""
        return self._to_str[code]


#: Tags treated as *self-defined labels* (version, commit, ...) — injected
#: only at query time, never stored (Figure 8 step ⑧).
CUSTOM_TAG_HINTS = ("version", "commit", "team", "owner", "release")


class TagRegistry:
    """Server-side tag tables keyed by (vpc, ip)."""

    def __init__(self) -> None:
        self.keys = StringInterner()
        self.values = StringInterner()
        self._resource: dict[tuple[str, str], dict[str, str]] = {}
        self._custom: dict[tuple[str, str], dict[str, str]] = {}
        # Pre-encoded Int form of the resource tags (Figure 8 step ⑦).
        self._resource_encoded: dict[tuple[str, str],
                                     dict[int, int]] = {}

    @staticmethod
    def _split(tags: dict[str, str]) -> tuple[dict, dict]:
        resource = {}
        custom = {}
        for key, value in tags.items():
            if key in CUSTOM_TAG_HINTS:
                custom[key] = value
            else:
                resource[key] = value
        return resource, custom

    def register(self, vpc: str, ip: str, tags: dict[str, str]) -> None:
        """Register (or update) the tags for one endpoint."""
        resource, custom = self._split(tags)
        key = (vpc, ip)
        self._resource.setdefault(key, {}).update(resource)
        if custom:
            self._custom.setdefault(key, {}).update(custom)
        self._resource_encoded[key] = {
            self.keys.intern(tag_key): self.values.intern(tag_value)
            for tag_key, tag_value in self._resource[key].items()}

    def resource_tags(self, vpc: str, ip: str) -> dict[str, str]:
        """Registered resource tags for (vpc, ip)."""
        return dict(self._resource.get((vpc, ip), {}))

    def resource_tags_encoded(self, vpc: str, ip: str) -> dict[int, int]:
        """The pre-encoded Int form injected at storage time (step ⑦)."""
        return dict(self._resource_encoded.get((vpc, ip), {}))

    def custom_tags(self, vpc: str, ip: str) -> dict[str, str]:
        """Self-defined labels, joined in at query time (step ⑧)."""
        return dict(self._custom.get((vpc, ip), {}))

    def decode(self, encoded: dict[int, int]) -> dict[str, str]:
        """Int-encoded tags back to strings."""
        return {self.keys.lookup(k): self.values.lookup(v)
                for k, v in encoded.items()}

    def endpoints(self) -> list[tuple[str, str]]:
        """Every registered (vpc, ip) pair."""
        return list(self._resource)

    def full_tags(self, vpc: str, ip: str) -> dict[str, str]:
        """Resource + custom tags, as delivered to the front end."""
        tags = self.resource_tags(vpc, ip)
        tags.update(self.custom_tags(vpc, ip))
        return tags
