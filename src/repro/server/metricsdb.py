"""Tag-indexed time-series metric store.

The Prometheus-integration half of tag-based correlation (§3.4): metrics
carry the same resource tags as spans, so "when querying traces, users can
simultaneously view the related metrics data".  The RabbitMQ case study
(§4.1.3, Figure 12) is a join between a trace's spans and the broker's
queue-depth series through the shared ``pod`` tag.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.core.span import Span


@dataclass(frozen=True)
class _SeriesKey:
    name: str
    tags: tuple[tuple[str, str], ...]


class MetricsDatabase:
    """Append-only series store with tag-based lookup."""

    def __init__(self) -> None:
        self._series: dict[_SeriesKey, list[tuple[float, float]]] = {}

    @staticmethod
    def _key(name: str, tags: dict[str, str]) -> _SeriesKey:
        return _SeriesKey(name, tuple(sorted(tags.items())))

    def record(self, name: str, tags: dict[str, str], timestamp: float,
               value: float) -> None:
        """Append one sample to a series."""
        series = self._series.setdefault(self._key(name, tags), [])
        if series and timestamp < series[-1][0]:
            raise ValueError(
                f"out-of-order sample for {name}: {timestamp}")
        series.append((timestamp, value))

    def series_names(self) -> set[str]:
        """Names of every stored series."""
        return {key.name for key in self._series}

    def query(self, name: str, tag_filter: Optional[dict[str, str]] = None,
              start: Optional[float] = None,
              end: Optional[float] = None) -> list[tuple[float, float]]:
        """Samples of *name* whose tags are a superset of *tag_filter*."""
        out: list[tuple[float, float]] = []
        wanted = set((tag_filter or {}).items())
        for key, series in self._series.items():
            if key.name != name:
                continue
            if not wanted <= set(key.tags):
                continue
            lo = 0 if start is None else bisect_left(series, (start, -1e30))
            hi = (len(series) if end is None
                  else bisect_right(series, (end, 1e30)))
            out.extend(series[lo:hi])
        out.sort()
        return out

    def correlate_span(self, span: Span, names: Optional[list[str]] = None,
                       pad: float = 1.0) -> dict[str, list]:
        """All series overlapping a span's tags and time interval.

        This is the zero-code correlation path: the span's own resource
        tags select the series; no identifier was ever propagated.
        """
        wanted_names = names if names is not None else sorted(
            self.series_names())
        interesting = {k: v for k, v in span.tags.items()
                       if k in ("pod", "node", "ip", "service", "app")}
        result: dict[str, list] = {}
        for name in wanted_names:
            # Try increasingly loose tag subsets until something matches.
            for tag_key in ("pod", "node", "ip", "service", "app"):
                if tag_key not in interesting:
                    continue
                samples = self.query(
                    name, {tag_key: interesting[tag_key]},
                    start=span.start_time - pad, end=span.end_time + pad)
                if samples:
                    result[name] = samples
                    break
        return result
