"""Trace-storage encoders: direct, low-cardinality, and smart (Design 4).

Reproduces the Figure 14 comparison.  All three encoders ingest the same
logical rows (a span plus its ~100 resource tags) and account for:

* **disk bytes** — what the encoded row costs at rest;
* **memory bytes** — server baseline + write buffer + dictionary
  structures resident during the storage procedure;
* **CPU** — measured by the benchmark harness as wall time around
  ``insert`` (the encoders do genuine per-row work, so relative cost
  emerges from real computation, not constants).

Cost model, mirroring a columnar store (ClickHouse in the paper):

* every encoder first serializes the span's ~20 fixed base columns
  (timestamps, ids, sequence numbers) — identical work for all three;
* ``DirectEncoder`` stores each tag column as a raw String value
  ("one char per digit", §5.2);
* ``LowCardinalityEncoder`` models the LowCardinality(String) type:
  2-byte dictionary references per row plus the part-local dictionary
  re-emitted with every storage part (small parts at high ingest rates
  are what make this expensive);
* ``SmartEncoder`` is DeepFlow's scheme: the agent ships only (VPC, IP)
  as integers; the server joins the pre-encoded Int tag set for that
  endpoint — packed once per endpoint, not per row.
"""

from __future__ import annotations

import struct
from collections import deque

from repro.server.tags import TagRegistry

#: Rows retained in the in-memory write buffer (models the insert path).
BUFFER_ROWS = 8192

#: Rows per storage part at the paper's ingest rate (2×10^5 rows/s with
#: sub-second flushes produces small parts); the low-cardinality
#: dictionaries are re-emitted per part.
PART_ROWS = 256

#: Resident footprint of the storage process itself, identical across
#: encodings (weighed into the memory comparison as in pidstat [85]).
BASELINE_MEMORY_BYTES = 1 << 20

#: Fixed base columns carried by every span row.
_BASE_FIELDS = 20


def _encode_base_row(row_id: int) -> bytes:
    """Serialize the ~20 non-tag columns — common work for all encoders."""
    return struct.pack("<" + "Q" * _BASE_FIELDS,
                       *range(row_id, row_id + _BASE_FIELDS))


class EncodingStats:
    """Accounting shared by the three encoders."""

    __slots__ = ("rows", "disk_bytes", "dict_bytes", "buffer_bytes")

    def __init__(self) -> None:
        self.rows = 0
        self.disk_bytes = 0
        self.dict_bytes = 0
        self.buffer_bytes = 0

    @property
    def total_memory_bytes(self) -> int:
        """Baseline + buffer + dictionary footprint."""
        return BASELINE_MEMORY_BYTES + self.buffer_bytes + self.dict_bytes

    def per_row_disk(self) -> float:
        """Average encoded bytes per row."""
        return self.disk_bytes / self.rows if self.rows else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EncodingStats(rows={self.rows}, "
                f"disk={self.disk_bytes}, dict={self.dict_bytes}, "
                f"buffer={self.buffer_bytes})")


class _BufferedEncoder:
    """Common write-buffer behaviour."""

    def __init__(self) -> None:
        self.stats = EncodingStats()
        self._buffer: deque[bytes] = deque()

    def _commit_row(self, row: bytes) -> None:
        self._buffer.append(row)
        self.stats.rows += 1
        self.stats.disk_bytes += len(row)
        self.stats.buffer_bytes += len(row)
        if len(self._buffer) > BUFFER_ROWS:
            dropped = self._buffer.popleft()
            self.stats.buffer_bytes -= len(dropped)


class DirectEncoder(_BufferedEncoder):
    """Store every tag column as its raw string value."""

    name = "direct"

    def insert(self, tags: dict[str, str], vpc: str = "",
               ip: str = "") -> None:
        """Encode and account one row."""
        parts = [_encode_base_row(self.stats.rows)]
        for value in tags.values():
            raw = value.encode()
            parts.append(bytes([len(raw) & 0xFF]) + raw)
        self._commit_row(b"".join(parts))


class LowCardinalityEncoder(_BufferedEncoder):
    """Per-column dictionary encoding with 2-byte references."""

    name = "low-cardinality"

    def __init__(self) -> None:
        super().__init__()
        self._columns: dict[str, dict[str, int]] = {}
        self._part_uniques: dict[str, set[str]] = {}
        self._rows_in_part = 0

    def insert(self, tags: dict[str, str], vpc: str = "",
               ip: str = "") -> None:
        """Encode and account one row."""
        refs = bytearray(_encode_base_row(self.stats.rows))
        for key, value in tags.items():
            column = self._columns.setdefault(key, {})
            code = column.get(value)
            if code is None:
                code = len(column)
                column[value] = code
                self.stats.dict_bytes += len(value) + 24  # hash-map entry
            part_unique = self._part_uniques.setdefault(key, set())
            if value not in part_unique:
                part_unique.add(value)
                # Part-local dictionary entry written with the part:
                # length prefix + string + dictionary index slot.
                self.stats.disk_bytes += len(value) + 10
            refs += struct.pack("<H", code & 0xFFFF)
        self._commit_row(bytes(refs))
        self._rows_in_part += 1
        if self._rows_in_part >= PART_ROWS:
            self._rows_in_part = 0
            self._part_uniques.clear()


class SmartEncoder(_BufferedEncoder):
    """DeepFlow's phased tag injection (Figure 8).

    The per-endpoint Int tag blob is packed once and cached; each row
    insert is a single lookup plus an append of fixed-width integers.
    """

    name = "smart"

    def __init__(self, registry: TagRegistry):
        super().__init__()
        self.registry = registry
        self._packed_cache: dict[tuple[str, str], bytes] = {}

    def _packed(self, vpc: str, ip: str) -> bytes:
        key = (vpc, ip)
        blob = self._packed_cache.get(key)
        if blob is None:
            encoded = self.registry.resource_tags_encoded(vpc, ip)
            # Columnar layout: the tag key is the column, so each row
            # stores only the pre-encoded Int value per tag.
            blob = b"".join(struct.pack("<H", tag_value & 0xFFFF)
                            for _tag_key, tag_value in
                            sorted(encoded.items()))
            self._packed_cache[key] = blob
            self.stats.dict_bytes += len(blob) + 16
        return blob

    def insert(self, tags: dict[str, str], vpc: str = "",
               ip: str = "") -> None:
        # The agent already reduced the row to (vpc, ip) in Int form;
        # `tags` is ignored here because smart encoding never ships it.
        """Encode and account one row."""
        row = _encode_base_row(self.stats.rows) + self._packed(vpc, ip)
        self._commit_row(row)

    def query_tags(self, vpc: str, ip: str) -> dict[str, str]:
        """Query-time join: decoded resource tags + self-defined labels
        (Figure 8 step ⑧)."""
        return self.registry.full_tags(vpc, ip)
