"""The DeepFlow Server (§3.1, right half of Figure 4).

A cluster-level process that stores spans in the database, enriches them
with resource tags (smart-encoding, Design 4), and assembles them into
traces at query time (Algorithm 1).
"""

from repro.server.assembler import TraceAssembler
from repro.server.database import AssociationFilter, SpanStore
from repro.server.encoding import (
    DirectEncoder,
    EncodingStats,
    LowCardinalityEncoder,
    SmartEncoder,
)
from repro.server.metricsdb import MetricsDatabase
from repro.server.server import DeepFlowServer
from repro.server.tags import TagRegistry

__all__ = [
    "AssociationFilter",
    "DeepFlowServer",
    "DirectEncoder",
    "EncodingStats",
    "LowCardinalityEncoder",
    "MetricsDatabase",
    "SmartEncoder",
    "SpanStore",
    "TagRegistry",
    "TraceAssembler",
]
