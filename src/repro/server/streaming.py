"""Continuous (push-path) trace assembly.

The pull path answers "what is this span's trace?" at query time by
reading the union-find.  This module inverts the flow: span ingest
*pushes* into a :class:`ContinuousAssembler` that maintains one live
state per in-flight trace, driven by two signals —

* the batch of spans just inserted (each new span opens a singleton
  live trace), and
* the union-find's component-changed events
  (``SpanStore.take_component_events`` /
  ``ShardedSpanStore.take_component_events``): every shared-key link
  the key commit discovers, including cross-shard boundary links,
  arrives as an ``(a, b)`` pair and merges span *a*'s live trace into
  span *b*'s.

Live traces walk a sim-clock lifecycle::

    OPEN ──(idle ≥ quiescent_after)──> QUIESCENT ──(new span)──> OPEN
      │                                    │
      ├──(root complete, idle ≥ root_grace)┴──(idle ≥ finish_after)
      ▼
    FINISHED  →  assign_parents → Trace → OTLP export

"Root complete" is the paper-shaped completion heuristic: the earliest
span of a component is its root candidate, and once its interval
encloses everything seen so far (``root.end_time >= max_end``) the
request has returned to its entry point — only a short grace for
trailing network spans is needed, not the full idle timeout.

Retirement is trace-atomic and memory-bounded: a finished trace's span
states are evicted together, and :meth:`ContinuousAssembler.
finalize_pending` (deliberately *outside* the hot ``on_spans`` call
graph — parent assignment sorts, which the hot-path checker forbids on
the ingest closure) runs the parent-rule table, wraps the spans in a
:class:`repro.core.span.Trace`, and hands the result to the OTLP
exporter.  Latency budgets are checked per arriving span and fire
through a duck-typed ``budget_sink`` callback, which
``repro.analysis.watchdog.AnomalyWatchdog.watch_streaming`` points at
itself — the server layer never imports the analysis layer.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.metrics import PipelineMetrics
from repro.core.span import Span, Trace
from repro.server.assembler import assign_parents

__all__ = [
    "ContinuousAssembler",
    "FinishedTrace",
    "LiveTrace",
    "OPEN",
    "QUIESCENT",
    "FINISHED",
]

#: Live-trace lifecycle states.
OPEN = "open"
QUIESCENT = "quiescent"
FINISHED = "finished"

#: Finish reasons recorded on retirement.
REASON_IDLE = "idle"
REASON_ROOT_COMPLETE = "root-complete"
REASON_FORCED = "forced"


class LiveTrace:
    """Mutable state of one in-flight trace component."""

    __slots__ = ("key", "spans", "state", "first_start", "max_end",
                 "root_span", "root_complete", "last_update",
                 "opened_at", "finished_at", "finish_reason")

    def __init__(self, span: Span, now: float) -> None:
        self.key = span.span_id       # stable handle: first member's id
        self.spans = [span]
        self.state = OPEN
        self.first_start = span.start_time
        self.max_end = span.end_time
        self.root_span = span
        self.root_complete = True     # a singleton encloses itself
        self.last_update = now
        self.opened_at = now
        self.finished_at = 0.0
        self.finish_reason = ""

    def __len__(self) -> int:
        return len(self.spans)


class FinishedTrace:
    """One retired, parent-assembled, exported trace."""

    __slots__ = ("trace", "key", "opened_at", "finished_at", "reason",
                 "assembly_lag")

    def __init__(self, trace: Trace, key: int, opened_at: float,
                 finished_at: float, reason: str,
                 assembly_lag: float) -> None:
        self.trace = trace
        self.key = key
        self.opened_at = opened_at
        self.finished_at = finished_at
        self.reason = reason
        #: sim seconds from the last span's arrival to retirement — the
        #: ingest-to-finished latency the streaming bench gates on.
        self.assembly_lag = assembly_lag


class ContinuousAssembler:
    """Push-path trace assembly over an armed span store.

    *store* is a :class:`repro.server.database.SpanStore` or
    :class:`repro.server.sharding.ShardedSpanStore`; construction arms
    its component-event sink.  Feed it with :meth:`on_spans` after each
    ingest batch and tick it with sim time (the server does both from
    ``ingest_spans``); read finished traces from :attr:`finished` or
    the exporter.
    """

    def __init__(self, store, *,
                 metrics: Optional[PipelineMetrics] = None,
                 exporter=None,
                 quiescent_after: float = 0.25,
                 finish_after: float = 1.0,
                 root_grace: float = 0.05,
                 sweep_interval: float = 0.05,
                 assemble_iterations: int = 0) -> None:
        if not 0 < root_grace <= quiescent_after <= finish_after:
            raise ValueError("need 0 < root_grace <= quiescent_after "
                             "<= finish_after")
        self.store = store
        store.arm_component_events()
        self.exporter = exporter
        self.quiescent_after = quiescent_after
        self.finish_after = finish_after
        self.root_grace = root_grace
        self.sweep_interval = sweep_interval
        self.assemble_iterations = assemble_iterations
        #: span id → its live trace (evicted on retirement).
        self._state_of: dict[int, LiveTrace] = {}
        #: live-trace key → live trace.
        self._live: dict[int, LiveTrace] = {}
        #: retired but not yet parent-assembled/exported.
        self._pending: list[LiveTrace] = []
        #: reusable due-for-retirement buffer (no per-sweep allocation).
        self._due: list[LiveTrace] = []
        self._swept_at = float("-inf")
        self.finished: list[FinishedTrace] = []
        #: Latency budgets: service name → max span duration (seconds).
        #: Violations call ``budget_sink(span, budget, now)`` — the
        #: watchdog attaches here via ``set_budget_sink``.
        self.budget_sink: Optional[Callable] = None
        self._budgets: dict[str, float] = {}
        if metrics is None:
            metrics = PipelineMetrics()
        self.metrics = metrics
        self._m_spans = metrics.counter(
            "stream.spans", "spans pushed through the continuous path")
        self._m_merges = metrics.counter(
            "stream.merges", "live-trace merges from link events")
        self._m_finished = metrics.counter(
            "stream.finished", "traces retired and assembled")
        self._m_reopened = metrics.counter(
            "stream.reopened", "quiescent traces reopened by a span")
        self._m_quiesced = metrics.counter(
            "stream.quiesced", "open traces idled into quiescence")
        self._m_budget = metrics.counter(
            "stream.budget_violations",
            "latency-budget violations seen at arrival")
        self._g_open = metrics.gauge(
            "stream.open_traces", "live traces currently tracked")
        self._h_lag = metrics.histogram(
            "stream.finish_lag_s",
            description="sim lag from last span arrival to retirement")

    # -- wiring -------------------------------------------------------------

    def set_budget_sink(self, sink: Optional[Callable],
                        budgets: dict[str, float]) -> None:
        """Attach per-service latency budgets and their alert callback
        (``sink(span, budget, now)``; the watchdog's entry point)."""
        self.budget_sink = sink
        self._budgets = dict(budgets)

    # -- hot path -----------------------------------------------------------

    def on_spans(self, spans: Iterable[Span], now: float) -> None:
        """Push one ingest batch at sim time *now*.

        Opens a singleton live trace per new span, checks latency
        budgets, merges along the union-find's drained link events, and
        periodically sweeps lifecycle transitions.  On the hot-seed
        closure: no per-span allocation beyond the LiveTrace itself.
        """
        state_of = self._state_of
        live = self._live
        budgets = self._budgets
        sink = self.budget_sink
        check_budgets = budgets and sink is not None
        count = 0
        violations = 0
        for span in spans:
            span_id = span.span_id
            count += 1
            if span_id in state_of:
                continue
            trace = LiveTrace(span, now)
            state_of[span_id] = trace
            live[span_id] = trace
            if check_budgets:
                budget = budgets.get(span.process_name)
                if budget is not None \
                        and span.end_time - span.start_time > budget:
                    violations += 1
                    sink(span, budget, now)
        for a, b in self.store.take_component_events():
            ta = state_of.get(a)
            if ta is None:
                continue
            tb = state_of.get(b)
            if tb is None or tb is ta:
                continue
            self._merge(ta, tb)
        self._m_spans.inc(count)
        if violations:
            self._m_budget.inc(violations)
        if now - self._swept_at >= self.sweep_interval:
            self._sweep(now)
        self._g_open.set(len(live))

    def _merge(self, ta: LiveTrace, tb: LiveTrace) -> None:
        """Union two live traces, smaller member list into larger."""
        if len(ta.spans) < len(tb.spans):
            ta, tb = tb, ta
        winner, loser = ta, tb
        state_of = self._state_of
        for span in loser.spans:
            state_of[span.span_id] = winner
        winner.spans.extend(loser.spans)
        if loser.first_start < winner.first_start:
            winner.first_start = loser.first_start
        if loser.max_end > winner.max_end:
            winner.max_end = loser.max_end
        if loser.last_update > winner.last_update:
            winner.last_update = loser.last_update
        if loser.opened_at < winner.opened_at:
            winner.opened_at = loser.opened_at
        lr = loser.root_span
        wr = winner.root_span
        if (lr.start_time, lr.span_id) < (wr.start_time, wr.span_id):
            winner.root_span = lr
            wr = lr
        winner.root_complete = wr.end_time >= winner.max_end
        if winner.state == QUIESCENT or loser.state == QUIESCENT:
            winner.state = OPEN
            self._m_reopened.inc()
        del self._live[loser.key]
        self._m_merges.inc()

    def _sweep(self, now: float) -> None:
        """Apply idle-timeout lifecycle transitions at sim time *now*."""
        self._swept_at = now
        due = self._due
        finish_after = self.finish_after
        quiescent_after = self.quiescent_after
        root_grace = self.root_grace
        quiesced = 0
        for trace in self._live.values():
            idle = now - trace.last_update
            if idle >= finish_after:
                trace.finish_reason = REASON_IDLE
                due.append(trace)
            elif trace.root_complete and idle >= root_grace:
                trace.finish_reason = REASON_ROOT_COMPLETE
                due.append(trace)
            elif idle >= quiescent_after and trace.state == OPEN:
                trace.state = QUIESCENT
                quiesced += 1
        if quiesced:
            self._m_quiesced.inc(quiesced)
        for trace in due:
            self._retire(trace, now)
        due.clear()

    def _retire(self, trace: LiveTrace, now: float) -> None:
        """Evict one live trace's states and queue it for assembly."""
        state_of = self._state_of
        for span in trace.spans:
            del state_of[span.span_id]
        del self._live[trace.key]
        trace.state = FINISHED
        trace.finished_at = now
        self._pending.append(trace)
        self._m_finished.inc()
        self._h_lag.observe(now - trace.last_update)

    # -- cold path ----------------------------------------------------------

    def tick(self, now: float) -> list[FinishedTrace]:
        """Advance lifecycles to sim time *now* with no new spans, then
        assemble whatever retired.  The idle heartbeat (e.g. from
        :meth:`run`) that finishes traces after load stops."""
        self._sweep(now)
        self._g_open.set(len(self._live))
        return self.finalize_pending()

    def drain(self, now: float) -> list[FinishedTrace]:
        """Force-finish every live trace (end of run / shutdown)."""
        for trace in list(self._live.values()):
            trace.finish_reason = REASON_FORCED
            self._retire(trace, now)
        self._g_open.set(0.0)
        return self.finalize_pending()

    def finalize_pending(self) -> list[FinishedTrace]:
        """Parent-assemble and export every trace retired since the
        last call.  Kept out of the ``on_spans`` hot closure: the
        parent-rule table sorts per phase, an O(n log n) pass that
        belongs on the per-trace cold path, not the per-span one."""
        pending = self._pending
        if not pending:
            return []
        self._pending = []
        exporter = self.exporter
        out: list[FinishedTrace] = []
        for live in pending:
            assign_parents(live.spans)
            trace = Trace(live.spans)
            record = FinishedTrace(
                trace=trace, key=live.key, opened_at=live.opened_at,
                finished_at=live.finished_at, reason=live.finish_reason,
                assembly_lag=live.finished_at - live.last_update)
            if exporter is not None:
                exporter.export_trace(trace)
            out.append(record)
        self.finished.extend(out)
        return out

    def run(self, sim, interval: float = 0.05):
        """Spawn a sweep/finalize heartbeat process on *sim*."""
        def loop():
            """Background heartbeat body."""
            while True:
                yield interval
                self.tick(sim.now)

        return sim.spawn(loop(), name="continuous-assembler")

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """Live/lifetime counters for ``pipeline_stats()``."""
        return {
            "open_traces": len(self._live),
            "tracked_spans": len(self._state_of),
            "pending_finalize": len(self._pending),
            "finished": self._m_finished.value,
            "merges": self._m_merges.value,
            "reopened": self._m_reopened.value,
            "quiesced": self._m_quiesced.value,
            "budget_violations": self._m_budget.value,
            "spans_seen": self._m_spans.value,
        }
