"""DeepFlow Server facade: ingest, enrichment, and the query API.

Ingestion applies the smart-encoding enrichment: spans arrive from agents
carrying only ``(vpc, ip)`` tags; the server joins the registered resource
tags (Figure 8 step ⑦) before storing.  Self-defined labels are joined at
query time (step ⑧) by :meth:`DeepFlowServer.trace`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.export import OtlpStreamExporter, metrics_to_otlp_json
from repro.core.metrics import PipelineMetrics
from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.server.assembler import DEFAULT_ITERATIONS, TraceAssembler
from repro.server.database import SpanStore
from repro.server.metricsdb import MetricsDatabase
from repro.server.sharding import DEFAULT_WINDOW, ShardedSpanStore
from repro.server.streaming import ContinuousAssembler
from repro.server.tags import TagRegistry


class DeepFlowServer:
    """Cluster-level collector, store, and query engine.

    With ``shards > 1`` the span store is a
    :class:`repro.server.sharding.ShardedSpanStore`: inserts route to
    independent shard memtables by association-key hash × time window,
    and ``trace()`` runs the scatter-gather cross-shard merge — the
    query API is unchanged either way.  Tenant labels (``ingest_spans``)
    and cluster labels (``new_agent``) thread through routing and the
    span-list filters so one server instance models DeepFlow's
    multi-cluster, multi-tenant deployment.
    """

    def __init__(self, iterations: int = DEFAULT_ITERATIONS,
                 shards: int = 1,
                 shard_window: float = DEFAULT_WINDOW,
                 streaming: bool = False):
        self.pipeline_metrics = PipelineMetrics()
        if shards > 1:
            self.store = ShardedSpanStore(shards, window=shard_window,
                                          metrics=self.pipeline_metrics)
        else:
            self.store = SpanStore()
        self.shards = shards
        self.tags = TagRegistry()
        self.metrics = MetricsDatabase()
        self.assembler = TraceAssembler(self.store, iterations=iterations)
        self._next_agent_index = 1
        self.ingested_spans = 0
        self._m_ingested = self.pipeline_metrics.counter(
            "server.spans_ingested", "spans accepted by ingest")
        self._m_batches = self.pipeline_metrics.counter(
            "server.ingest_batches", "agent shipments received")
        self._h_batch = self.pipeline_metrics.histogram(
            "server.ingest_batch_spans",
            bounds=(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0),
            description="spans per ingest batch")
        #: Push-path assembler; None until streaming is enabled.
        self.streaming: Optional[ContinuousAssembler] = None
        if streaming:
            self.enable_streaming()

    # -- agent registration ----------------------------------------------

    def register_agent(self) -> int:
        """Hand out a unique agent index (id-allocation prefix)."""
        index = self._next_agent_index
        self._next_agent_index += 1
        return index

    def new_agent(self, kernel, node=None, config=None, cluster=None):
        """Convenience: create an agent wired to this server.

        *cluster* labels every resource the agent registers (and hence,
        via enrichment, every span from its node) with a ``cluster``
        tag, so multi-cluster deployments stay filterable after their
        spans merge into shared traces.
        """
        from repro.agent.agent import DeepFlowAgent
        return DeepFlowAgent(kernel, self.register_agent(), server=self,
                             node=node, config=config, cluster=cluster)

    # -- tag collection (Figure 8 ①–③) ------------------------------------

    def register_resource_tags(self, vpc: str, ip: str,
                               tags: dict[str, str]) -> None:
        """Register resource tags for (vpc, ip)."""
        self.tags.register(vpc, ip, tags)

    def register_cloud_tags(self, vpc: str, ip: str,
                            tags: dict[str, str]) -> None:
        """Cloud resource tags arrive directly at the server (step ③)."""
        self.tags.register(vpc, ip, tags)

    # -- continuous pipeline ----------------------------------------------

    def enable_streaming(self, *, exporter=None,
                         latency_budgets: Optional[dict] = None,
                         budget_sink=None,
                         **assembler_kwargs) -> ContinuousAssembler:
        """Turn on the push path: arm the store's component-event sink
        and attach a :class:`ContinuousAssembler` fed by every later
        :meth:`ingest_spans` call.  Finished traces flow to *exporter*
        (an :class:`repro.core.export.OtlpStreamExporter` by default).
        Idempotent — returns the existing assembler if already enabled.
        """
        if self.streaming is not None:
            return self.streaming
        if exporter is None:
            exporter = OtlpStreamExporter()
        self.streaming = ContinuousAssembler(
            self.store, metrics=self.pipeline_metrics,
            exporter=exporter, **assembler_kwargs)
        if latency_budgets:
            self.streaming.set_budget_sink(budget_sink, latency_budgets)
        return self.streaming

    def pipeline_stats(self) -> dict:
        """Self-metrics snapshot of every pipeline stage wired to this
        server: agent dispatch, shard routing, ingest, continuous
        assembly, and export."""
        stats = {
            "metrics": self.pipeline_metrics.snapshot(),
            "ingested_spans": self.ingested_spans,
        }
        if self.streaming is not None:
            stats["streaming"] = self.streaming.stats()
            if self.streaming.exporter is not None:
                stats["export"] = self.streaming.exporter.stats()
        if self.shards > 1:
            stats["shards"] = self.store.shard_stats()
        return stats

    def pipeline_metrics_otlp(self, now: float) -> dict:
        """The same self-metrics in OTLP ``resourceMetrics`` form."""
        return metrics_to_otlp_json(self.pipeline_metrics, now)

    # -- ingestion ---------------------------------------------------------

    def ingest_spans(self, spans: list[Span],
                     tenant: Optional[str] = None,
                     now: Optional[float] = None) -> None:
        """Enrich and store a batch of spans from an agent.

        The whole batch goes through :meth:`SpanStore.insert_many`, so
        the time index is merged once per shipment and the union-find
        merges coalesce, instead of paying per-span index maintenance.
        When *tenant* is given the label is stamped into each span's
        tags and, on a sharded store, salts the routing hash so tenants
        spread across shards independently.

        With streaming enabled the batch also pushes through the
        continuous assembler at sim time *now* (agents pass their
        clock; when absent, the batch's latest span end stands in).
        """
        for span in spans:
            self._enrich(span)
            if tenant is not None:
                span.tags.setdefault("tenant", tenant)
        if tenant is not None and self.shards > 1:
            self.store.insert_many(spans, tenant=tenant)
        else:
            self.store.insert_many(spans)
        self.ingested_spans += len(spans)
        self._m_ingested.inc(len(spans))
        self._m_batches.inc()
        self._h_batch.observe(len(spans))
        streaming = self.streaming
        if streaming is not None and spans:
            if now is None:
                now = max(span.end_time for span in spans)
            streaming.on_spans(spans, now)
            streaming.finalize_pending()

    def _enrich(self, span: Span) -> None:
        """Smart-encoding step ⑦: (vpc, ip) → resource tags in Int form.

        The store keeps the decoded dict for inspectability; the Int
        round-trip is exercised so the encoding is honest.
        """
        vpc = span.tags.get("vpc")
        ip = span.tags.get("ip")
        if vpc is None or ip is None:
            return
        encoded = self.tags.resource_tags_encoded(vpc, ip)
        if encoded:
            span.tags.update(self.tags.decode(encoded))

    def ingest_otel_span(self, span: Span,
                         now: Optional[float] = None) -> None:
        """Third-party span integration (§3.3.2)."""
        if span.kind is not SpanKind.APP:
            raise ValueError("third-party spans must have kind APP")
        self.store.insert(span)
        self.ingested_spans += 1
        self._m_ingested.inc()
        streaming = self.streaming
        if streaming is not None:
            streaming.on_spans((span,),
                               span.end_time if now is None else now)
            streaming.finalize_pending()

    # -- query API (what the front end calls) --------------------------------

    def span_list(self, start: float, end: float,
                  predicate: Optional[Callable[[Span], bool]] = None,
                  tenant: Optional[str] = None,
                  cluster: Optional[str] = None) -> list[Span]:
        """Spans with start time in [start, end).

        *tenant* / *cluster* restrict the result to spans carrying the
        matching label (labels are filters, not isolation walls: a trace
        crossing clusters still assembles whole)."""
        if tenant is None and cluster is None:
            return self.store.span_list(start, end, predicate)

        def labeled(span: Span) -> bool:
            tags = span.tags
            if tenant is not None and tags.get("tenant") != tenant:
                return False
            if cluster is not None and tags.get("cluster") != cluster:
                return False
            return predicate is None or predicate(span)

        return self.store.span_list(start, end, labeled)

    def find_spans(self, **criteria) -> list[Span]:
        """Linear search helper for examples/tests (not a hot path)."""
        out = []
        for span in self.store.all_spans():
            if all(getattr(span, key, None) == value
                   for key, value in criteria.items()):
                out.append(span)
        return out

    def trace(self, start_span_id: int,
              use_index: Optional[bool] = None) -> Trace:
        """Assemble the trace containing *start_span_id*.

        By default the span set comes from the incremental
        association-graph index (near-O(α) component lookup);
        ``use_index=False`` runs the iterative Algorithm 1 reference
        instead (the Fig 15 benchmark times both).
        """
        trace = self.assembler.assemble(start_span_id,
                                        use_index=use_index)
        for span in trace:
            vpc = span.tags.get("vpc")
            ip = span.tags.get("ip")
            if vpc is not None and ip is not None:
                # Query-time join of self-defined labels (step ⑧).
                span.tags.update(self.tags.custom_tags(vpc, ip))
        return trace

    def correlated_metrics(self, trace: Trace,
                           names: Optional[list[str]] = None) -> dict:
        """Metrics related to each span of a trace, via shared tags."""
        result = {}
        for span in trace:
            series = self.metrics.correlate_span(span, names=names)
            if series:
                result[span.span_id] = series
        return result

    # -- tag-grouped analytics (§3.4) ------------------------------------

    def _ranged_spans(self, start: float, end: float) -> list[Span]:
        """One time-ranged scan shared by the tag-grouped analytics
        (open-ended ranges included — the time index handles ``inf``
        directly, no sentinel clamping needed)."""
        return self.store.span_list(start, end)

    def latency_by_tag(self, tag_key: str, *,
                       side: SpanSide = SpanSide.SERVER,
                       start: float = 0.0,
                       end: float = float("inf")) -> dict[str, dict]:
        """Latency statistics grouped by a resource tag.

        The §3.4 workflow: "users can use these tags to immediately
        determine the locations of the problems, such as in which pod
        the invocations are time-consuming".
        """
        groups: dict[str, list[float]] = {}
        for span in self._ranged_spans(start, end):
            if span.side is not side:
                continue
            tag_value = span.tags.get(tag_key)
            if tag_value is None:
                continue
            groups.setdefault(tag_value, []).append(span.duration)
        result = {}
        for tag_value, durations in groups.items():
            ordered = sorted(durations)
            p95_index = min(len(ordered) - 1, int(0.95 * len(ordered)))
            result[tag_value] = {
                "count": len(ordered),
                "mean": sum(ordered) / len(ordered),
                "p95": ordered[p95_index],
            }
        return result

    def error_rate_by_tag(self, tag_key: str, *,
                          start: float = 0.0,
                          end: float = float("inf")) -> dict[str, float]:
        """Fraction of error spans per tag value (any side)."""
        totals: dict[str, int] = {}
        errors: dict[str, int] = {}
        for span in self._ranged_spans(start, end):
            tag_value = span.tags.get(tag_key)
            if tag_value is None:
                continue
            totals[tag_value] = totals.get(tag_value, 0) + 1
            if span.is_error:
                errors[tag_value] = errors.get(tag_value, 0) + 1
        return {tag_value: errors.get(tag_value, 0) / count
                for tag_value, count in totals.items()}

    # -- convenience -----------------------------------------------------

    def slowest_span(self, side: SpanSide = SpanSide.CLIENT,
                     start: float = 0.0,
                     end: float = float("inf")) -> Optional[Span]:
        """The user's typical starting point: a time-consuming invocation."""
        spans = [span for span in self._ranged_spans(start, end)
                 if span.side is side]
        if not spans:
            return None
        return max(spans, key=lambda span: span.duration)
