"""Span database with association-key indexes.

Backs Algorithm 1 twice over: every association identifier the iterative
search filters on (systrace_id, pseudo-thread, X-Request-ID, per-flow TCP
sequence, third-party trace id, queue message key) has a per-axis
secondary index for the reference search path, and the same keys feed an
incremental union-find (:class:`repro.server.index.TraceGraphIndex`) so
the fast path answers trace membership without iterating at all.  A time
index supports span-list queries over a range (the Fig 15 workload); it
is kept as a sorted main run plus a small unsorted tail merged lazily on
first query, so inserts never pay the O(n) ``bisect.insort`` shift.

Ingest is the hot path — every span the fleet of agents ships lands in
:meth:`SpanStore.insert_many` — so the store is write-optimized the way
an LSM memtable is: an insert only registers the span (id map, for
duplicate rejection and ``get``) and appends it to an unindexed *tail*.
All index maintenance — per-axis secondary indexes, the union-find, the
sorted time run — happens in commit passes that each query triggers for
exactly the tail it needs, one fused pass per batch of inserts.  The
deferred work is not avoided, just coalesced where it is cheapest: the
commit loop uses raw identifier keys (an int systrace id hashes in a
fraction of the time a tagged tuple does), inlines the axis checks from
:func:`repro.server.index.association_keys` (the property test holds the
two definitions in lock step), and hands union-find merges to
:meth:`TraceGraphIndex.link_batch` as (new span, existing carrier)
pairs.  :meth:`SpanStore.flush` forces both commits, letting benchmarks
price ingest, index commit, and queries separately.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.span import Span
from repro.server.index import (
    QUEUE_RELAY_PROTOCOLS,
    TraceGraphIndex,
    association_keys,
)

__all__ = [
    "AssociationFilter",
    "QUEUE_RELAY_PROTOCOLS",
    "SpanStore",
]


@dataclass
class AssociationFilter:
    """The filter built up by Algorithm 1 (lines 6–10).

    Besides the per-axis key sets, the filter tracks which keys have not
    yet been handed to :meth:`SpanStore.search_new`, so the iterative
    reference path never re-queries a key it already resolved.
    """

    span_ids: set[int] = field(default_factory=set)
    systrace_ids: set[int] = field(default_factory=set)
    pseudo_threads: set[tuple] = field(default_factory=set)
    x_request_ids: set[str] = field(default_factory=set)
    flow_seqs: set[tuple] = field(default_factory=set)  # (flow_key, leg, seq)
    otel_trace_ids: set[str] = field(default_factory=set)
    #: (protocol, resource, message_id) — queue-relay extension.
    message_keys: set[tuple] = field(default_factory=set)
    #: Tagged keys added since the last ``search_new`` drain.
    _pending_keys: list[tuple] = field(default_factory=list, repr=False)
    _pending_ids: list[int] = field(default_factory=list, repr=False)

    #: tag → attribute holding that axis's key set.
    _AXES = {
        "sys": "systrace_ids",
        "pt": "pseudo_threads",
        "xr": "x_request_ids",
        "fs": "flow_seqs",
        "ot": "otel_trace_ids",
        "mq": "message_keys",
    }

    def absorb(self, span: Span) -> None:
        """Add one span's association keys to the filter."""
        if span.span_id not in self.span_ids:
            self.span_ids.add(span.span_id)
            self._pending_ids.append(span.span_id)
        for key in association_keys(span):
            bucket = getattr(self, self._AXES[key[0]])
            value = key[1]
            if value not in bucket:
                bucket.add(value)
                self._pending_keys.append(key)

    def take_pending(self) -> tuple[list[int], list[tuple]]:
        """Drain the not-yet-queried span ids and tagged keys."""
        ids, self._pending_ids = self._pending_ids, []
        keys, self._pending_keys = self._pending_keys, []
        return ids, keys

    def tagged_keys(self) -> list[tuple]:
        """Every key currently in the filter, in tagged form."""
        keys: list[tuple] = []
        for tag, axis in self._AXES.items():
            keys.extend((tag, value) for value in getattr(self, axis))
        return keys


class SpanStore:
    """In-memory indexed span storage with an incremental trace index."""

    def __init__(self) -> None:
        self._spans: dict[int, Span] = {}
        # Per-axis secondary indexes, raw identifier → posting.  Raw
        # keys (int/str/tuple) hash faster than tagged tuples, and the
        # tags are only needed where axes meet (the filter's pending
        # list); _axis_index maps a tag back to its index for that case.
        # A posting starts as a bare span id and is promoted to a set on
        # its first collision — most keys (e.g. per-flow TCP sequences)
        # are carried by exactly one span, and skipping the singleton
        # set allocation is a measurable share of the ingest budget.
        self._by_sys: dict[int, object] = {}
        self._by_pt: dict[tuple, object] = {}
        self._by_xr: dict[str, object] = {}
        self._by_fs: dict[tuple, object] = {}
        self._by_ot: dict[str, object] = {}
        self._by_mq: dict[tuple, object] = {}
        self._axis_index = {
            "sys": self._by_sys,
            "pt": self._by_pt,
            "xr": self._by_xr,
            "fs": self._by_fs,
            "ot": self._by_ot,
            "mq": self._by_mq,
        }
        #: sorted main run of (start_time, span_id), extended from the
        #: tail by the time commit.
        self._time_index: list[tuple[float, int]] = []
        #: spans inserted but not yet indexed.  Two cursors track how far
        #: each commit pass has consumed it; once both passes catch up,
        #: the tail is emptied.
        self._tail: list[Span] = []
        self._keys_committed = 0
        self._time_committed = 0
        #: incremental association-graph components (fast path).  Updated
        #: by the key commit — read it through :meth:`component_ids` /
        #: :meth:`component_spans`, or call :meth:`flush` first.
        self.graph = TraceGraphIndex()
        self.search_count = 0
        #: Optional first-seen-key sink.  When armed (set to a list, as
        #: :class:`repro.server.sharding.ShardedSpanStore` does per
        #: shard), the key commit appends one ``(tag, value, span_id)``
        #: event per *distinct* key the first time this store indexes it
        #: — piggy-backing boundary-key detection on the posting
        #: creation the commit already performs.  None (the default)
        #: costs the commit loop one predicate check per key.
        self.first_seen_keys: Optional[list[tuple]] = None

    def __len__(self) -> int:
        return len(self._spans)

    # -- ingest ------------------------------------------------------------

    def insert(self, span: Span) -> None:
        """Register one span; index maintenance is deferred to commit."""
        self.insert_many((span,))

    def insert_many(self, spans: Iterable[Span]) -> None:
        """Batch ingest: register each span and append it to the tail.

        This is everything ingest pays — duplicate rejection, the id
        map, one list append.  Secondary indexes, the union-find, and
        the time run catch up lazily (:meth:`_commit_keys` /
        :meth:`_commit_time_index`) the first time a query needs them,
        in one fused pass over however many batches arrived since.
        """
        spans_map = self._spans
        tail_append = self._tail.append
        for span in spans:
            span_id = span.span_id
            if span_id in spans_map:
                raise ValueError(f"duplicate span id {span_id}")
            spans_map[span_id] = span
            tail_append(span)

    # -- index commits -----------------------------------------------------

    def _commit_keys(self) -> None:
        """Index the tail's association keys (axes + union-find).

        The per-axis branches below are the inlined form of
        :func:`repro.server.index.association_keys`; keep them in sync
        (tests/test_trace_index_properties.py proves the equivalence).
        Each branch is the same shape: a missing posting is created as a
        bare span id, a scalar posting is promoted to a set, and either
        collision case records one (new span, existing carrier) link.
        """
        tail = self._tail
        start = self._keys_committed
        if start == len(tail):
            return
        by_sys = self._by_sys
        by_pt = self._by_pt
        by_xr = self._by_xr
        by_fs = self._by_fs
        by_ot = self._by_ot
        by_mq = self._by_mq
        links: list[tuple[int, int]] = []
        links_append = links.append
        log = self.first_seen_keys
        for span in tail[start:]:
            span_id = span.span_id
            value = span.systrace_id
            if value is not None:
                ids = by_sys.get(value)
                if ids is None:
                    by_sys[value] = span_id
                    if log is not None:
                        log.append(("sys", value, span_id))
                elif ids.__class__ is int:
                    links_append((span_id, ids))
                    by_sys[value] = {ids, span_id}
                else:
                    links_append((span_id, next(iter(ids))))
                    ids.add(span_id)
            value = span.pseudo_thread_key
            if value:
                ids = by_pt.get(value)
                if ids is None:
                    by_pt[value] = span_id
                    if log is not None:
                        log.append(("pt", value, span_id))
                elif ids.__class__ is int:
                    links_append((span_id, ids))
                    by_pt[value] = {ids, span_id}
                else:
                    links_append((span_id, next(iter(ids))))
                    ids.add(span_id)
            value = span.x_request_id
            if value:
                ids = by_xr.get(value)
                if ids is None:
                    by_xr[value] = span_id
                    if log is not None:
                        log.append(("xr", value, span_id))
                elif ids.__class__ is int:
                    links_append((span_id, ids))
                    by_xr[value] = {ids, span_id}
                else:
                    links_append((span_id, next(iter(ids))))
                    ids.add(span_id)
            flow = span.flow_key
            if flow is not None:
                seq = span.req_tcp_seq
                if seq is not None:
                    value = (flow, "q", seq)
                    ids = by_fs.get(value)
                    if ids is None:
                        by_fs[value] = span_id
                        if log is not None:
                            log.append(("fs", value, span_id))
                    elif ids.__class__ is int:
                        links_append((span_id, ids))
                        by_fs[value] = {ids, span_id}
                    else:
                        links_append((span_id, next(iter(ids))))
                        ids.add(span_id)
                seq = span.resp_tcp_seq
                if seq is not None:
                    value = (flow, "p", seq)
                    ids = by_fs.get(value)
                    if ids is None:
                        by_fs[value] = span_id
                        if log is not None:
                            log.append(("fs", value, span_id))
                    elif ids.__class__ is int:
                        links_append((span_id, ids))
                        by_fs[value] = {ids, span_id}
                    else:
                        links_append((span_id, next(iter(ids))))
                        ids.add(span_id)
            value = span.otel_trace_id
            if value:
                ids = by_ot.get(value)
                if ids is None:
                    by_ot[value] = span_id
                    if log is not None:
                        log.append(("ot", value, span_id))
                elif ids.__class__ is int:
                    links_append((span_id, ids))
                    by_ot[value] = {ids, span_id}
                else:
                    links_append((span_id, next(iter(ids))))
                    ids.add(span_id)
            if (span.message_id is not None
                    and span.protocol in QUEUE_RELAY_PROTOCOLS):
                value = (span.protocol, span.resource, span.message_id)
                ids = by_mq.get(value)
                if ids is None:
                    by_mq[value] = span_id
                    if log is not None:
                        log.append(("mq", value, span_id))
                elif ids.__class__ is int:
                    links_append((span_id, ids))
                    by_mq[value] = {ids, span_id}
                else:
                    links_append((span_id, next(iter(ids))))
                    ids.add(span_id)
        self._keys_committed = len(tail)
        if links:
            self.graph.link_batch(links)
        self._shrink_tail()

    def _commit_time_index(self) -> None:
        """Merge the tail into the sorted time run.

        Sort entries are only built here, so ingest pays a plain list
        append per span.  ``list.sort`` is adaptive: when batches arrive
        out of order, appending the sorted new entries leaves two sorted
        runs, which Timsort merges in O(n) comparisons — one merge per
        commit, instead of one O(n) shift per span.
        """
        tail = self._tail
        start = self._time_committed
        if start == len(tail):
            return
        entries = [(span.start_time, span.span_id) for span in tail[start:]]
        entries.sort()
        main = self._time_index
        in_order = not main or main[-1] <= entries[0]
        main.extend(entries)
        if not in_order:
            main.sort()
        self._time_committed = len(tail)
        self._shrink_tail()

    def _shrink_tail(self) -> None:
        """Drop the tail once every commit pass has consumed it."""
        if self._keys_committed == self._time_committed == len(self._tail):
            self._tail.clear()
            self._keys_committed = 0
            self._time_committed = 0

    def flush(self) -> None:
        """Force all deferred index maintenance to run now.

        Queries trigger the commits they need on their own; this exists
        for callers that want index cost out of a measured or latency-
        critical window (benchmarks, snapshot/export paths).
        """
        self._commit_keys()
        self._commit_time_index()

    def commit_keys(self) -> None:
        """Force only the key-index commit (axes + union-find), leaving
        the time run deferred — the trace-path subset of :meth:`flush`,
        used by the sharded store's seal phase."""
        self._commit_keys()

    # -- component-changed events (continuous pipeline) ---------------------

    def arm_component_events(self) -> None:
        """Turn on the union-find's link-event sink.

        From here on, every shared-key link the key commit discovers is
        also logged as an ``(a, b)`` pair for
        :meth:`take_component_events` — the push-path signal the
        continuous assembler consumes.  Idempotent.
        """
        if self.graph.events is None:
            self.graph.events = []

    def take_component_events(self) -> list[tuple[int, int]]:
        """Commit pending keys and drain the accumulated link events.

        Each event says "span *a* was just linked into span *b*'s
        component".  Returns an empty list when nothing merged.
        Requires :meth:`arm_component_events` first.
        """
        self._commit_keys()
        events = self.graph.events
        if not events:
            return []
        self.graph.events = []
        return events

    def pending_key_count(self) -> int:
        """How many tail spans the key commit has not yet indexed."""
        return len(self._tail) - self._keys_committed

    def get(self, span_id: int) -> Optional[Span]:
        """Fetch the span by id, or None."""
        return self._spans.get(span_id)

    def all_spans(self) -> list[Span]:
        """Every stored span, as a list."""
        return list(self._spans.values())

    # -- Algorithm 1 support -------------------------------------------------

    def search(self, assoc: AssociationFilter) -> set[int]:
        """All span ids matching any key in the filter (line 12)."""
        self._commit_keys()
        self.search_count += 1
        spans_map = self._spans
        result: set[int] = set(
            span_id for span_id in assoc.span_ids if span_id in spans_map)
        for tag, axis in AssociationFilter._AXES.items():
            index = self._axis_index[tag]
            for value in getattr(assoc, axis):
                ids = index.get(value)
                if ids is None:
                    continue
                if ids.__class__ is int:
                    result.add(ids)
                else:
                    result |= ids
        return result

    def search_new(self, assoc: AssociationFilter) -> set[int]:
        """Span ids matching keys *not yet queried* through this filter.

        The iterative reference path accumulates results across rounds,
        so re-querying keys it already resolved is pure waste; draining
        only the filter's pending keys cuts each round to the frontier.
        The union over rounds equals a full :meth:`search`, because a
        key's posting set never changes during a query.
        """
        self._commit_keys()
        self.search_count += 1
        pending_ids, pending_keys = assoc.take_pending()
        return self.lookup_tagged(pending_ids, pending_keys)

    def lookup_tagged(self, span_ids: Iterable[int],
                      tagged_keys: Iterable[tuple]) -> set[int]:
        """Resolve explicit span ids and tagged keys against this
        store's postings (no commit, no filter bookkeeping).

        The scatter half of the sharded store's fan-out: the router
        drains one filter's pending frontier once and broadcasts the
        same id/key lists to every shard through this method.  Callers
        must have committed keys first.
        """
        spans_map = self._spans
        result: set[int] = set(
            span_id for span_id in span_ids if span_id in spans_map)
        axis_index = self._axis_index
        for tag, value in tagged_keys:
            ids = axis_index[tag].get(value)
            if ids is None:
                continue
            if ids.__class__ is int:
                result.add(ids)
            else:
                result |= ids
        return result

    def component_ids(self, span_id: int) -> set[int]:
        """Fast path: the span's whole trace component from the
        union-find, as a read-only set (near-O(α) lookup once the
        pending tail, if any, is committed)."""
        if span_id not in self._spans:
            raise KeyError(f"unknown span id {span_id}")
        self._commit_keys()
        return self.graph.component(span_id)

    def component_spans(self, span_id: int) -> list[Span]:
        """Fast path: every span in *span_id*'s trace component."""
        spans_map = self._spans
        return [spans_map[member]
                for member in self.component_ids(span_id)]

    # -- span-list queries (Fig 15) -----------------------------------------

    def span_list(self, start: float, end: float,
                  predicate: Optional[Callable[[Span], bool]] = None
                  ) -> list[Span]:
        """Spans with start_time in [start, end), optionally filtered."""
        self._commit_time_index()
        lo = bisect.bisect_left(self._time_index, (start, -1))
        hi = bisect.bisect_left(self._time_index, (end, -1))
        spans_map = self._spans
        spans = [spans_map[span_id]
                 for _start, span_id in self._time_index[lo:hi]]
        if predicate is not None:
            spans = [span for span in spans if predicate(span)]
        return spans
