"""Span database with association-key indexes.

Backs Algorithm 1: every association identifier that the iterative search
filters on (systrace_id, pseudo-thread, X-Request-ID, per-flow TCP
sequence, third-party trace id) has a secondary index, and a time index
supports span-list queries over a range (the Fig 15 workload).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.span import Span

#: Protocols whose (resource, message id) pairs identify a message across
#: a broker relay — the queue-tracing extension's association axis.
QUEUE_RELAY_PROTOCOLS = ("amqp", "kafka", "mqtt")


@dataclass
class AssociationFilter:
    """The filter built up by Algorithm 1 (lines 6–10)."""

    span_ids: set[int] = field(default_factory=set)
    systrace_ids: set[int] = field(default_factory=set)
    pseudo_threads: set[tuple] = field(default_factory=set)
    x_request_ids: set[str] = field(default_factory=set)
    flow_seqs: set[tuple] = field(default_factory=set)  # (flow_key, seq)
    otel_trace_ids: set[str] = field(default_factory=set)
    #: (protocol, resource, message_id) — queue-relay extension.
    message_keys: set[tuple] = field(default_factory=set)

    def absorb(self, span: Span) -> None:
        """Add one span's association keys to the filter."""
        self.span_ids.add(span.span_id)
        if span.systrace_id is not None:
            self.systrace_ids.add(span.systrace_id)
        if span.pseudo_thread_key:
            self.pseudo_threads.add(span.pseudo_thread_key)
        if span.x_request_id:
            self.x_request_ids.add(span.x_request_id)
        if span.flow_key is not None:
            # Sequence numbers are per-direction counters, so the key
            # carries which leg (request vs response) it refers to.
            if span.req_tcp_seq is not None:
                self.flow_seqs.add((span.flow_key, "q", span.req_tcp_seq))
            if span.resp_tcp_seq is not None:
                self.flow_seqs.add((span.flow_key, "p", span.resp_tcp_seq))
        if span.otel_trace_id:
            self.otel_trace_ids.add(span.otel_trace_id)
        if (span.message_id is not None
                and span.protocol in QUEUE_RELAY_PROTOCOLS):
            self.message_keys.add(
                (span.protocol, span.resource, span.message_id))


class SpanStore:
    """In-memory indexed span storage."""

    def __init__(self) -> None:
        self._spans: dict[int, Span] = {}
        self._by_systrace: dict[int, set[int]] = {}
        self._by_pthread: dict[tuple, set[int]] = {}
        self._by_xreq: dict[str, set[int]] = {}
        self._by_flow_seq: dict[tuple, set[int]] = {}
        self._by_otel: dict[str, set[int]] = {}
        self._by_message: dict[tuple, set[int]] = {}
        self._time_index: list[tuple[float, int]] = []  # sorted (start, id)
        self.search_count = 0

    def __len__(self) -> int:
        return len(self._spans)

    def insert(self, span: Span) -> None:
        """Encode and account one row."""
        if span.span_id in self._spans:
            raise ValueError(f"duplicate span id {span.span_id}")
        self._spans[span.span_id] = span
        if span.systrace_id is not None:
            self._by_systrace.setdefault(span.systrace_id,
                                         set()).add(span.span_id)
        if span.pseudo_thread_key:
            self._by_pthread.setdefault(span.pseudo_thread_key,
                                        set()).add(span.span_id)
        if span.x_request_id:
            self._by_xreq.setdefault(span.x_request_id,
                                     set()).add(span.span_id)
        if span.flow_key is not None:
            if span.req_tcp_seq is not None:
                self._by_flow_seq.setdefault(
                    (span.flow_key, "q", span.req_tcp_seq),
                    set()).add(span.span_id)
            if span.resp_tcp_seq is not None:
                self._by_flow_seq.setdefault(
                    (span.flow_key, "p", span.resp_tcp_seq),
                    set()).add(span.span_id)
        if span.otel_trace_id:
            self._by_otel.setdefault(span.otel_trace_id,
                                     set()).add(span.span_id)
        if (span.message_id is not None
                and span.protocol in QUEUE_RELAY_PROTOCOLS):
            self._by_message.setdefault(
                (span.protocol, span.resource, span.message_id),
                set()).add(span.span_id)
        bisect.insort(self._time_index, (span.start_time, span.span_id))

    def insert_many(self, spans: Iterable[Span]) -> None:
        """Insert every span in *spans*."""
        for span in spans:
            self.insert(span)

    def get(self, span_id: int) -> Optional[Span]:
        """Fetch the span by id, or None."""
        return self._spans.get(span_id)

    def all_spans(self) -> list[Span]:
        """Every stored span, as a list."""
        return list(self._spans.values())

    # -- Algorithm 1 support -------------------------------------------------

    def search(self, assoc: AssociationFilter) -> set[int]:
        """All span ids matching any key in the filter (line 12)."""
        self.search_count += 1
        result: set[int] = set(
            span_id for span_id in assoc.span_ids if span_id in self._spans)
        for systrace_id in assoc.systrace_ids:
            result |= self._by_systrace.get(systrace_id, set())
        for pthread in assoc.pseudo_threads:
            result |= self._by_pthread.get(pthread, set())
        for x_request_id in assoc.x_request_ids:
            result |= self._by_xreq.get(x_request_id, set())
        for flow_seq in assoc.flow_seqs:
            result |= self._by_flow_seq.get(flow_seq, set())
        for trace_id in assoc.otel_trace_ids:
            result |= self._by_otel.get(trace_id, set())
        for message_key in assoc.message_keys:
            result |= self._by_message.get(message_key, set())
        return result

    # -- span-list queries (Fig 15) -----------------------------------------

    def span_list(self, start: float, end: float,
                  predicate: Optional[Callable[[Span], bool]] = None
                  ) -> list[Span]:
        """Spans with start_time in [start, end), optionally filtered."""
        lo = bisect.bisect_left(self._time_index, (start, -1))
        hi = bisect.bisect_left(self._time_index, (end, -1))
        spans = [self._spans[span_id]
                 for _start, span_id in self._time_index[lo:hi]]
        if predicate is not None:
            spans = [span for span in spans if predicate(span)]
        return spans
