"""Iterative trace assembling (Algorithm 1) and the parent-rule table.

Phase 1 — iterative span search: starting from a user-chosen span, the
filter accumulates every association key of the current span set
(systrace_id, pseudo-thread id, X-Request-ID, per-flow TCP sequence,
third-party trace id) and re-queries the database until the set stops
growing or the iteration limit (default 30) is reached.

Phase 2 — parent assignment: a rule table keyed on collection location
(client/server side), span kind, timing, and message identity.  The paper
describes 16 rules; ours are enumerated in :data:`PARENT_RULES` with the
correspondence documented per rule.  One deliberate deviation, recorded in
DESIGN.md: the paper's §3.3.2 text sets the *server* span as parent of the
matching client span, which inverts the enclosure relation of Figure 1;
we parent the server span under the client span (the client span strictly
encloses it in time), matching the figure and the OSS system.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.core.span import Span, SpanKind, SpanSide, Trace
from repro.server.database import AssociationFilter, SpanStore

#: Default iteration bound of Algorithm 1 ("the default is 30").
DEFAULT_ITERATIONS = 30

#: Slack allowed when comparing intervals across hosts (clock skew &
#: capture-position effects), seconds.
ENCLOSURE_SLACK = 1e-6


class TraceAssembler:
    """Assembles traces from the span store on demand.

    Phase 1 has two interchangeable implementations:

    * the **fast path** (``use_index=True``, the default) reads the trace
      component straight out of the store's incremental union-find — a
      near-O(α) lookup plus the component read-out;
    * the **reference path** (``use_index=False``) runs the paper's
      iterative search, kept both for fidelity (it *is* Algorithm 1) and
      as the oracle the property tests compare the index against.

    Both compute the same fixed point: "all spans reachable from the
    start span through shared association keys" is a connected component
    of the association graph, which is exactly what the union-find
    maintains incrementally.

    The *store* may be a single :class:`SpanStore` or a
    :class:`repro.server.sharding.ShardedSpanStore` — the assembler only
    needs ``get`` / ``search_new`` / ``component_spans``, and the
    sharded store implements them as scatter-gather over its shards (the
    fast path then merges per-shard components across boundaries).
    """

    def __init__(self, store: "SpanStore",
                 iterations: int = DEFAULT_ITERATIONS,
                 enable_queue_relay: bool = True,
                 enable_x_request_id: bool = True,
                 use_index: bool = True):
        self.store = store
        self.iterations = iterations
        #: Ablation switches (benchmarks/test_ablations.py).
        self.enable_queue_relay = enable_queue_relay
        self.enable_x_request_id = enable_x_request_id
        #: Fast path default; per-call override via collect/assemble.
        self.use_index = use_index
        self.last_iteration_count = 0

    # -- phase 1: span search --------------------------------------------

    def collect(self, start_span_id: int,
                use_index: Optional[bool] = None) -> list[Span]:
        """The span set of the trace containing *start_span_id*."""
        if use_index is None:
            use_index = self.use_index
        if use_index:
            spans = self.store.component_spans(start_span_id)
            # The component is the search's fixed point: one "iteration".
            self.last_iteration_count = 1
            return spans
        return self.collect_iterative(start_span_id)

    def collect_iterative(self, start_span_id: int) -> list[Span]:
        """Lines 1–16 of Algorithm 1 (the reference implementation).

        Each round absorbs only the spans discovered in the previous
        round into a persistent filter, and the store is only asked about
        keys it has not answered yet — O(spans) absorbed overall instead
        of O(spans × iterations), without changing the computed set.
        """
        store = self.store
        start = store.get(start_span_id)
        if start is None:
            raise KeyError(f"unknown span id {start_span_id}")
        assoc = AssociationFilter()
        span_ids: set[int] = {start_span_id}
        frontier: list[Span] = [start]
        for iteration in range(self.iterations):
            self.last_iteration_count = iteration + 1
            for span in frontier:
                assoc.absorb(span)
            found = store.search_new(assoc)
            found -= span_ids
            if not found:
                break
            span_ids |= found
            frontier = [store.get(span_id) for span_id in found]
        return [store.get(span_id) for span_id in span_ids]

    # -- phase 2: parent assignment ----------------------------------------

    def assemble(self, start_span_id: int,
                 use_index: Optional[bool] = None) -> Trace:
        """Full Algorithm 1: collect, set parents, sort."""
        spans = self.collect(start_span_id, use_index=use_index)
        assign_parents(spans,
                       enable_queue_relay=self.enable_queue_relay,
                       enable_x_request_id=self.enable_x_request_id)
        return Trace(spans)


def assign_parents(spans: list[Span], *, enable_queue_relay: bool = True,
                   enable_x_request_id: bool = True) -> None:
    """Apply the parent-rule table to a span set, in priority order.

    Every rule that links across association axes guards against
    introducing a cycle by walking the candidate parent's ancestor chain
    (:func:`_creates_cycle`): the chain rules may already have parented
    the candidate — possibly through intermediate network spans — under
    the very span being linked.  Spans are processed in canonical
    ``(start_time, span_id)`` order inside each phase so the outcome is
    independent of input order.
    """
    for span in spans:
        span.parent_id = None
    by_id = {span.span_id: span for span in spans}
    ordered = sorted(spans, key=lambda span: (span.start_time,
                                              span.span_id))
    _chain_message_groups(spans)
    _apply_app_rules(ordered, by_id)
    _apply_intra_component_rules(ordered, by_id,
                                 enable_x_request_id=enable_x_request_id)
    if enable_queue_relay:
        _apply_queue_relay_rules(ordered, by_id)


def _creates_cycle(span: Span, parent: Span,
                   by_id: dict[int, Span]) -> bool:
    """Whether setting ``span.parent_id = parent.span_id`` would close a
    cycle, i.e. *span* is already an ancestor of *parent*.

    The predecessor guard (``parent.parent_id != span.span_id``) only
    caught two-cycles; the chain rules can put the candidate parent
    under *span* through intermediate network spans, closing longer
    cycles, so the whole ancestor chain is walked.
    """
    target = span.span_id
    seen: set[int] = set()
    current: Optional[Span] = parent
    while current is not None:
        if current.span_id == target:
            return True
        if current.span_id in seen:
            return False  # pre-existing cycle elsewhere; don't join it
        seen.add(current.span_id)
        parent_id = current.parent_id
        current = by_id.get(parent_id) if parent_id is not None else None
    return False


def _message_groups(spans: list[Span]) -> dict[tuple, list[Span]]:
    """Group spans observing the *same message* on the same flow.

    The grouping key is (flow, request first-byte sequence): L2/3/4
    forwarding preserves it, so the client span, every capture-point span,
    and the server span of one request/response exchange share it.
    """
    groups: dict[tuple, list[Span]] = defaultdict(list)
    for span in spans:
        if span.flow_key is not None and span.req_tcp_seq is not None:
            groups[(span.flow_key, span.req_tcp_seq)].append(span)
    return groups


def _chain_message_groups(spans: list[Span]) -> None:
    """Rules 1–4: inter-component chaining along the network path.

    Within one message group:
      R1  first network span          ← client-side eBPF span
      R2  network span at path index i ← network span at index i-1
      R3  server-side eBPF span        ← last network span
      R4  server-side eBPF span        ← client-side eBPF span (no taps)
    """
    for members in _message_groups(spans).values():
        client = _pick(members, SpanSide.CLIENT)
        server = _pick(members, SpanSide.SERVER)
        nets = sorted((span for span in members
                       if span.side is SpanSide.NETWORK),
                      key=lambda span: (span.path_index, span.start_time,
                                        span.span_id))
        if server is not None and client is not None:
            if (server.resp_tcp_seq is not None
                    and client.resp_tcp_seq is not None
                    and server.resp_tcp_seq != client.resp_tcp_seq):
                # Same request seq but different response seq: not the
                # same exchange; refuse to chain.
                server = None
        previous = client
        for net in nets:
            if previous is not None and net.parent_id is None:
                net.parent_id = previous.span_id
            previous = net
        if server is not None and previous is not None \
                and server.parent_id is None and previous is not server:
            server.parent_id = previous.span_id


def _pick(members: list[Span], side: SpanSide) -> Optional[Span]:
    candidates = [span for span in members if span.side is side
                  and span.kind in (SpanKind.SYSCALL, SpanKind.UPROBE)]
    if not candidates:
        return None
    # Deterministic choice: earliest start, then smallest id.
    return min(candidates, key=lambda span: (span.start_time, span.span_id))


def _apply_app_rules(spans: list[Span], by_id: dict[int, Span]) -> None:
    """Rules 5–7: third-party (OpenTelemetry-style) span integration.

      R5  app span ← app span named by its explicit parent span id
      R6  app span ← server-side eBPF span on the same host+pid whose
          interval encloses it (tightest such span)
      R7  client-side eBPF span ← app span on the same host+pid whose
          interval encloses it (tightest), when no explicit link exists
    """
    app_spans = [span for span in spans if span.kind is SpanKind.APP]
    if not app_spans:
        return
    by_otel_id = {span.otel_span_id: span for span in app_spans
                  if span.otel_span_id}
    for span in app_spans:
        if span.parent_id is not None:
            continue
        if span.otel_parent_span_id:
            parent = by_otel_id.get(span.otel_parent_span_id)
            if parent is not None and parent is not span \
                    and not _creates_cycle(span, parent, by_id):
                span.parent_id = parent.span_id
                continue
        enclosing = _tightest_enclosing(
            span, spans,
            lambda candidate: (candidate.side is SpanSide.SERVER
                               and candidate.kind in (SpanKind.SYSCALL,
                                                      SpanKind.UPROBE)
                               and candidate.host == span.host
                               and candidate.pid == span.pid))
        if enclosing is not None \
                and not _creates_cycle(span, enclosing, by_id):
            span.parent_id = enclosing.span_id
    for span in spans:
        if (span.parent_id is not None or span.side is not SpanSide.CLIENT
                or span.kind not in (SpanKind.SYSCALL, SpanKind.UPROBE)):
            continue
        enclosing = _tightest_enclosing(
            span, app_spans,
            lambda candidate: (candidate.host == span.host
                               and candidate.pid == span.pid))
        if enclosing is not None \
                and not _creates_cycle(span, enclosing, by_id):
            span.parent_id = enclosing.span_id


def _apply_intra_component_rules(spans: list[Span],
                                 by_id: dict[int, Span], *,
                                 enable_x_request_id: bool = True) -> None:
    """Rules 8–10: intra-component association.

      R8  client-side eBPF span ← server-side eBPF span with the same
          systrace_id (thread/pseudo-thread association, Fig 7(a))
      R9  client-side eBPF span ← server-side eBPF span with the same
          X-Request-ID on the same host+pid (cross-thread association)
      R10 server-side eBPF span with no inter-component parent stays a
          root (external caller)
    """
    def _keep_canonical(table: dict, key, span: Span) -> None:
        existing = table.get(key)
        if existing is None or ((span.start_time, span.span_id)
                                < (existing.start_time,
                                   existing.span_id)):
            table[key] = span

    servers_by_systrace: dict[int, Span] = {}
    servers_by_xreq: dict[tuple, Span] = {}
    for span in spans:
        if span.side is not SpanSide.SERVER:
            continue
        if span.systrace_id is not None:
            _keep_canonical(servers_by_systrace, span.systrace_id, span)
        if span.x_request_id:
            _keep_canonical(servers_by_xreq,
                            (span.host, span.pid, span.x_request_id),
                            span)
    for span in spans:
        if (span.parent_id is not None or span.side is not SpanSide.CLIENT
                or span.kind not in (SpanKind.SYSCALL, SpanKind.UPROBE)):
            continue
        parent = None
        if span.systrace_id is not None:
            parent = servers_by_systrace.get(span.systrace_id)
        if ((parent is None or parent is span) and span.x_request_id
                and enable_x_request_id):
            parent = servers_by_xreq.get(
                (span.host, span.pid, span.x_request_id))
        if (parent is not None and parent is not span
                and not _creates_cycle(span, parent, by_id)):
            # Cycle guard: the chain rules may already have put the
            # server span under this client span, directly or through
            # intermediate network spans.
            span.parent_id = parent.span_id


def _apply_queue_relay_rules(spans: list[Span],
                             by_id: dict[int, Span]) -> None:
    """Rule 11 (beyond-paper extension): message-queue relay causality.

    §3.3.2 notes DeepFlow "incapable of managing scenarios such as
    message queues" and defers them to future work; this rule closes the
    gap for brokers that carry the producer's message identifier through
    to the consumer delivery (AMQP delivery tags, Kafka offsets, MQTT
    packet ids):

      R11  broker-side deliver/push span (client side, the broker
           pushing to a consumer) ← broker-side publish span (server
           side, the producer's message arriving) with the same
           (protocol, resource, message id) and an earlier start.
    """
    publishes: dict[tuple, Span] = {}
    for span in spans:
        if (span.side is SpanSide.SERVER and span.message_id is not None
                and span.protocol in ("amqp", "kafka", "mqtt")):
            key = (span.protocol, span.resource, span.message_id)
            existing = publishes.get(key)
            if existing is None or ((span.start_time, span.span_id)
                                    < (existing.start_time,
                                       existing.span_id)):
                publishes[key] = span
    for span in spans:
        if (span.parent_id is not None
                or span.side is not SpanSide.CLIENT
                or span.message_id is None
                or span.protocol not in ("amqp", "kafka", "mqtt")):
            continue
        key = (span.protocol, span.resource, span.message_id)
        publish = publishes.get(key)
        if (publish is not None and publish is not span
                and publish.start_time <= span.start_time
                and not _creates_cycle(span, publish, by_id)):
            span.parent_id = publish.span_id


def _tightest_enclosing(span: Span, candidates: list[Span],
                        predicate) -> Optional[Span]:
    best: Optional[Span] = None
    for candidate in candidates:
        if candidate is span or not predicate(candidate):
            continue
        if not candidate.encloses(span, slack=ENCLOSURE_SLACK):
            continue
        if best is None or ((candidate.duration, candidate.span_id)
                            < (best.duration, best.span_id)):
            best = candidate
    return best
