"""Core discrete-event simulation engine.

The engine is deliberately small: a binary heap of timestamped callbacks, a
virtual clock, and generator-based processes.  Determinism is a hard
requirement for the reproduction (DESIGN.md decision 1), so ties on the heap
are broken by a monotonically increasing sequence number and all random
choices are drawn from a single seeded ``random.Random``.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the engine (e.g. running a finished simulator)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised inside a process when it is forcibly killed."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is triggered exactly once via
    :meth:`succeed` or :meth:`fail`.  Processes waiting on it are resumed in
    FIFO order on the same virtual timestamp.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "ok", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.sim._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke *callback* when the event triggers."""
        if self.triggered:
            # Already triggered: deliver on the current timestamp.
            self.sim.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a delay."""

    __slots__ = ("delay", "_fire_value")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._fire_value = value
        sim._schedule(delay, self._fire)

    def _fire(self) -> None:
        self.triggered = True
        self.ok = True
        self.value = self._fire_value
        self._run_callbacks()


class Process:
    """A cooperatively scheduled activity wrapping a generator.

    The generator may yield:

    * an :class:`Event` — suspend until it triggers; ``yield`` evaluates to
      the event's value (or raises its failure exception);
    * an ``int``/``float`` — sleep for that many virtual seconds;
    * another :class:`Process` — join it; ``yield`` evaluates to its result.

    The generator's ``return`` value becomes the process result and is
    delivered to joiners.
    """

    __slots__ = ("sim", "name", "_gen", "_done", "_waiting_on", "_result",
                 "_exception", "finished")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._done = Event(sim)
        self._waiting_on: Optional[Event] = None
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self.finished = False
        sim.call_soon(self._step, None)

    @property
    def result(self) -> Any:
        """The finished process's return value (raises if failed)."""
        if not self.finished:
            raise SimulationError(f"process {self.name!r} not finished")
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def done_event(self) -> Event:
        """Event that triggers when the process finishes."""
        return self._done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption."""
        if self.finished:
            return
        self._detach()
        self.sim.call_soon(self._step_throw, Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process without running further user code."""
        if self.finished:
            return
        self._detach()
        self._gen.close()
        self._finish(None, None)

    def _detach(self) -> None:
        waiting = self._waiting_on
        if waiting is not None and not waiting.triggered:
            try:
                waiting._callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

    # -- stepping machinery -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value)
        else:
            self._step_throw(event.value)

    def _step(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(None, err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Process):
            yielded = yielded._done
        elif isinstance(yielded, (int, float)):
            yielded = Timeout(self.sim, float(yielded))
        if not isinstance(yielded, Event):
            self._step_throw(SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected an "
                "Event, Process, or numeric delay"))
            return
        self._waiting_on = yielded
        yielded.add_callback(self._resume)

    def _finish(self, result: Any, exc: Optional[BaseException]) -> None:
        self.finished = True
        self._result = result
        self._exception = exc
        if exc is None:
            self._done.succeed(result)
        else:
            self._done.fail(exc)


class Simulator:
    """Owner of the virtual clock, event heap, and deterministic RNG."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[Process] = []

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run *fn(\\*args)* at the current timestamp, after pending work."""
        self._schedule(0.0, lambda: fn(*args))

    def _schedule_event(self, event: Event) -> None:
        self._schedule(0.0, event._run_callbacks)

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout event firing after *delay* seconds."""
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        process = Process(self, gen, name=name)
        self._processes.append(process)
        return process

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the first of *events* triggers."""
        composite = self.event()

        def on_trigger(event: Event) -> None:
            """Composite-event callback."""
            if composite.triggered:
                return
            if event.ok:
                composite.succeed(event.value)
            else:
                composite.fail(event.value)

        for event in events:
            event.add_callback(on_trigger)
        return composite

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when every one of *events* has triggered."""
        events = list(events)
        composite = self.event()
        remaining = len(events)
        if remaining == 0:
            composite.succeed([])
            return composite
        results: list[Any] = [None] * remaining

        def make_callback(index: int) -> Callable[[Event], None]:
            """Build the per-event completion callback."""
            def on_trigger(event: Event) -> None:
                """Composite-event callback."""
                nonlocal remaining
                if composite.triggered:
                    return
                if not event.ok:
                    composite.fail(event.value)
                    return
                results[index] = event.value
                remaining -= 1
                if remaining == 0:
                    composite.succeed(results)
            return on_trigger

        for index, event in enumerate(events):
            event.add_callback(make_callback(index))
        return composite

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False when idle."""
        if not self._heap:
            return False
        when, _seq, fn = heapq.heappop(self._heap)
        self.now = when
        fn()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches *until*."""
        if until is None:
            while self.step():
                pass
            return
        while self._heap and self._heap[0][0] <= until:
            self.step()
        if self.now < until:
            self.now = until

    def run_process(self, process: Process,
                    until: Optional[float] = None) -> Any:
        """Run until *process* completes (or *until*), returning its result."""
        while not process.finished:
            if until is not None and self._heap and self._heap[0][0] > until:
                raise SimulationError(
                    f"process {process.name!r} did not finish by t={until}")
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {process.name!r} never finished")
        return process.result
