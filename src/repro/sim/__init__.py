"""Discrete-event simulation engine.

This package provides the deterministic substrate on which the simulated
kernel, network, and microservice applications run.  It is a small,
self-contained event-loop library in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` owns the virtual clock and event heap.
* :class:`~repro.sim.engine.Process` wraps a generator; processes cooperate
  by yielding :class:`~repro.sim.engine.Event` instances, delays, or other
  processes.
* :class:`~repro.sim.queue.Queue` is a blocking FIFO used for socket
  buffers, thread pools, and message brokers.

All randomness used anywhere in the reproduction flows through
``Simulator.rng`` so that every experiment is reproducible bit-for-bit.
"""

from repro.sim.engine import (
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.queue import Queue, QueueClosed

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Queue",
    "QueueClosed",
    "SimulationError",
    "Simulator",
    "Timeout",
]
