"""Blocking FIFO queue for simulated processes.

Used throughout the reproduction: socket receive buffers, thread-pool work
queues, broker queues (the RabbitMQ case study), and the agent's perf ring
buffer all sit on this primitive.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.sim.engine import Event, Simulator


class QueueClosed(Exception):
    """Raised in getters when the queue is closed and drained."""


class Queue:
    """An unbounded (or capacity-bounded) FIFO with blocking ``get``.

    ``put`` never blocks; when a capacity is set, excess items are counted as
    drops (mirroring how a perf buffer or a broker with a full queue behaves)
    rather than back-pressuring the producer.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = ""):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._closed = False
        self.dropped = 0
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether the queue has been closed."""
        return self._closed

    def put(self, item: Any) -> bool:
        """Append *item*; False if dropped (queue full or closed)."""
        if self._closed:
            self.dropped += 1
            return False
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)
        return True

    def get(self) -> Event:
        """Return an event delivering the next item (FIFO among waiters)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.fail(QueueClosed(self.name))
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Pop immediately; raises IndexError when empty."""
        return self._items.popleft()

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items

    def drain_into(self, out: list) -> int:
        """Append all queued items to *out* without blocking.

        The batch-consumption path: a caller-owned (reusable) list
        receives the items, so steady-state polling loops allocate no
        per-cycle list.  Returns the number of items drained.
        """
        count = len(self._items)
        out.extend(self._items)
        self._items.clear()
        return count

    def close(self) -> None:
        """Close the queue; pending and future getters fail."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(QueueClosed(self.name))
