"""Simulated operating-system kernel substrate.

This package stands in for the Linux kernel in the reproduction (DESIGN.md
§1).  It provides:

* :mod:`repro.kernel.process` — OS processes, threads, and coroutines
  (DeepFlow's pseudo-threads);
* :mod:`repro.kernel.sockets` — TCP sockets with genuine byte sequence
  numbers, the substrate for inter-component association;
* :mod:`repro.kernel.syscalls` — the ten ingress/egress syscall ABIs of
  Table 3 and the context records captured at hook time;
* :mod:`repro.kernel.ebpf` — kprobe/tracepoint/uprobe hook points, BPF
  programs with a bounded-complexity verifier, and a perf ring buffer;
* :mod:`repro.kernel.kernel` — the kernel proper: fd tables, blocking
  syscall semantics, and hook dispatch with a calibrated latency model.
"""

from repro.kernel.ebpf import (
    BPFProgram,
    HookRegistry,
    PerfBuffer,
    VerifierError,
    verify_program,
)
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.process import Coroutine, OSProcess, Thread
from repro.kernel.sockets import FiveTuple, Socket, SocketState
from repro.kernel.syscalls import (
    ALL_ABIS,
    EGRESS_ABIS,
    INGRESS_ABIS,
    Direction,
    SyscallContext,
    SyscallRecord,
)

__all__ = [
    "ALL_ABIS",
    "BPFProgram",
    "Coroutine",
    "Direction",
    "EGRESS_ABIS",
    "FiveTuple",
    "HookRegistry",
    "INGRESS_ABIS",
    "Kernel",
    "KernelError",
    "OSProcess",
    "PerfBuffer",
    "Socket",
    "SocketState",
    "SyscallContext",
    "SyscallRecord",
    "Thread",
    "VerifierError",
    "verify_program",
]
