"""Simulated operating-system kernel substrate.

This package stands in for the Linux kernel in the reproduction (DESIGN.md
§1).  It provides:

* :mod:`repro.kernel.process` — OS processes, threads, and coroutines
  (DeepFlow's pseudo-threads);
* :mod:`repro.kernel.sockets` — TCP sockets with genuine byte sequence
  numbers, the substrate for inter-component association;
* :mod:`repro.kernel.syscalls` — the ten ingress/egress syscall ABIs of
  Table 3 and the context records captured at hook time;
* :mod:`repro.kernel.bpf_isa` — a register-based BPF instruction set with
  an assembler (:class:`ProgramBuilder`) and interpreter;
* :mod:`repro.kernel.verifier` — static analysis over that bytecode: CFG
  construction, loop trip-bound proofs, abstract register typing, stack
  bounds, per-hook-type helper whitelists, and worst-case path length;
* :mod:`repro.kernel.ebpf` — kprobe/tracepoint/uprobe hook points, BPF
  programs verified before attachment, and a perf ring buffer;
* :mod:`repro.kernel.kernel` — the kernel proper: fd tables, blocking
  syscall semantics, and hook dispatch with a calibrated latency model.
"""

from repro.kernel.bpf_isa import (
    BPFTrap,
    Insn,
    Op,
    ProgramBuilder,
    execute,
    hook_type_of,
)
from repro.kernel.ebpf import (
    BPFProgram,
    HookRegistry,
    PerfBuffer,
    VerifierError,
    verify_program,
)
from repro.kernel.verifier import VerifierReport, verify_bytecode
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.process import Coroutine, OSProcess, Thread
from repro.kernel.sockets import FiveTuple, Socket, SocketState
from repro.kernel.syscalls import (
    ALL_ABIS,
    EGRESS_ABIS,
    INGRESS_ABIS,
    Direction,
    SyscallContext,
    SyscallRecord,
)

__all__ = [
    "ALL_ABIS",
    "BPFProgram",
    "BPFTrap",
    "Coroutine",
    "Direction",
    "EGRESS_ABIS",
    "FiveTuple",
    "HookRegistry",
    "INGRESS_ABIS",
    "Insn",
    "Kernel",
    "KernelError",
    "OSProcess",
    "Op",
    "PerfBuffer",
    "ProgramBuilder",
    "Socket",
    "SocketState",
    "SyscallContext",
    "SyscallRecord",
    "Thread",
    "VerifierError",
    "VerifierReport",
    "execute",
    "hook_type_of",
    "verify_bytecode",
    "verify_program",
]
