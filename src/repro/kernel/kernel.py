"""The simulated kernel: processes, fd tables, syscalls, hook dispatch.

One :class:`Kernel` exists per host (container node / VM / physical
machine), mirroring the deployment unit of the DeepFlow Agent.  Application
threads invoke syscalls as generator methods (``yield from kernel.read(...)``)
so that blocking semantics, hook latencies, and scheduling all play out on
the simulation clock.

The ten instrumented ABIs of Table 3 funnel into two generic paths,
:meth:`Kernel._sys_ingress` and :meth:`Kernel._sys_egress`; each fires the
``sys_enter_*``/``sys_exit_*`` hook pair around the operation, exactly as in
Figure 5 (steps ①–⑧).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.kernel.ebpf import HookRegistry
from repro.kernel.process import Coroutine, OSProcess, Thread
from repro.kernel.sockets import FiveTuple, Socket, SocketState
from repro.kernel.syscalls import (
    CoroutineEvent,
    Direction,
    SocketCloseEvent,
    SyscallContext,
    UserProbeRecord,
    abi_direction,
)
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.transport import Network

#: Inherent cost of entering+leaving the kernel for one syscall, ns.
SYSCALL_BASE_NS = 1200.0

#: Cost of the uprobe/uretprobe trap mechanism itself, ns (§5.1: the
#: extension hooks "themselves incur a latency of 6153 ns").
UPROBE_TRAP_NS = 6153.0

#: Bytes of payload copied out to the hook context (DeepFlow truncates
#: payloads; protocol headers fit comfortably).
PAYLOAD_CAPTURE_BYTES = 4096

NS = 1e-9


class KernelError(Exception):
    """Bad syscall usage (unknown fd, double listen, ...)."""


class Kernel:
    """Kernel instance for one host."""

    def __init__(self, sim: Simulator, host_name: str,
                 network: Optional["Network"] = None):
        self.sim = sim
        self.host_name = host_name
        self.network = network
        self.hooks = HookRegistry(sim)
        self.processes: dict[int, OSProcess] = {}
        self.sockets: dict[int, Socket] = {}
        self._fd_tables: dict[int, dict[int, Socket]] = {}
        self._listeners: dict[tuple[str, int], "ListenQueue"] = {}
        self._next_pid = 100
        self._next_tid = 1000
        self._next_coroutine_id = 1
        self._next_fd: dict[int, int] = {}
        self._next_port = 40000
        self.syscall_count = 0

    # -- process management ----------------------------------------------

    def create_process(self, name: str, ip: str) -> OSProcess:
        """Create an OS process with a fresh pid."""
        pid = self._next_pid
        self._next_pid += 1
        process = OSProcess(pid, name, ip)
        self.processes[pid] = process
        self._fd_tables[pid] = {}
        self._next_fd[pid] = 3
        return process

    def create_thread(self, process: OSProcess) -> Thread:
        """Create a kernel thread in *process*."""
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid, process)
        process.threads.append(thread)
        return thread

    def create_coroutine(self, thread: Thread,
                         parent: Optional[Coroutine] = None) -> Coroutine:
        """Create a coroutine, firing the ``coroutine_create`` hook.

        DeepFlow monitors these creations to build the parent-child
        pseudo-thread structure (§3.3.1).
        """
        coroutine_id = self._next_coroutine_id
        self._next_coroutine_id += 1
        coroutine = Coroutine(coroutine_id, thread, parent)
        thread.process.coroutines.append(coroutine)
        self.hooks.fire("coroutine_create", CoroutineEvent(
            kind="create",
            pid=thread.pid,
            tid=thread.tid,
            coroutine_id=coroutine_id,
            parent_coroutine_id=parent.coroutine_id if parent else None,
            timestamp=self.sim.now,
            host_name=self.host_name,
        ))
        return coroutine

    # -- socket management -------------------------------------------------

    def _alloc_fd(self, pid: int) -> int:
        fd = self._next_fd[pid]
        self._next_fd[pid] = fd + 1
        return fd

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    def _install_socket(self, process: OSProcess, sock: Socket) -> int:
        fd = self._alloc_fd(process.pid)
        self._fd_tables[process.pid][fd] = sock
        self.sockets[sock.socket_id] = sock
        return fd

    def socket_for_fd(self, thread: Thread, fd: int) -> Socket:
        """Resolve *fd* in the thread's process; raises on bad fd."""
        sock = self._fd_tables.get(thread.pid, {}).get(fd)
        if sock is None:
            raise KernelError(
                f"pid {thread.pid} ({thread.process.name}): bad fd {fd}")
        return sock

    def listen(self, process: OSProcess, port: int) -> "ListenQueue":
        """Bind a listener on (process ip, port) and register it globally."""
        key = (process.ip, port)
        if key in self._listeners:
            raise KernelError(f"address already in use: {key}")
        if self.network is None:
            raise KernelError("kernel is not attached to a network")
        listener = ListenQueue(self, process, port)
        self._listeners[key] = listener
        self.network.register_listener(process.ip, port, self)
        return listener

    def create_server_socket(self,
                             client_tuple: FiveTuple
                             ) -> Optional[Socket]:
        """Called by the network when a connection reaches a local listener.

        Returns the new established server-side socket, or None if nothing
        is listening (connection refused).
        """
        key = (client_tuple.dst_ip, client_tuple.dst_port)
        listener = self._listeners.get(key)
        if listener is None:
            return None
        sock = Socket(self.sim, self.network.alloc_socket_id(),
                      client_tuple.reversed(), listener.process.pid)
        self._install_socket(listener.process, sock)
        listener.enqueue(sock)
        return sock

    def connect(self, thread: Thread, dst_ip: str,
                dst_port: int) -> Generator:
        """Establish a TCP connection; returns the client fd.

        Completes after one path round-trip (the simulated handshake).
        Raises ConnectionRefusedError when nothing listens on the target.
        """
        if self.network is None:
            raise KernelError("kernel is not attached to a network")
        process = thread.process
        five_tuple = FiveTuple(process.ip, self._alloc_port(),
                               dst_ip, dst_port)
        sock = Socket(self.sim, self.network.alloc_socket_id(),
                      five_tuple, process.pid)
        fd = self._install_socket(process, sock)
        yield from self.network.establish(sock)
        return fd

    def accept(self, thread: Thread, listener: "ListenQueue") -> Generator:
        """Block until a connection arrives; returns the new fd."""
        sock = yield listener.queue.get()
        # fd was installed at creation time; find it.
        for fd, installed in self._fd_tables[listener.process.pid].items():
            if installed is sock:
                return fd
        raise KernelError("accepted socket missing from fd table")

    def close(self, thread: Thread, fd: int) -> None:
        """Close and release the resource."""
        sock = self.socket_for_fd(thread, fd)
        sock.close()
        del self._fd_tables[thread.pid][fd]
        self.hooks.fire("socket_close", SocketCloseEvent(
            pid=thread.pid, tid=thread.tid, socket_id=sock.socket_id,
            five_tuple=sock.five_tuple, timestamp=self.sim.now,
            host_name=self.host_name))

    # -- the ten instrumented ABIs (Table 3) --------------------------------

    def read(self, thread, fd, max_bytes=65536):
        """read(2): blocking ingress syscall."""
        return self._sys_ingress(thread, "read", fd, max_bytes)

    def readv(self, thread, fd, max_bytes=65536):
        """readv(2): blocking ingress syscall."""
        return self._sys_ingress(thread, "readv", fd, max_bytes)

    def recvfrom(self, thread, fd, max_bytes=65536):
        """recvfrom(2): blocking ingress syscall."""
        return self._sys_ingress(thread, "recvfrom", fd, max_bytes)

    def recvmsg(self, thread, fd, max_bytes=65536):
        """recvmsg(2): blocking ingress syscall."""
        return self._sys_ingress(thread, "recvmsg", fd, max_bytes)

    def recvmmsg(self, thread, fd, max_bytes=65536):
        """recvmmsg(2): blocking ingress syscall."""
        return self._sys_ingress(thread, "recvmmsg", fd, max_bytes)

    def write(self, thread, fd, data):
        """write(2): egress syscall."""
        return self._sys_egress(thread, "write", fd, data)

    def writev(self, thread, fd, data):
        """writev(2): egress syscall."""
        return self._sys_egress(thread, "writev", fd, data)

    def sendto(self, thread, fd, data):
        """sendto(2): egress syscall."""
        return self._sys_egress(thread, "sendto", fd, data)

    def sendmsg(self, thread, fd, data):
        """sendmsg(2): egress syscall."""
        return self._sys_egress(thread, "sendmsg", fd, data)

    def sendmmsg(self, thread, fd, data):
        """sendmmsg(2): egress syscall."""
        return self._sys_egress(thread, "sendmmsg", fd, data)

    def recv_abi(self, abi: str, thread: Thread, fd: int,
                 max_bytes: int = 65536) -> Generator:
        """Dispatch an ingress ABI by name (used by configurable runtimes)."""
        if abi_direction(abi) is not Direction.INGRESS:
            raise KernelError(f"{abi} is not an ingress ABI")
        return self._sys_ingress(thread, abi, fd, max_bytes)

    def send_abi(self, abi: str, thread: Thread, fd: int,
                 data: bytes) -> Generator:
        """Dispatch an egress ABI by name."""
        if abi_direction(abi) is not Direction.EGRESS:
            raise KernelError(f"{abi} is not an egress ABI")
        return self._sys_egress(thread, abi, fd, data)

    # -- generic syscall paths ----------------------------------------------

    def _context(self, thread: Thread, sock: Socket, abi: str,
                 direction: Direction, is_enter: bool, *, tcp_seq: int = 0,
                 byte_len: int = 0, payload: bytes = b"",
                 ret: int = 0,
                 coroutine_id: Optional[int] = None) -> SyscallContext:
        return SyscallContext(
            pid=thread.pid,
            tid=thread.tid,
            coroutine_id=(coroutine_id if coroutine_id is not None
                          else thread.coroutine_id),
            process_name=thread.process.name,
            socket_id=sock.socket_id,
            five_tuple=sock.five_tuple,
            tcp_seq=tcp_seq,
            timestamp=self.sim.now,
            direction=direction,
            is_enter=is_enter,
            abi=abi,
            byte_len=byte_len,
            payload=payload[:PAYLOAD_CAPTURE_BYTES],
            ret=ret,
            host_name=self.host_name,
        )

    def _sys_ingress(self, thread: Thread, abi: str, fd: int,
                     max_bytes: int) -> Generator:
        """Blocking receive.  Returns the bytes read (b'' at EOF).

        Raises ConnectionResetError if the connection was reset — after
        firing the exit hook with a negative return value, so the agent
        observes the reset too.
        """
        sock = self.socket_for_fd(thread, fd)
        self.syscall_count += 1
        # Snapshot the coroutine identity at entry: by the time a blocking
        # read returns, the thread pointer may name a different coroutine.
        coroutine_id = thread.coroutine_id
        cost_ns = SYSCALL_BASE_NS / 2
        cost_ns += self.hooks.fire(
            f"sys_enter_{abi}",
            self._context(thread, sock, abi, Direction.INGRESS, True,
                          coroutine_id=coroutine_id))
        yield cost_ns * NS
        while not sock.readable:
            yield sock.wait_readable()
        try:
            seq, data = sock.read_available(max_bytes)
        except ConnectionResetError:
            cost_ns = SYSCALL_BASE_NS / 2
            cost_ns += self.hooks.fire(
                f"sys_exit_{abi}",
                self._context(thread, sock, abi, Direction.INGRESS, False,
                              ret=-104, coroutine_id=coroutine_id))
            yield cost_ns * NS
            raise
        cost_ns = SYSCALL_BASE_NS / 2
        cost_ns += self.hooks.fire(
            f"sys_exit_{abi}",
            self._context(thread, sock, abi, Direction.INGRESS, False,
                          tcp_seq=seq, byte_len=len(data), payload=data,
                          ret=len(data), coroutine_id=coroutine_id))
        yield cost_ns * NS
        return data

    def _sys_egress(self, thread: Thread, abi: str, fd: int,
                    data: bytes) -> Generator:
        """Send *data*; returns the byte count written.

        Raises BrokenPipeError on a closed/reset connection.
        """
        sock = self.socket_for_fd(thread, fd)
        self.syscall_count += 1
        if sock.state in (SocketState.CLOSED, SocketState.RESET):
            raise BrokenPipeError(str(sock.five_tuple))
        seq = sock.reserve_tx(len(data))
        coroutine_id = thread.coroutine_id
        cost_ns = SYSCALL_BASE_NS / 2
        cost_ns += self.hooks.fire(
            f"sys_enter_{abi}",
            self._context(thread, sock, abi, Direction.EGRESS, True,
                          tcp_seq=seq, byte_len=len(data), payload=data,
                          coroutine_id=coroutine_id))
        yield cost_ns * NS
        if sock.flow is not None:
            sock.flow.send(sock, seq, data)
        cost_ns = SYSCALL_BASE_NS / 2
        cost_ns += self.hooks.fire(
            f"sys_exit_{abi}",
            self._context(thread, sock, abi, Direction.EGRESS, False,
                          tcp_seq=seq, byte_len=len(data), payload=data,
                          ret=len(data), coroutine_id=coroutine_id))
        yield cost_ns * NS
        return len(data)

    # -- uprobe extension points ---------------------------------------------

    def user_function(self, thread: Thread, function: str, payload: bytes,
                      direction: Direction, fd: int) -> Generator:
        """Execute an instrumentable user-space function (e.g. ssl_write).

        If a uprobe/uretprobe is attached the trap cost is charged and the
        hook observes the *plaintext* payload — this is how DeepFlow sees
        pre-TLS data (§3.2.1).
        """
        sock = self.socket_for_fd(thread, fd)
        process_name = thread.process.name
        enter_hook = f"uprobe:{process_name}:{function}"
        exit_hook = f"uretprobe:{process_name}:{function}"
        enter_time = self.sim.now
        cost_ns = 0.0
        record = UserProbeRecord(
            pid=thread.pid, tid=thread.tid,
            coroutine_id=thread.coroutine_id,
            process_name=process_name, function=function,
            enter_time=enter_time, exit_time=enter_time,
            payload=payload[:PAYLOAD_CAPTURE_BYTES],
            socket_id=sock.socket_id, direction=direction,
            host_name=self.host_name)
        if self.hooks.has_hook(enter_hook):
            cost_ns += UPROBE_TRAP_NS + self.hooks.fire(enter_hook, record)
        if self.hooks.has_hook(exit_hook):
            record.exit_time = self.sim.now
            cost_ns += UPROBE_TRAP_NS + self.hooks.fire(exit_hook, record)
        if cost_ns:
            yield cost_ns * NS
        return None


class ListenQueue:
    """Accept backlog for one listening (ip, port)."""

    def __init__(self, kernel: Kernel, process: OSProcess, port: int):
        from repro.sim.queue import Queue  # local import, no cycle
        self.kernel = kernel
        self.process = process
        self.port = port
        self.queue = Queue(kernel.sim, name=f"listen:{process.ip}:{port}")

    def enqueue(self, sock: Socket) -> None:
        """Append an accepted socket to the backlog."""
        self.queue.put(sock)
