"""TCP sockets with genuine byte sequence numbers.

The TCP sequence number is load-bearing for DeepFlow: because L2/L3/L4
forwarding never rewrites it, the same message observed at the client, at
every capture point along the network path, and at the server shares one
sequence number, and the server uses it for inter-component association
(§3.3.2).  The simulated socket therefore tracks real per-direction byte
counters, exactly like a TCP endpoint.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.network.transport import Flow


@dataclass(frozen=True)
class FiveTuple:
    """The classic connection five-tuple."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FiveTuple":
        """The same connection seen from the other endpoint."""
        return FiveTuple(self.dst_ip, self.dst_port, self.src_ip,
                         self.src_port, self.protocol)

    def canonical(self) -> tuple:
        """An endpoint-order-independent key identifying the connection.

        Memoized on the (frozen, hence immutable) instance: the span
        builder and the flow-metrics index both call this per span, and
        the tuple never changes.
        """
        cached = self.__dict__.get("_canonical")
        if cached is None:
            a = (self.src_ip, self.src_port)
            b = (self.dst_ip, self.dst_port)
            cached = (min(a, b), max(a, b), self.protocol)
            object.__setattr__(self, "_canonical", cached)
        return cached

    def __str__(self) -> str:
        return (f"{self.src_ip}:{self.src_port}->"
                f"{self.dst_ip}:{self.dst_port}/{self.protocol}")


class SocketState(enum.Enum):
    """Lifecycle state of a socket."""
    LISTENING = "listening"
    ESTABLISHED = "established"
    CLOSED = "closed"
    RESET = "reset"


#: Initial send sequence number.  Deterministic for reproducibility; real
#: stacks randomize the ISN but DeepFlow only relies on equality of message
#: first-byte sequence numbers, which randomization does not affect.
INITIAL_SEQ = 1


class Socket:
    """One endpoint of a simulated TCP connection.

    Data arrives as ``(seq, bytes)`` chunks from the network flow and is
    kept in arrival order; a reader drains whole chunks up to its buffer
    size and learns the sequence number of the first byte it read.
    """

    def __init__(self, sim: Simulator, socket_id: int,
                 five_tuple: FiveTuple, pid: int):
        self.sim = sim
        self.socket_id = socket_id
        self.five_tuple = five_tuple
        self.pid = pid
        self.state = SocketState.ESTABLISHED
        self.flow: Optional["Flow"] = None
        self.tx_next_seq = INITIAL_SEQ
        self.rx_next_seq = INITIAL_SEQ
        self._rx_chunks: deque[tuple[int, bytes]] = deque()
        self._rx_waiters: deque[Event] = deque()
        self._eof = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- sending -------------------------------------------------------------

    def reserve_tx(self, nbytes: int) -> int:
        """Allocate sequence space for *nbytes* and return the first seq."""
        seq = self.tx_next_seq
        self.tx_next_seq += nbytes
        self.bytes_sent += nbytes
        return seq

    # -- receiving -----------------------------------------------------------

    def deliver(self, seq: int, data: bytes) -> None:
        """Called by the network flow when a segment reaches this endpoint."""
        if self.state in (SocketState.CLOSED, SocketState.RESET):
            return
        self._rx_chunks.append((seq, data))
        self._wake_readers()

    def deliver_eof(self) -> None:
        """Peer closed its sending side."""
        self._eof = True
        self._wake_readers()

    def deliver_reset(self) -> None:
        """Connection torn down with RST (the RabbitMQ case study path)."""
        self.state = SocketState.RESET
        self._wake_readers()

    def _wake_readers(self) -> None:
        while self._rx_waiters:
            self._rx_waiters.popleft().succeed(None)

    @property
    def readable(self) -> bool:
        """Whether a read would return without blocking."""
        return (bool(self._rx_chunks) or self._eof
                or self.state == SocketState.RESET)

    def wait_readable(self) -> Event:
        """Event that triggers once data, EOF, or a reset is available."""
        event = self.sim.event()
        if self.readable:
            event.succeed(None)
        else:
            self._rx_waiters.append(event)
        return event

    def read_available(self, max_bytes: int) -> tuple[int, bytes]:
        """Drain queued chunks up to *max_bytes*; returns (first_seq, data).

        Raises ConnectionResetError on a reset connection; returns
        ``(rx_next_seq, b"")`` at EOF — mirroring ``read(2)`` semantics.
        """
        if self.state == SocketState.RESET and not self._rx_chunks:
            raise ConnectionResetError(str(self.five_tuple))
        parts: list[bytes] = []
        first_seq: Optional[int] = None
        taken = 0
        while self._rx_chunks and taken < max_bytes:
            seq, data = self._rx_chunks[0]
            if first_seq is None:
                first_seq = seq
            remaining = max_bytes - taken
            if len(data) <= remaining:
                self._rx_chunks.popleft()
                parts.append(data)
                taken += len(data)
            else:
                parts.append(data[:remaining])
                self._rx_chunks[0] = (seq + remaining, data[remaining:])
                taken += remaining
        if first_seq is None:
            # EOF with no pending data.
            return self.rx_next_seq, b""
        payload = b"".join(parts)
        self.rx_next_seq = first_seq + len(payload)
        self.bytes_received += len(payload)
        return first_seq, payload

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Close and release the resource."""
        if self.state in (SocketState.CLOSED, SocketState.RESET):
            return
        self.state = SocketState.CLOSED
        if self.flow is not None:
            self.flow.endpoint_closed(self)
        self._wake_readers()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Socket #{self.socket_id} {self.five_tuple} "
                f"{self.state.value}>")
