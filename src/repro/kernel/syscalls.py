"""The instrumented syscall ABIs and the records captured at hook time.

Table 3 of the paper lists the ten application binary interfaces that
DeepFlow instruments.  They are reproduced verbatim here; everything the
agent observes flows through these (plus the uprobe extension points).

The four categories of information recorded for each ingress/egress call
(§3.2.1) map onto :class:`SyscallContext`:

* program information — ``pid``, ``tid``, ``coroutine_id``, ``process_name``;
* network information — ``socket_id``, ``five_tuple``, ``tcp_seq``;
* tracing information — ``timestamp``, ``direction``;
* system-call information — ``abi``, ``byte_len``, ``payload``, ``ret``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.sockets import FiveTuple

#: Ingress system-call ABIs (Table 3).
INGRESS_ABIS = ("recvmsg", "recvmmsg", "readv", "read", "recvfrom")

#: Egress system-call ABIs (Table 3).
EGRESS_ABIS = ("sendmsg", "sendmmsg", "writev", "write", "sendto")

#: All ten instrumented ABIs.
ALL_ABIS = INGRESS_ABIS + EGRESS_ABIS

#: Hook-point names fired by the kernel for each ABI.
ENTER_HOOKS = tuple(f"sys_enter_{abi}" for abi in ALL_ABIS)
EXIT_HOOKS = tuple(f"sys_exit_{abi}" for abi in ALL_ABIS)


class Direction(enum.Enum):
    """Data direction of a syscall, from the component's point of view."""

    INGRESS = "ingress"
    EGRESS = "egress"


def abi_direction(abi: str) -> Direction:
    """Classify an ABI as ingress or egress (Table 3)."""
    if abi in INGRESS_ABIS:
        return Direction.INGRESS
    if abi in EGRESS_ABIS:
        return Direction.EGRESS
    raise ValueError(f"unknown syscall ABI: {abi}")


@dataclass
class SyscallContext:
    """Snapshot handed to eBPF programs when a hook fires.

    One context is produced at syscall *enter* and a second at *exit*; the
    in-kernel BPF program merges the two via the ``(pid, tid)`` hash map
    (§3.3.1) into a :class:`SyscallRecord`.
    """

    # program information
    pid: int
    tid: int
    coroutine_id: Optional[int]
    process_name: str
    # network information
    socket_id: int
    five_tuple: FiveTuple
    tcp_seq: int
    # tracing information
    timestamp: float
    direction: Direction
    is_enter: bool
    # system-call information
    abi: str
    byte_len: int = 0
    payload: bytes = b""
    ret: int = 0
    host_name: str = ""


@dataclass
class SyscallRecord:
    """Merged enter+exit data for one syscall — the kernel-side output.

    This is what the in-kernel program enqueues into the perf buffer; the
    user-space agent turns streams of these into *message data* and then
    spans (§3.3.1, Figure 6).
    """

    pid: int
    tid: int
    coroutine_id: Optional[int]
    process_name: str
    socket_id: int
    five_tuple: FiveTuple
    tcp_seq: int
    enter_time: float
    exit_time: float
    direction: Direction
    abi: str
    byte_len: int
    payload: bytes
    ret: int
    host_name: str = ""
    #: Overload degradation (repro.agent.overload): the payload copy-out
    #: was shed kernel-side.  The association fields above are intact, so
    #: Algorithm 1 still links the span — only the L7 detail is gone.
    payload_shed: bool = False
    #: For shed records: whether this syscall starts a direction run (the
    #: head of a message) rather than continuing one.  Lets user space
    #: keep multi-syscall messages whole without seeing the payload.
    shed_head: bool = False
    #: For shed records: whether the record travels in the flow's request
    #: direction (the first direction seen on the socket).
    shed_is_request: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds between start and end."""
        return self.exit_time - self.enter_time


@dataclass
class CoroutineEvent:
    """Kernel-visible coroutine lifecycle event (creation/exit).

    DeepFlow monitors coroutine creation to build its pseudo-thread
    structure (§3.3.1); the agent consumes these events to map coroutines
    onto pseudo-threads.
    """

    kind: str  # "create" | "exit"
    pid: int
    tid: int
    coroutine_id: int
    parent_coroutine_id: Optional[int]
    timestamp: float
    host_name: str = ""


@dataclass
class SocketCloseEvent:
    """Kernel-visible socket teardown, fired on ``close(2)``.

    Lets the agent promptly fail any request still open on the socket
    instead of waiting for the time-window flush.
    """

    pid: int
    tid: int
    socket_id: int
    five_tuple: FiveTuple
    timestamp: float
    host_name: str = ""


@dataclass
class UserProbeRecord:
    """Record emitted by a uprobe/uretprobe extension hook (§3.2.1).

    Used for example to lift the plaintext payload out of ``ssl_read`` /
    ``ssl_write`` before TLS encryption.
    """

    pid: int
    tid: int
    coroutine_id: Optional[int]
    process_name: str
    function: str
    enter_time: float
    exit_time: float
    payload: bytes
    socket_id: int
    direction: Direction
    host_name: str = ""
