"""A small register-based BPF instruction set (the tracing programs' ISA).

The paper's safety argument (§2.3.1) rests on eBPF programs being *statically
bounded* before they may attach.  To reproduce that property honestly the
hook programs must be made of actual instructions a verifier can analyze —
not Python callables with self-declared metadata.  This module defines:

* the instruction set: 11 registers (R0–R10), ALU ops, context loads,
  stack loads/stores, conditional jumps, helper calls, exit — a faithful
  miniature of the kernel's BPF ISA (64-bit registers, R10 = read-only
  frame pointer, R1 = context pointer on entry, R0 = return value,
  helpers clobber R1–R5);
* :class:`ProgramBuilder`, a label-resolving assembler for authoring
  bytecode;
* :func:`execute`, a concrete interpreter used to actually run verified
  programs (and, in tests, to check that verification implies trap-freedom).

Static analysis over this ISA lives in :mod:`repro.kernel.verifier`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

#: Register indices.  R10 is the frame pointer (read-only, points at the
#: top of the 512-byte stack); R1 carries the context pointer on entry.
R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10 = range(11)

NUM_REGS = 11

#: BPF stack size, bytes (the kernel's limit).
STACK_SIZE = 512

#: Word size — every load/store moves one 8-byte word.
WORD = 8

#: Hook-context layout: field name → byte offset off the ctx pointer.
#: Mirrors the ``pt_regs``/tracepoint context a real program reads; loads
#: must be word-aligned and inside ``[0, CTX_SIZE)``.
CTX_FIELDS = {
    "pid": 0,
    "tid": 8,
    "coroutine_id": 16,
    "socket_id": 24,
    "tcp_seq": 32,
    "timestamp_ns": 40,
    "direction": 48,
    "byte_len": 56,
    "ret": 64,
    "payload_len": 72,
}

CTX_SIZE = 80

_U64 = (1 << 64) - 1


class Op(enum.Enum):
    """Opcodes.  ``_IMM`` variants take an immediate, ``_REG`` a register."""

    MOV_IMM = "mov_imm"
    MOV_REG = "mov_reg"
    ADD_IMM = "add_imm"
    ADD_REG = "add_reg"
    SUB_IMM = "sub_imm"
    SUB_REG = "sub_reg"
    MUL_IMM = "mul_imm"
    MUL_REG = "mul_reg"
    DIV_IMM = "div_imm"
    DIV_REG = "div_reg"
    MOD_IMM = "mod_imm"
    MOD_REG = "mod_reg"
    AND_IMM = "and_imm"
    AND_REG = "and_reg"
    OR_IMM = "or_imm"
    OR_REG = "or_reg"
    XOR_IMM = "xor_imm"
    XOR_REG = "xor_reg"
    LSH_IMM = "lsh_imm"
    RSH_IMM = "rsh_imm"
    NEG = "neg"
    #: dst = *(u64*)(src + off); src must be a ctx or stack pointer.
    LDX = "ldx"
    #: *(u64*)(dst + off) = src; dst must be a stack pointer.
    STX = "stx"
    #: *(u64*)(dst + off) = imm; dst must be a stack pointer.
    ST = "st"
    JA = "ja"
    JEQ_IMM = "jeq_imm"
    JEQ_REG = "jeq_reg"
    JNE_IMM = "jne_imm"
    JNE_REG = "jne_reg"
    JGT_IMM = "jgt_imm"
    JGT_REG = "jgt_reg"
    JGE_IMM = "jge_imm"
    JGE_REG = "jge_reg"
    JLT_IMM = "jlt_imm"
    JLT_REG = "jlt_reg"
    JLE_IMM = "jle_imm"
    JLE_REG = "jle_reg"
    JSET_IMM = "jset_imm"
    CALL = "call"
    EXIT = "exit"


#: ALU opcodes whose dst must already be initialized (read-modify-write).
ALU_RMW_OPS = frozenset({
    Op.ADD_IMM, Op.ADD_REG, Op.SUB_IMM, Op.SUB_REG, Op.MUL_IMM, Op.MUL_REG,
    Op.DIV_IMM, Op.DIV_REG, Op.MOD_IMM, Op.MOD_REG, Op.AND_IMM, Op.AND_REG,
    Op.OR_IMM, Op.OR_REG, Op.XOR_IMM, Op.XOR_REG, Op.LSH_IMM, Op.RSH_IMM,
    Op.NEG,
})

#: Conditional-jump opcodes comparing dst against an immediate.
JMP_IMM_OPS = {
    Op.JEQ_IMM: lambda a, b: a == b,
    Op.JNE_IMM: lambda a, b: a != b,
    Op.JGT_IMM: lambda a, b: a > b,
    Op.JGE_IMM: lambda a, b: a >= b,
    Op.JLT_IMM: lambda a, b: a < b,
    Op.JLE_IMM: lambda a, b: a <= b,
    Op.JSET_IMM: lambda a, b: (a & b) != 0,
}

#: Conditional-jump opcodes comparing dst against src.
JMP_REG_OPS = {
    Op.JEQ_REG: lambda a, b: a == b,
    Op.JNE_REG: lambda a, b: a != b,
    Op.JGT_REG: lambda a, b: a > b,
    Op.JGE_REG: lambda a, b: a >= b,
    Op.JLT_REG: lambda a, b: a < b,
    Op.JLE_REG: lambda a, b: a <= b,
}

JMP_OPS = frozenset(JMP_IMM_OPS) | frozenset(JMP_REG_OPS)


@dataclass(frozen=True)
class Insn:
    """One instruction.  ``off`` is a memory offset for LDX/STX/ST and a
    relative jump distance for jumps (target = pc + 1 + off, as in BPF)."""

    op: Op
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0

    def __repr__(self) -> str:  # compact, for verifier error messages
        return (f"{self.op.value}(dst=r{self.dst}, src=r{self.src}, "
                f"off={self.off}, imm={self.imm})")


# -- helper functions (the kernel-side API surface) -------------------------

#: Helper name → number of argument registers consumed (R1..R1+arity-1).
HELPERS = {
    "perf_submit": 1,            # R1 = ctx pointer
    "read_ctx_field": 2,         # R1 = ctx pointer, R2 = field offset
    "ktime_get_ns": 0,
    "get_current_pid_tgid": 0,
    "get_smp_processor_id": 0,
    "probe_read_kernel": 2,      # R1 = stack dst pointer, R2 = size
    "probe_read_user": 2,        # R1 = stack dst pointer, R2 = size
}

#: Which helpers each hook type may call (the real verifier enforces
#: prog-type-specific helper sets; kprobes read kernel memory, uprobes
#: user memory, never the other way round).
_COMMON_HELPERS = frozenset({
    "perf_submit", "read_ctx_field", "ktime_get_ns",
    "get_current_pid_tgid", "get_smp_processor_id",
})

HOOK_HELPER_WHITELIST = {
    "kprobe": _COMMON_HELPERS | {"probe_read_kernel"},
    "tracepoint": _COMMON_HELPERS | {"probe_read_kernel"},
    "uprobe": _COMMON_HELPERS | {"probe_read_user"},
    "uretprobe": _COMMON_HELPERS | {"probe_read_user"},
}


def hook_type_of(hook_name: str) -> str:
    """Classify an attach-point name into its hook type.

    ``sys_enter_*``/``sys_exit_*`` are tracepoints, ``uprobe:``/``uretprobe:``
    prefixes are user-space probes, everything else (``coroutine_create``,
    ``socket_close``) attaches as a kprobe.
    """
    if hook_name.startswith(("sys_enter_", "sys_exit_")):
        return "tracepoint"
    if hook_name.startswith("uprobe:"):
        return "uprobe"
    if hook_name.startswith("uretprobe:"):
        return "uretprobe"
    return "kprobe"


# -- assembler --------------------------------------------------------------

class AssemblerError(Exception):
    """Malformed program at build time (unknown label, bad register...)."""


class ProgramBuilder:
    """Label-resolving assembler for BPF bytecode.

    >>> b = ProgramBuilder()
    >>> b.mov_imm(R6, 4)
    >>> b.label("loop")
    >>> b.sub_imm(R6, 1)
    >>> b.jne_imm(R6, 0, "loop")
    >>> b.mov_imm(R0, 0)
    >>> b.exit()
    >>> program = b.assemble()
    """

    def __init__(self) -> None:
        self._insns: list[tuple] = []   # (op, dst, src, off_or_label, imm)
        self._labels: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._insns)

    def label(self, name: str) -> None:
        """Define *name* at the current position."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)

    def _emit(self, op: Op, dst: int = 0, src: int = 0,
              off: "int | str" = 0, imm: int = 0) -> None:
        for reg in (dst, src):
            if not 0 <= reg < NUM_REGS:
                raise AssemblerError(f"bad register r{reg}")
        self._insns.append((op, dst, src, off, imm))

    # ALU ----------------------------------------------------------------
    def mov_imm(self, dst: int, imm: int) -> None:
        """dst = imm."""
        self._emit(Op.MOV_IMM, dst, imm=imm)

    def mov_reg(self, dst: int, src: int) -> None:
        """dst = src."""
        self._emit(Op.MOV_REG, dst, src)

    def add_imm(self, dst: int, imm: int) -> None:
        """dst += imm."""
        self._emit(Op.ADD_IMM, dst, imm=imm)

    def add_reg(self, dst: int, src: int) -> None:
        """dst += src."""
        self._emit(Op.ADD_REG, dst, src)

    def sub_imm(self, dst: int, imm: int) -> None:
        """dst -= imm."""
        self._emit(Op.SUB_IMM, dst, imm=imm)

    def sub_reg(self, dst: int, src: int) -> None:
        """dst -= src."""
        self._emit(Op.SUB_REG, dst, src)

    def mul_imm(self, dst: int, imm: int) -> None:
        """dst *= imm."""
        self._emit(Op.MUL_IMM, dst, imm=imm)

    def div_imm(self, dst: int, imm: int) -> None:
        """dst //= imm (imm must be nonzero)."""
        self._emit(Op.DIV_IMM, dst, imm=imm)

    def mod_imm(self, dst: int, imm: int) -> None:
        """dst %= imm (imm must be nonzero)."""
        self._emit(Op.MOD_IMM, dst, imm=imm)

    def and_imm(self, dst: int, imm: int) -> None:
        """dst &= imm."""
        self._emit(Op.AND_IMM, dst, imm=imm)

    def or_imm(self, dst: int, imm: int) -> None:
        """dst |= imm."""
        self._emit(Op.OR_IMM, dst, imm=imm)

    def xor_reg(self, dst: int, src: int) -> None:
        """dst ^= src."""
        self._emit(Op.XOR_REG, dst, src)

    def lsh_imm(self, dst: int, imm: int) -> None:
        """dst <<= imm."""
        self._emit(Op.LSH_IMM, dst, imm=imm)

    def rsh_imm(self, dst: int, imm: int) -> None:
        """dst >>= imm."""
        self._emit(Op.RSH_IMM, dst, imm=imm)

    # memory --------------------------------------------------------------
    def ldx(self, dst: int, src: int, off: int) -> None:
        """dst = *(u64*)(src + off)."""
        self._emit(Op.LDX, dst, src, off)

    def ld_ctx(self, dst: int, field: str, ctx_reg: int = R1) -> None:
        """dst = ctx->field (an LDX off the ctx pointer)."""
        if field not in CTX_FIELDS:
            raise AssemblerError(f"unknown ctx field {field!r}")
        self._emit(Op.LDX, dst, ctx_reg, CTX_FIELDS[field])

    def stx(self, dst: int, off: int, src: int) -> None:
        """*(u64*)(dst + off) = src."""
        self._emit(Op.STX, dst, src, off)

    def st(self, dst: int, off: int, imm: int) -> None:
        """*(u64*)(dst + off) = imm."""
        self._emit(Op.ST, dst, off=off, imm=imm)

    def stack_store(self, off: int, src: int) -> None:
        """*(u64*)(R10 + off) = src (off negative)."""
        self._emit(Op.STX, R10, src, off)

    def stack_load(self, dst: int, off: int) -> None:
        """dst = *(u64*)(R10 + off) (off negative)."""
        self._emit(Op.LDX, dst, R10, off)

    # control flow --------------------------------------------------------
    def ja(self, target: "int | str") -> None:
        """Unconditional jump to *target* (label or relative offset)."""
        self._emit(Op.JA, off=target)

    def _jmp(self, op: Op, dst: int, src: int, imm: int,
             target: "int | str") -> None:
        self._emit(op, dst, src, target, imm)

    def jeq_imm(self, dst, imm, target):
        """if dst == imm: goto target."""
        self._jmp(Op.JEQ_IMM, dst, 0, imm, target)

    def jne_imm(self, dst, imm, target):
        """if dst != imm: goto target."""
        self._jmp(Op.JNE_IMM, dst, 0, imm, target)

    def jgt_imm(self, dst, imm, target):
        """if dst > imm: goto target."""
        self._jmp(Op.JGT_IMM, dst, 0, imm, target)

    def jge_imm(self, dst, imm, target):
        """if dst >= imm: goto target."""
        self._jmp(Op.JGE_IMM, dst, 0, imm, target)

    def jlt_imm(self, dst, imm, target):
        """if dst < imm: goto target."""
        self._jmp(Op.JLT_IMM, dst, 0, imm, target)

    def jle_imm(self, dst, imm, target):
        """if dst <= imm: goto target."""
        self._jmp(Op.JLE_IMM, dst, 0, imm, target)

    def jset_imm(self, dst, imm, target):
        """if dst & imm: goto target."""
        self._jmp(Op.JSET_IMM, dst, 0, imm, target)

    def jeq_reg(self, dst, src, target):
        """if dst == src: goto target."""
        self._jmp(Op.JEQ_REG, dst, src, 0, target)

    def jne_reg(self, dst, src, target):
        """if dst != src: goto target."""
        self._jmp(Op.JNE_REG, dst, src, 0, target)

    def jlt_reg(self, dst, src, target):
        """if dst < src: goto target."""
        self._jmp(Op.JLT_REG, dst, src, 0, target)

    def jge_reg(self, dst, src, target):
        """if dst >= src: goto target."""
        self._jmp(Op.JGE_REG, dst, src, 0, target)

    def call(self, helper: str) -> None:
        """Call a named kernel helper (args in R1.., result in R0)."""
        if helper not in HELPERS:
            raise AssemblerError(f"unknown helper {helper!r}")
        self._emit(Op.CALL, imm=helper)

    def exit(self) -> None:
        """Return R0 to the kernel."""
        self._emit(Op.EXIT)

    # convenience ---------------------------------------------------------
    def bounded_loop(self, counter: int, trips: int,
                     body: Callable[["ProgramBuilder"], None]) -> None:
        """Emit a counted loop: ``for counter in range(trips): body``.

        The counter register is initialized from an immediate and counts
        down to zero — the canonical form the verifier can prove bounded.
        """
        if trips < 1:
            raise AssemblerError(f"loop trips must be >= 1, got {trips}")
        top = f"__loop_{len(self._insns)}"
        self.mov_imm(counter, trips)
        self.label(top)
        body(self)
        self.sub_imm(counter, 1)
        self.jne_imm(counter, 0, top)

    def assemble(self) -> tuple[Insn, ...]:
        """Resolve labels and return the immutable instruction tuple."""
        resolved: list[Insn] = []
        for pc, (op, dst, src, off, imm) in enumerate(self._insns):
            if op is Op.JA or op in JMP_OPS:
                if isinstance(off, str):
                    if off not in self._labels:
                        raise AssemblerError(f"undefined label {off!r}")
                    off = self._labels[off] - pc - 1
            elif isinstance(off, str):
                raise AssemblerError(f"label operand on non-jump {op}")
            if op is Op.CALL:
                resolved.append(Insn(op, dst, src, 0, imm))
            else:
                resolved.append(Insn(op, dst, src, off, imm))
        return tuple(resolved)


# -- interpreter ------------------------------------------------------------

class BPFTrap(Exception):
    """Runtime fault while executing bytecode (uninitialized read, bad
    memory access, division by zero, step-limit overrun).

    A *verified* program never raises this — that implication is what the
    property tests check."""


_UNINIT = object()


def _signed_of(v: int) -> int:
    """Interpret a u64 value as a two's-complement signed offset."""
    v &= _U64
    return v - (1 << 64) if v >= (1 << 63) else v


def context_words(context: Any) -> dict[int, int]:
    """Lower a hook-context object to the ctx memory a program reads.

    Unknown/missing fields read as 0, so programs run against any context
    object (tests fire hooks with bare ``object()`` sentinels)."""
    words: dict[int, int] = {}
    for name, off in CTX_FIELDS.items():
        if name == "timestamp_ns":
            value = getattr(context, "timestamp", 0) or 0
            value = int(value * 1e9)
        elif name == "payload_len":
            value = len(getattr(context, "payload", b"") or b"")
        elif name == "direction":
            raw = getattr(context, "direction", None)
            value = getattr(raw, "value", 0) if raw is not None else 0
            if not isinstance(value, int):
                value = 0
        else:
            value = getattr(context, name, 0)
            if not isinstance(value, int):
                value = 0
        words[off] = value & _U64
    return words


@dataclass
class ExecutionResult:
    """Outcome of one interpreted run."""

    return_value: int
    steps: int
    submissions: int


def execute(bytecode: tuple[Insn, ...], context: Any = None, *,
            submit: Optional[Callable[[Any], Any]] = None,
            max_steps: int = 4_000_000) -> ExecutionResult:
    """Run *bytecode* against *context*; returns :class:`ExecutionResult`.

    ``submit`` receives the context object on each ``perf_submit`` call.
    Raises :class:`BPFTrap` on any runtime fault — the faults the static
    verifier exists to rule out.
    """
    ctx_mem = context_words(context)
    regs: list = [_UNINIT] * NUM_REGS
    regs[R1] = ("ctx", 0)
    regs[R10] = ("stack", 0)
    stack: dict[int, int] = {}
    pc = 0
    steps = 0
    submissions = 0
    n = len(bytecode)

    def scalar(reg: int) -> int:
        value = regs[reg]
        if value is _UNINIT:
            raise BPFTrap(f"read of uninitialized r{reg} at pc {pc}")
        if isinstance(value, tuple):
            raise BPFTrap(f"r{reg} holds a pointer where a scalar is "
                          f"needed at pc {pc}")
        return value

    while True:
        if pc < 0 or pc >= n:
            raise BPFTrap(f"pc {pc} out of range")
        steps += 1
        if steps > max_steps:
            raise BPFTrap(f"step limit {max_steps} exceeded")
        insn = bytecode[pc]
        op = insn.op
        if op is Op.EXIT:
            return ExecutionResult(scalar(R0), steps, submissions)
        if op is Op.MOV_IMM:
            regs[insn.dst] = insn.imm & _U64
        elif op is Op.MOV_REG:
            value = regs[insn.src]
            if value is _UNINIT:
                raise BPFTrap(f"read of uninitialized r{insn.src} "
                              f"at pc {pc}")
            regs[insn.dst] = value
        elif op in ALU_RMW_OPS:
            held = regs[insn.dst]
            if isinstance(held, tuple) and op in (
                    Op.ADD_IMM, Op.ADD_REG, Op.SUB_IMM, Op.SUB_REG):
                # Pointer +/- scalar adjusts the pointer's offset.
                if op.value.endswith("imm"):
                    delta = insn.imm
                else:
                    delta = _signed_of(scalar(insn.src))
                if op in (Op.SUB_IMM, Op.SUB_REG):
                    delta = -delta
                regs[insn.dst] = (held[0], held[1] + delta)
            else:
                a = scalar(insn.dst)
                if op is Op.NEG:
                    regs[insn.dst] = (-a) & _U64
                else:
                    b = (insn.imm & _U64 if op.value.endswith("imm")
                         else scalar(insn.src))
                    regs[insn.dst] = _alu(op, a, b, pc)
        elif op is Op.LDX:
            base = regs[insn.src]
            if base is _UNINIT or not isinstance(base, tuple):
                raise BPFTrap(f"LDX from non-pointer r{insn.src} at pc {pc}")
            kind, extra = base
            addr = extra + insn.off
            if kind == "ctx":
                if addr % WORD or not 0 <= addr <= CTX_SIZE - WORD:
                    raise BPFTrap(f"ctx load at bad offset {addr} "
                                  f"at pc {pc}")
                regs[insn.dst] = ctx_mem.get(addr, 0)
            else:  # stack
                if addr % WORD or not -STACK_SIZE <= addr <= -WORD:
                    raise BPFTrap(f"stack load at bad offset {addr} "
                                  f"at pc {pc}")
                if addr not in stack:
                    raise BPFTrap(f"read of uninitialized stack slot "
                                  f"{addr} at pc {pc}")
                regs[insn.dst] = stack[addr]
        elif op in (Op.STX, Op.ST):
            base = regs[insn.dst]
            if base is _UNINIT or not isinstance(base, tuple) \
                    or base[0] != "stack":
                raise BPFTrap(f"store through non-stack r{insn.dst} "
                              f"at pc {pc}")
            addr = base[1] + insn.off
            if addr % WORD or not -STACK_SIZE <= addr <= -WORD:
                raise BPFTrap(f"stack store at bad offset {addr} "
                              f"at pc {pc}")
            stack[addr] = (insn.imm & _U64 if op is Op.ST
                           else scalar(insn.src))
        elif op is Op.JA:
            pc += insn.off
        elif op in JMP_IMM_OPS:
            if JMP_IMM_OPS[op](scalar(insn.dst), insn.imm & _U64):
                pc += insn.off
        elif op in JMP_REG_OPS:
            if JMP_REG_OPS[op](scalar(insn.dst), scalar(insn.src)):
                pc += insn.off
        elif op is Op.CALL:
            submissions += _call_helper(insn.imm, regs, stack, ctx_mem,
                                        context, submit, pc)
        else:  # pragma: no cover - exhaustive over Op
            raise BPFTrap(f"unimplemented op {op} at pc {pc}")
        pc += 1


def _alu(op: Op, a: int, b: int, pc: int) -> int:
    if op in (Op.ADD_IMM, Op.ADD_REG):
        return (a + b) & _U64
    if op in (Op.SUB_IMM, Op.SUB_REG):
        return (a - b) & _U64
    if op in (Op.MUL_IMM, Op.MUL_REG):
        return (a * b) & _U64
    if op in (Op.DIV_IMM, Op.DIV_REG):
        if b == 0:
            raise BPFTrap(f"division by zero at pc {pc}")
        return (a // b) & _U64
    if op in (Op.MOD_IMM, Op.MOD_REG):
        if b == 0:
            raise BPFTrap(f"modulo by zero at pc {pc}")
        return (a % b) & _U64
    if op in (Op.AND_IMM, Op.AND_REG):
        return a & b
    if op in (Op.OR_IMM, Op.OR_REG):
        return a | b
    if op in (Op.XOR_IMM, Op.XOR_REG):
        return a ^ b
    if op is Op.LSH_IMM:
        return (a << (b & 63)) & _U64
    if op is Op.RSH_IMM:
        return a >> (b & 63)
    raise BPFTrap(f"unimplemented ALU op {op} at pc {pc}")


def _call_helper(helper: str, regs: list, stack: dict, ctx_mem: dict,
                 context: Any, submit, pc: int) -> int:
    """Execute a helper call; returns 1 if a perf submission happened."""
    arity = HELPERS.get(helper)
    if arity is None:
        raise BPFTrap(f"unknown helper {helper!r} at pc {pc}")
    for reg in range(R1, R1 + arity):
        if regs[reg] is _UNINIT:
            raise BPFTrap(f"helper {helper} argument r{reg} "
                          f"uninitialized at pc {pc}")
    submitted = 0
    if helper == "perf_submit":
        if not (isinstance(regs[R1], tuple) and regs[R1][0] == "ctx"):
            raise BPFTrap(f"perf_submit needs ctx pointer in r1 at pc {pc}")
        if submit is not None:
            submit(context)
        submitted = 1
        result = 0
    elif helper == "read_ctx_field":
        if not (isinstance(regs[R1], tuple) and regs[R1][0] == "ctx"):
            raise BPFTrap(f"read_ctx_field needs ctx pointer in r1 "
                          f"at pc {pc}")
        off = regs[R2]
        if isinstance(off, tuple) or off % WORD \
                or not 0 <= off <= CTX_SIZE - WORD:
            raise BPFTrap(f"read_ctx_field bad offset {off!r} at pc {pc}")
        result = ctx_mem.get(off, 0)
    elif helper == "ktime_get_ns":
        result = ctx_mem.get(CTX_FIELDS["timestamp_ns"], 0)
    elif helper == "get_current_pid_tgid":
        result = ((ctx_mem.get(CTX_FIELDS["pid"], 0) << 32)
                  | ctx_mem.get(CTX_FIELDS["tid"], 0)) & _U64
    elif helper == "get_smp_processor_id":
        result = 0
    elif helper in ("probe_read_kernel", "probe_read_user"):
        dst = regs[R1]
        size = regs[R2]
        if not (isinstance(dst, tuple) and dst[0] == "stack"):
            raise BPFTrap(f"{helper} needs stack pointer in r1 at pc {pc}")
        if isinstance(size, tuple) or size % WORD or size <= 0:
            raise BPFTrap(f"{helper} bad size {size!r} at pc {pc}")
        lo = dst[1]
        if lo % WORD or not -STACK_SIZE <= lo or lo + size > 0:
            raise BPFTrap(f"{helper} writes outside the stack at pc {pc}")
        for off in range(lo, lo + size, WORD):
            stack[off] = 0
        result = 0
    else:  # pragma: no cover - exhaustive over HELPERS
        raise BPFTrap(f"unimplemented helper {helper!r} at pc {pc}")
    # BPF calling convention: R1-R5 are clobbered by the call.
    for reg in range(R1, R5 + 1):
        regs[reg] = _UNINIT
    regs[R0] = result & _U64
    return submitted
