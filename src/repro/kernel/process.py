"""OS processes, threads, and coroutines (pseudo-threads).

DeepFlow's span construction keys on ``(pid, tid)`` — the kernel handles at
most one instrumented syscall per thread at a time — and, for runtimes like
Go, on coroutine identity and parent/child lineage (§3.3.1).  These classes
carry exactly that identity information; the actual scheduling of a thread's
work is a simulation process owned by the application runtime layer.
"""

from __future__ import annotations

from typing import Optional


class Coroutine:
    """A user-space scheduled task multiplexed onto a kernel thread.

    The kernel emits a creation event for every coroutine (hookable by the
    agent), carrying the parent relationship that DeepFlow stores in its
    pseudo-thread structure.
    """

    def __init__(self, coroutine_id: int, thread: "Thread",
                 parent: Optional["Coroutine"] = None):
        self.coroutine_id = coroutine_id
        self.thread = thread
        self.parent = parent

    @property
    def parent_id(self) -> Optional[int]:
        """Parent coroutine's id, or None."""
        return self.parent.coroutine_id if self.parent else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Coroutine {self.coroutine_id} on tid={self.thread.tid}>"


class Thread:
    """A kernel thread.  Syscalls execute in the context of a thread.

    ``current_coroutine`` is the coroutine currently scheduled on this
    thread, if the owning process uses a coroutine runtime; the kernel
    stamps its id into every syscall context.
    """

    def __init__(self, tid: int, process: "OSProcess"):
        self.tid = tid
        self.process = process
        self.current_coroutine: Optional[Coroutine] = None

    @property
    def pid(self) -> int:
        """Owning process id."""
        return self.process.pid

    @property
    def coroutine_id(self) -> Optional[int]:
        """Id of the coroutine scheduled on this thread, if any."""
        coroutine = self.current_coroutine
        return coroutine.coroutine_id if coroutine else None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Thread tid={self.tid} pid={self.pid}>"


class OSProcess:
    """An OS process: a pid, a name, a pod/netns IP, and its threads."""

    def __init__(self, pid: int, name: str, ip: str):
        self.pid = pid
        self.name = name
        self.ip = ip
        self.threads: list[Thread] = []
        self.coroutines: list[Coroutine] = []

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OSProcess pid={self.pid} {self.name!r} ip={self.ip}>"
