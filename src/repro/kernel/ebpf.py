"""eBPF hook machinery: programs, verifier, hook registry, perf buffer.

This module reproduces the properties of eBPF that the paper leans on
(§2.3.1):

* programs attach to *hook points* (kprobes/tracepoints on syscalls,
  uprobes/uretprobes on user functions) without modifying the monitored
  application — attachment is in-flight;
* a *verifier* statically bounds program complexity before it may attach,
  which is why eBPF cannot crash the kernel the way kernel modules do;
* a program that still misbehaves at runtime (raises) is contained: the
  exception is swallowed and counted, never propagated into the kernel;
* data leaves the kernel through a fixed-size *perf buffer*; overload
  manifests as counted drops, not as blocking of the monitored syscall.

The latency model is calibrated against Figure 13: each hook firing costs a
base dispatch latency plus a per-instruction cost, charged to the syscall
that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Optional

from repro.kernel.bpf_isa import Insn, execute, hook_type_of
from repro.kernel.verifier import (
    VerifierError,
    VerifierReport,
    verify_bytecode,
)
from repro.sim.engine import Simulator
from repro.sim.queue import Queue

#: Dispatch cost of an empty program, ns (Fig 13(a) "empty eBPF program").
EMPTY_PROGRAM_LATENCY_NS = 180.0

#: Cost per simulated BPF instruction, ns.
PER_INSTRUCTION_LATENCY_NS = 0.35

#: Verifier limit on program size (the real verifier's 1M-insn limit).
MAX_INSTRUCTIONS = 1_000_000

#: Verifier limit on BPF stack usage, bytes.
MAX_STACK_BYTES = 512

#: Instructions executed on the throttled early-exit path: the program
#: reads its rate-limit map entry, finds the bucket empty, and bails out
#: before building the record.  Charged instead of the full path cost.
THROTTLE_EXIT_INSTRUCTIONS = 16


class TokenBucket:
    """Deterministic token bucket for per-hook firing-time throttling.

    Tokens refill continuously at ``rate`` per second of *simulated*
    time up to ``burst``; each admitted firing spends one token.  The
    kernel-side check (`allow`) is the model of the map-lookup +
    decrement a real rate-limiting eBPF program performs, so it must
    stay allocation-free — it runs once per hook firing.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill",
                 "admitted", "throttled")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = 0.0
        self.admitted = 0
        self.throttled = 0

    def allow(self, now: float) -> bool:
        """Spend one token if available; refills from elapsed sim time."""
        elapsed = now - self.last_refill
        if elapsed > 0.0:
            tokens = self.tokens + elapsed * self.rate
            if tokens > self.burst:
                tokens = self.burst
            self.tokens = tokens
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return True
        self.throttled += 1
        return False


@dataclass
class BPFProgram:
    """A small program attached to a hook point.

    ``handler`` is the program body: a callable receiving the hook context.
    ``bytecode`` is the program text in the :mod:`repro.kernel.bpf_isa`
    instruction set; when present the verifier *analyzes* it (CFG, loop
    bounds, register state, stack depth) and the derived worst-case path
    length — not the declared ``instructions`` estimate — drives the
    Fig 13 latency model.  ``instructions``/``stack_bytes`` remain as
    declared estimates for model-only programs without bytecode.
    """

    name: str
    handler: Callable[[Any], None]
    instructions: int = 500
    stack_bytes: int = 128
    bytecode: Optional[tuple[Insn, ...]] = None
    #: System-level cost per firing beyond pure dispatch: perf-buffer
    #: submission, payload copy-out, map churn, cache pressure.  The
    #: paper's own numbers motivate this split: per-hook dispatch is
    #: 277–889 ns (Fig 13) yet full instrumentation costs tens of µs per
    #: syscall at the macro level (Appendix B's 44k→31k RPS drop).
    system_tax_ns: float = 0.0
    #: Optional firing-time rate limiter (agent self-protection): when
    #: set, :meth:`HookRegistry.fire` consults it before running the
    #: program and charges only the early-exit cost on refusal.
    rate_limiter: Optional[TokenBucket] = None
    runtime_faults: int = field(default=0, init=False)
    #: Firings refused by :attr:`rate_limiter` since attach.
    throttled: int = field(default=0, init=False)
    #: Set by :func:`verify_program` when the program carries bytecode.
    verified: Optional[VerifierReport] = field(default=None, init=False)

    @property
    def effective_instructions(self) -> int:
        """Verifier-derived worst-case path length, falling back to the
        declared estimate for programs without bytecode."""
        if self.verified is not None:
            return self.verified.worst_case_instructions
        return self.instructions

    @property
    def latency_ns(self) -> float:
        """Pure dispatch latency per firing (the Fig 13 quantity)."""
        return (EMPTY_PROGRAM_LATENCY_NS
                + self.effective_instructions * PER_INSTRUCTION_LATENCY_NS)

    @property
    def cost_ns(self) -> float:
        """Total kernel time charged per firing."""
        return self.latency_ns + self.system_tax_ns

    def execute(self, context: Any = None, *, submit=None):
        """Run the program's bytecode in the interpreter (tests/debugging)."""
        if self.bytecode is None:
            raise ValueError(f"program {self.name!r} carries no bytecode")
        return execute(self.bytecode, context, submit=submit)


@lru_cache(maxsize=256)
def _verify_cached(bytecode: tuple[Insn, ...],
                   hook_type: str) -> VerifierReport:
    """Verification is deterministic and agents share bytecode tuples,
    so the (immutable) report can be memoized across attaches — one
    analysis per distinct program text, not one per deploy."""
    return verify_bytecode(bytecode, hook_type,
                           stack_limit=MAX_STACK_BYTES,
                           max_path=MAX_INSTRUCTIONS)


def verify_program(program: BPFProgram,
                   hook_type: str = "kprobe") -> None:
    """Static checks performed before a program may attach (§2.3.1).

    Raises :class:`VerifierError` on rejection.  Programs carrying bytecode
    get the full static analysis (:func:`repro.kernel.verifier.
    verify_bytecode`): CFG construction, back-edge trip-bound proofs,
    abstract register typing, stack bounds, and the per-hook-type helper
    whitelist; the derived worst-case path length is recorded on
    ``program.verified`` and replaces the declared instruction count in
    the latency model.  Programs without bytecode only get the declared
    size/stack checks (the honor-system path kept for model-only
    programs).
    """
    if program.bytecode is not None:
        try:
            program.verified = _verify_cached(program.bytecode, hook_type)
        except VerifierError:
            # Re-run uncached so the error names this program.
            verify_bytecode(program.bytecode, hook_type,
                            stack_limit=MAX_STACK_BYTES,
                            max_path=MAX_INSTRUCTIONS,
                            name=program.name)
            raise
        return
    if program.instructions > MAX_INSTRUCTIONS:
        raise VerifierError(
            f"program {program.name!r}: {program.instructions} instructions "
            f"exceeds the {MAX_INSTRUCTIONS} limit")
    if program.stack_bytes > MAX_STACK_BYTES:
        raise VerifierError(
            f"program {program.name!r}: stack {program.stack_bytes}B "
            f"exceeds {MAX_STACK_BYTES}B")


class HookRegistry:
    """Attachment table mapping hook-point names to verified programs.

    Hook names follow kernel conventions: ``sys_enter_read``,
    ``sys_exit_sendmsg`` (tracepoints/kprobes), ``uprobe:ssl_write`` /
    ``uretprobe:ssl_write`` (user-space probes), ``coroutine_create``.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self._hooks: dict[str, list[BPFProgram]] = {}
        #: Clock source for firing-time rate limiters; a registry built
        #: without one (bare unit tests) cannot host throttled programs.
        self._sim = sim
        self.total_firings = 0
        #: Firings refused by a program's token bucket since boot.
        self.total_throttled = 0
        #: Cumulative kernel time charged across all firings, ns — the
        #: numerator of the overhead-vs-completeness curve.
        self.total_cost_ns = 0.0
        #: Programs refused by the verifier since boot (observability of
        #: the safety mechanism itself).
        self.verifier_rejections = 0

    def attach(self, hook_name: str, program: BPFProgram) -> None:
        """Verify and attach *program* to *hook_name* (in-flight, §3.2.2).

        The verifier runs with the hook type derived from the attach point
        (tracepoint / kprobe / uprobe / uretprobe), so helper whitelists
        are enforced per hook type.
        """
        try:
            verify_program(program, hook_type_of(hook_name))
        except VerifierError:
            self.verifier_rejections += 1
            raise
        self._hooks.setdefault(hook_name, []).append(program)

    def detach(self, hook_name: str, program: BPFProgram) -> None:
        """Remove *program* from *hook_name*.

        The attach point itself is pruned once its last program is gone,
        so iteration over attach points never reports stale hooks.
        """
        programs = self._hooks.get(hook_name)
        if programs is None:
            return
        if program in programs:
            programs.remove(program)
        if not programs:
            del self._hooks[hook_name]

    def detach_all(self) -> None:
        """Remove every attached program."""
        self._hooks.clear()

    def attached(self, hook_name: str) -> list[BPFProgram]:
        """Programs currently attached to *hook_name*."""
        return list(self._hooks.get(hook_name, ()))

    def attach_points(self) -> list[str]:
        """Hook names that currently have at least one program."""
        return sorted(self._hooks)

    def has_hook(self, hook_name: str) -> bool:
        """Whether any program is attached to *hook_name*."""
        return bool(self._hooks.get(hook_name))

    def fire(self, hook_name: str, context: Any) -> float:
        """Run every program attached to *hook_name*.

        Returns the total kernel-time cost in nanoseconds.  Runtime faults
        inside a program are contained (counted on the program, swallowed)
        — an eBPF program cannot crash the kernel.

        A program carrying a :class:`TokenBucket` is consulted before it
        runs: on refusal only the early-exit cost (map lookup + bail) is
        charged and the handler is skipped — the firing-time half of the
        agent's overload self-protection.
        """
        programs = self._hooks.get(hook_name)
        if not programs:
            return 0.0
        cost_ns = 0.0
        for program in programs:
            self.total_firings += 1
            limiter = program.rate_limiter
            if limiter is not None and not limiter.allow(self._sim.now):
                program.throttled += 1
                self.total_throttled += 1
                cost_ns += (EMPTY_PROGRAM_LATENCY_NS
                            + THROTTLE_EXIT_INSTRUCTIONS
                            * PER_INSTRUCTION_LATENCY_NS)
                continue
            cost_ns += program.cost_ns
            try:
                program.handler(context)
            except Exception:  # noqa: BLE001 - containment is the contract
                program.runtime_faults += 1
        self.total_cost_ns += cost_ns
        return cost_ns


class PerfBuffer:
    """Kernel→user-space ring buffer (step ⑩ of Figure 5).

    A bounded queue: the kernel side submits records without ever blocking;
    when user space falls behind, records are dropped and counted, exactly
    like a real perf buffer under overload.
    """

    def __init__(self, sim: Simulator, capacity: int = 65536,
                 name: str = "perf"):
        self._queue = Queue(sim, capacity=capacity, name=name)
        self.capacity = capacity
        #: Deepest simultaneous occupancy ever reached (in records).
        self.high_water = 0
        #: Drops attributed to the submitting hook (e.g. the syscall
        #: ABI), so overload shows *which* hook overran the buffer
        #: instead of one global count.
        self.drops_by_source: dict[str, int] = {}

    def submit(self, record: Any, source: str = "") -> bool:
        """Kernel side: enqueue a record.  Returns False if dropped.

        *source* names the submitting hook for drop attribution.
        """
        if self._queue.put(record):
            depth = len(self._queue)
            if depth > self.high_water:
                self.high_water = depth
            return True
        if source:
            self.drops_by_source[source] = \
                self.drops_by_source.get(source, 0) + 1
        return False

    def get(self):
        """User side: event delivering the next record."""
        return self._queue.get()

    def drain(self) -> list[Any]:
        """User side: take everything currently buffered."""
        return self._queue.drain()

    def drain_into(self, out: list) -> int:
        """User side: append everything buffered to *out*; returns the
        count.  Lets the agent's poll loop reuse one event list instead
        of allocating per drain cycle."""
        return self._queue.drain_into(out)

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def dropped(self) -> int:
        """Records dropped due to overflow."""
        return self._queue.dropped

    @property
    def occupancy(self) -> float:
        """Current fill fraction in [0, 1] — the overload controller's
        pressure signal."""
        return len(self._queue) / self.capacity

    @property
    def total_submitted(self) -> int:
        """Records successfully submitted so far."""
        return self._queue.total_put

    def close(self) -> None:
        """Close and release the resource."""
        self._queue.close()


@dataclass
class UprobeTarget:
    """A user-space function that uprobe/uretprobe hooks can intercept.

    The canonical use in the paper is ``ssl_read``/``ssl_write``: the
    syscall layer only sees ciphertext, while the uprobe sees the plaintext
    argument before encryption (§3.2.1, instrumentation extensions).
    """

    process_name: str
    function: str

    @property
    def enter_hook(self) -> str:
        """Hook name fired at function entry."""
        return f"uprobe:{self.process_name}:{self.function}"

    @property
    def exit_hook(self) -> str:
        """Hook name fired at function return."""
        return f"uretprobe:{self.process_name}:{self.function}"
