"""eBPF hook machinery: programs, verifier, hook registry, perf buffer.

This module reproduces the properties of eBPF that the paper leans on
(§2.3.1):

* programs attach to *hook points* (kprobes/tracepoints on syscalls,
  uprobes/uretprobes on user functions) without modifying the monitored
  application — attachment is in-flight;
* a *verifier* statically bounds program complexity before it may attach,
  which is why eBPF cannot crash the kernel the way kernel modules do;
* a program that still misbehaves at runtime (raises) is contained: the
  exception is swallowed and counted, never propagated into the kernel;
* data leaves the kernel through a fixed-size *perf buffer*; overload
  manifests as counted drops, not as blocking of the monitored syscall.

The latency model is calibrated against Figure 13: each hook firing costs a
base dispatch latency plus a per-instruction cost, charged to the syscall
that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.queue import Queue

#: Dispatch cost of an empty program, ns (Fig 13(a) "empty eBPF program").
EMPTY_PROGRAM_LATENCY_NS = 180.0

#: Cost per simulated BPF instruction, ns.
PER_INSTRUCTION_LATENCY_NS = 0.35

#: Verifier limit on program size (the real verifier's 1M-insn limit).
MAX_INSTRUCTIONS = 1_000_000

#: Verifier limit on BPF stack usage, bytes.
MAX_STACK_BYTES = 512


class VerifierError(Exception):
    """Raised when a BPF program fails verification and may not attach."""


@dataclass
class BPFProgram:
    """A small program attached to a hook point.

    ``handler`` is the program body: a callable receiving the hook context.
    ``instructions``/``stack_bytes``/``has_unbounded_loop`` describe the
    program to the verifier and the latency model.
    """

    name: str
    handler: Callable[[Any], None]
    instructions: int = 500
    stack_bytes: int = 128
    has_unbounded_loop: bool = False
    #: System-level cost per firing beyond pure dispatch: perf-buffer
    #: submission, payload copy-out, map churn, cache pressure.  The
    #: paper's own numbers motivate this split: per-hook dispatch is
    #: 277–889 ns (Fig 13) yet full instrumentation costs tens of µs per
    #: syscall at the macro level (Appendix B's 44k→31k RPS drop).
    system_tax_ns: float = 0.0
    runtime_faults: int = field(default=0, init=False)

    @property
    def latency_ns(self) -> float:
        """Pure dispatch latency per firing (the Fig 13 quantity)."""
        return (EMPTY_PROGRAM_LATENCY_NS
                + self.instructions * PER_INSTRUCTION_LATENCY_NS)

    @property
    def cost_ns(self) -> float:
        """Total kernel time charged per firing."""
        return self.latency_ns + self.system_tax_ns


def verify_program(program: BPFProgram) -> None:
    """Static checks performed before a program may attach (§2.3.1).

    Raises :class:`VerifierError` on rejection.  Mirrors the real verifier's
    refusal of unbounded loops, oversized programs, and deep stacks.
    """
    if program.has_unbounded_loop:
        raise VerifierError(
            f"program {program.name!r}: back-edge without bounded trip count")
    if program.instructions > MAX_INSTRUCTIONS:
        raise VerifierError(
            f"program {program.name!r}: {program.instructions} instructions "
            f"exceeds the {MAX_INSTRUCTIONS} limit")
    if program.stack_bytes > MAX_STACK_BYTES:
        raise VerifierError(
            f"program {program.name!r}: stack {program.stack_bytes}B "
            f"exceeds {MAX_STACK_BYTES}B")


class HookRegistry:
    """Attachment table mapping hook-point names to verified programs.

    Hook names follow kernel conventions: ``sys_enter_read``,
    ``sys_exit_sendmsg`` (tracepoints/kprobes), ``uprobe:ssl_write`` /
    ``uretprobe:ssl_write`` (user-space probes), ``coroutine_create``.
    """

    def __init__(self) -> None:
        self._hooks: dict[str, list[BPFProgram]] = {}
        self.total_firings = 0

    def attach(self, hook_name: str, program: BPFProgram) -> None:
        """Verify and attach *program* to *hook_name* (in-flight, §3.2.2)."""
        verify_program(program)
        self._hooks.setdefault(hook_name, []).append(program)

    def detach(self, hook_name: str, program: BPFProgram) -> None:
        """Remove *program* from *hook_name*."""
        programs = self._hooks.get(hook_name, [])
        if program in programs:
            programs.remove(program)

    def detach_all(self) -> None:
        """Remove every attached program."""
        self._hooks.clear()

    def attached(self, hook_name: str) -> list[BPFProgram]:
        """Programs currently attached to *hook_name*."""
        return list(self._hooks.get(hook_name, ()))

    def has_hook(self, hook_name: str) -> bool:
        """Whether any program is attached to *hook_name*."""
        return bool(self._hooks.get(hook_name))

    def fire(self, hook_name: str, context: Any) -> float:
        """Run every program attached to *hook_name*.

        Returns the total kernel-time cost in nanoseconds.  Runtime faults
        inside a program are contained (counted on the program, swallowed)
        — an eBPF program cannot crash the kernel.
        """
        programs = self._hooks.get(hook_name)
        if not programs:
            return 0.0
        cost_ns = 0.0
        for program in programs:
            self.total_firings += 1
            cost_ns += program.cost_ns
            try:
                program.handler(context)
            except Exception:  # noqa: BLE001 - containment is the contract
                program.runtime_faults += 1
        return cost_ns


class PerfBuffer:
    """Kernel→user-space ring buffer (step ⑩ of Figure 5).

    A bounded queue: the kernel side submits records without ever blocking;
    when user space falls behind, records are dropped and counted, exactly
    like a real perf buffer under overload.
    """

    def __init__(self, sim: Simulator, capacity: int = 65536,
                 name: str = "perf"):
        self._queue = Queue(sim, capacity=capacity, name=name)

    def submit(self, record: Any) -> bool:
        """Kernel side: enqueue a record.  Returns False if dropped."""
        return self._queue.put(record)

    def get(self):
        """User side: event delivering the next record."""
        return self._queue.get()

    def drain(self) -> list[Any]:
        """User side: take everything currently buffered."""
        return self._queue.drain()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def dropped(self) -> int:
        """Records dropped due to overflow."""
        return self._queue.dropped

    @property
    def total_submitted(self) -> int:
        """Records successfully submitted so far."""
        return self._queue.total_put

    def close(self) -> None:
        """Close and release the resource."""
        self._queue.close()


@dataclass
class UprobeTarget:
    """A user-space function that uprobe/uretprobe hooks can intercept.

    The canonical use in the paper is ``ssl_read``/``ssl_write``: the
    syscall layer only sees ciphertext, while the uprobe sees the plaintext
    argument before encryption (§3.2.1, instrumentation extensions).
    """

    process_name: str
    function: str

    @property
    def enter_hook(self) -> str:
        """Hook name fired at function entry."""
        return f"uprobe:{self.process_name}:{self.function}"

    @property
    def exit_hook(self) -> str:
        """Hook name fired at function return."""
        return f"uretprobe:{self.process_name}:{self.function}"
