"""Static analysis over BPF bytecode: the in-kernel verifier, reproduced.

The real verifier is what makes eBPF attachment safe (§2.3.1): before a
program may attach it is proven to terminate, to never read uninitialized
state, to never access memory out of bounds, and to call only helpers its
program type is allowed.  This module performs those analyses on
:mod:`repro.kernel.bpf_isa` bytecode:

* **structural checks** — jump targets in range, no fall-through past the
  end, no unreachable instructions;
* **CFG construction** with back-edge detection;
* **abstract interpretation** over all paths, tracking per-register types
  (uninitialized / scalar / ctx-pointer / stack-pointer) with constant
  folding.  A back-edge is accepted only when the abstract state keeps
  changing until the loop exits — i.e. a provable trip bound; a recurring
  abstract state is a proof of non-termination and rejects the program.
  This mirrors the kernel verifier's path-exploration design (it too walks
  every path under an instruction budget);
* **bounds** — stack depth, ctx-load offsets, helper whitelist per hook
  type, division by a provably nonzero divisor only;
* **worst-case path length** — the longest instruction sequence any
  execution can take, loops included.  This derived count (not a declared
  one) feeds the Fig 13 latency model via ``BPFProgram.latency_ns``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.kernel.bpf_isa import (
    ALU_RMW_OPS,
    CTX_SIZE,
    HELPERS,
    HOOK_HELPER_WHITELIST,
    Insn,
    JMP_IMM_OPS,
    JMP_OPS,
    JMP_REG_OPS,
    NUM_REGS,
    Op,
    R0,
    R1,
    R2,
    R5,
    R10,
    STACK_SIZE,
    WORD,
)

_U64 = (1 << 64) - 1

#: Hard cap on the *worst-case executed path length* (the kernel's 1M).
MAX_PATH_INSTRUCTIONS = 1_000_000

#: Budget on abstract states explored before a program is "too complex".
DEFAULT_STATE_BUDGET = 1_000_000


class VerifierError(Exception):
    """Raised when a BPF program fails verification and may not attach."""


# -- abstract values --------------------------------------------------------
# None            -> uninitialized
# ("s", v|None)   -> scalar, optionally a known constant
# ("c", off)      -> ctx pointer + constant offset
# ("f", off)      -> stack (frame) pointer + constant offset

_SCALAR_UNKNOWN = ("s", None)


def _signed(v: int) -> int:
    """Interpret a u64 value as a two's-complement signed offset."""
    v &= _U64
    return v - (1 << 64) if v >= (1 << 63) else v


def _is_scalar(v) -> bool:
    return v is not None and v[0] == "s"


def _is_ptr(v) -> bool:
    return v is not None and v[0] in ("c", "f")


@dataclass(frozen=True)
class VerifierReport:
    """Everything the verifier proved about a program."""

    #: Static instruction count of the program text.
    insn_count: int
    #: Longest executable instruction sequence (loops fully expanded).
    worst_case_instructions: int
    #: Deepest stack usage proven, bytes.
    stack_bytes: int
    #: Basic blocks in the (reachable) CFG.
    block_count: int
    #: Structural back-edges, each with its proven trip bound —
    #: the number of times the edge can be taken (a loop of N
    #: iterations takes its back-edge N-1 times):
    #: ``(src_pc, dst_pc, max_taken)``.
    loop_bounds: tuple[tuple[int, int, int], ...]
    #: Helpers the program may call.
    helpers: tuple[str, ...]
    #: Abstract states explored during verification.
    states_explored: int

    @property
    def back_edge_count(self) -> int:
        """Number of structural loops."""
        return len(self.loop_bounds)


# -- structural layer -------------------------------------------------------

def _successor_pcs(bytecode: tuple[Insn, ...], pc: int) -> list[int]:
    """CFG successors of the instruction at *pc* (validated)."""
    insn = bytecode[pc]
    n = len(bytecode)
    if insn.op is Op.EXIT:
        return []
    succs = []
    if insn.op is Op.JA:
        succs = [pc + 1 + insn.off]
    elif insn.op in JMP_OPS:
        succs = [pc + 1, pc + 1 + insn.off]
    else:
        succs = [pc + 1]
    for target in succs:
        if not 0 <= target < n:
            if target == n:
                raise VerifierError(
                    f"pc {pc}: control falls off the end of the program")
            raise VerifierError(
                f"pc {pc}: jump target {target} out of range")
    return succs


def _structural_analysis(bytecode: tuple[Insn, ...]):
    """Reachability, basic blocks, and back-edges of the static CFG."""
    n = len(bytecode)
    succs = {pc: _successor_pcs(bytecode, pc) for pc in range(n)}
    reachable: set[int] = set()
    worklist = [0]
    while worklist:
        pc = worklist.pop()
        if pc in reachable:
            continue
        reachable.add(pc)
        worklist.extend(succs[pc])
    unreachable = sorted(set(range(n)) - reachable)
    if unreachable:
        raise VerifierError(
            f"unreachable instruction at pc {unreachable[0]} "
            f"({bytecode[unreachable[0]]!r})")
    # Basic-block leaders: entry, jump targets, fall-throughs after jumps.
    leaders = {0}
    for pc in range(n):
        insn = bytecode[pc]
        if insn.op is Op.JA or insn.op in JMP_OPS:
            leaders.update(succs[pc])
        if insn.op in JMP_OPS or insn.op is Op.EXIT:
            if pc + 1 < n:
                leaders.add(pc + 1)
    block_count = len(leaders & reachable)
    # Back-edges via iterative DFS (gray/black coloring).
    back_edges: list[tuple[int, int]] = []
    color: dict[int, int] = {}  # 1 = on stack, 2 = done
    stack: list[tuple[int, int]] = [(0, 0)]
    color[0] = 1
    while stack:
        pc, idx = stack[-1]
        if idx < len(succs[pc]):
            stack[-1] = (pc, idx + 1)
            nxt = succs[pc][idx]
            state = color.get(nxt)
            if state == 1:
                back_edges.append((pc, nxt))
            elif state is None:
                color[nxt] = 1
                stack.append((nxt, 0))
        else:
            color[pc] = 2
            stack.pop()
    return block_count, sorted(set(back_edges))


def _validate_insns(bytecode: tuple[Insn, ...], hook_type: str) -> None:
    """Per-instruction static validity (registers, helpers, immediates)."""
    whitelist = HOOK_HELPER_WHITELIST.get(hook_type)
    if whitelist is None:
        raise VerifierError(f"unknown hook type {hook_type!r}")
    for pc, insn in enumerate(bytecode):
        if not isinstance(insn, Insn):
            raise VerifierError(f"pc {pc}: not an instruction: {insn!r}")
        if not 0 <= insn.dst < NUM_REGS or not 0 <= insn.src < NUM_REGS:
            raise VerifierError(f"pc {pc}: bad register operand")
        if insn.op in (Op.DIV_IMM, Op.MOD_IMM) and insn.imm == 0:
            raise VerifierError(f"pc {pc}: division by zero immediate")
        if insn.dst == R10 and (insn.op is Op.MOV_IMM
                                or insn.op is Op.MOV_REG
                                or insn.op is Op.LDX
                                or insn.op in ALU_RMW_OPS):
            raise VerifierError(
                f"pc {pc}: frame pointer r10 is read-only")
        if insn.op is Op.CALL:
            if insn.imm not in HELPERS:
                raise VerifierError(f"pc {pc}: unknown helper {insn.imm!r}")
            if insn.imm not in whitelist:
                raise VerifierError(
                    f"pc {pc}: helper {insn.imm!r} not allowed from "
                    f"{hook_type} programs")


# -- abstract interpretation ------------------------------------------------

class _Analysis:
    """Path exploration with memoized longest-suffix computation.

    Each abstract state is (pc, registers, stack contents).  Executing one
    instruction yields 0 (exit), 1, or 2 (unknown-condition fork) successor
    states.  The state graph must be a DAG: a successor that is an ancestor
    on the current DFS path means the abstract state recurs without
    progress, i.e. the loop cannot be proven to terminate.  The longest
    path through the DAG is the worst-case executed instruction count.
    """

    def __init__(self, bytecode: tuple[Insn, ...], hook_type: str,
                 stack_limit: int, state_budget: int):
        self.bytecode = bytecode
        self.hook_type = hook_type
        self.stack_limit = stack_limit
        self.state_budget = state_budget
        self.max_stack_depth = 0
        self.helpers_used: set[str] = set()
        self.back_edge_trips: dict[tuple[int, int], int] = {}
        self.states_explored = 0

    def initial_state(self):
        regs = [None] * NUM_REGS
        regs[R1] = ("c", 0)
        regs[R10] = ("f", 0)
        return (0, tuple(regs), ())

    def run(self) -> int:
        """Returns the worst-case path length; raises VerifierError."""
        memo: dict[tuple, int] = {}
        on_path: set[tuple] = set()
        init = self.initial_state()
        # Iterative DFS: (state, successor list or None, next index).
        stack: list[list] = [[init, None, 0]]
        on_path.add(init)
        while stack:
            frame = stack[-1]
            state, succs, idx = frame
            if succs is None:
                self.states_explored += 1
                if self.states_explored > self.state_budget:
                    raise VerifierError(
                        f"program too complex: more than "
                        f"{self.state_budget} abstract states")
                frame[1] = succs = self.step(state)
            if frame[2] < len(succs):
                frame[2] += 1
                nxt = succs[frame[2] - 1]
                if nxt[0] <= state[0]:
                    edge = (state[0], nxt[0])
                    self.back_edge_trips[edge] = \
                        self.back_edge_trips.get(edge, 0) + 1
                if nxt in on_path:
                    raise VerifierError(
                        f"back-edge {state[0]}->{nxt[0]} without a "
                        f"provable trip bound: abstract state recurs "
                        f"(unbounded loop)")
                if nxt not in memo:
                    on_path.add(nxt)
                    stack.append([nxt, None, 0])
            else:
                suffix = 1 + max(
                    (memo[s] for s in succs), default=0)
                memo[state] = suffix
                on_path.discard(state)
                stack.pop()
        return memo[init]

    # -- one-instruction abstract step ----------------------------------

    def step(self, state) -> list:
        pc, regs_t, stack_t = state
        insn = self.bytecode[pc]
        op = insn.op
        regs = list(regs_t)
        stack = dict(stack_t)

        def scalar_of(reg: int):
            v = regs[reg]
            if v is None:
                raise VerifierError(
                    f"pc {pc}: read of uninitialized r{reg}")
            if _is_ptr(v):
                raise VerifierError(
                    f"pc {pc}: r{reg} holds a pointer where a scalar "
                    f"is required")
            return v[1]

        def pack(new_pc: int):
            return (new_pc, tuple(regs), tuple(sorted(stack.items())))

        if op is Op.EXIT:
            v = regs[R0]
            if v is None:
                raise VerifierError(
                    f"pc {pc}: r0 is uninitialized at exit")
            if _is_ptr(v):
                raise VerifierError(f"pc {pc}: r0 leaks a pointer at exit")
            return []
        if op is Op.MOV_IMM:
            regs[insn.dst] = ("s", insn.imm & _U64)
            return [pack(pc + 1)]
        if op is Op.MOV_REG:
            v = regs[insn.src]
            if v is None:
                raise VerifierError(
                    f"pc {pc}: read of uninitialized r{insn.src}")
            regs[insn.dst] = v
            return [pack(pc + 1)]
        if op in ALU_RMW_OPS:
            self._abstract_alu(pc, insn, regs, scalar_of)
            return [pack(pc + 1)]
        if op is Op.LDX:
            self._abstract_load(pc, insn, regs, stack)
            return [pack(pc + 1)]
        if op in (Op.STX, Op.ST):
            self._abstract_store(pc, insn, regs, stack, scalar_of)
            return [pack(pc + 1)]
        if op is Op.JA:
            return [pack(pc + 1 + insn.off)]
        if op in JMP_IMM_OPS or op in JMP_REG_OPS:
            return self._abstract_jump(pc, insn, regs, stack, scalar_of)
        if op is Op.CALL:
            self._abstract_call(pc, insn, regs, stack)
            return [pack(pc + 1)]
        raise VerifierError(f"pc {pc}: unverifiable op {op}")

    def _abstract_alu(self, pc, insn, regs, scalar_of) -> None:
        op = insn.op
        dst_v = regs[insn.dst]
        if dst_v is None:
            raise VerifierError(
                f"pc {pc}: read of uninitialized r{insn.dst}")
        if op.value.endswith("imm"):
            rhs_known, rhs = True, insn.imm  # raw: sign matters to ptrs
        elif op is Op.NEG:
            rhs_known, rhs = True, 0
        else:
            rhs = scalar_of(insn.src)
            rhs_known = rhs is not None
        if _is_ptr(dst_v):
            # Pointer arithmetic: only += / -= a *known* scalar, so the
            # resulting offset stays provably in bounds.
            if op not in (Op.ADD_IMM, Op.ADD_REG, Op.SUB_IMM, Op.SUB_REG):
                raise VerifierError(
                    f"pc {pc}: arithmetic {op.value} on pointer "
                    f"r{insn.dst}")
            if not rhs_known:
                raise VerifierError(
                    f"pc {pc}: pointer r{insn.dst} offset by unbounded "
                    f"scalar")
            delta = _signed(rhs)
            if op in (Op.SUB_IMM, Op.SUB_REG):
                delta = -delta
            regs[insn.dst] = (dst_v[0], dst_v[1] + delta)
            return
        lhs = dst_v[1]
        if op in (Op.DIV_REG, Op.MOD_REG):
            if not rhs_known or rhs == 0:
                raise VerifierError(
                    f"pc {pc}: division by a scalar not provably "
                    f"nonzero")
        if lhs is None or (not rhs_known and op is not Op.NEG):
            regs[insn.dst] = _SCALAR_UNKNOWN
            return
        regs[insn.dst] = ("s", _fold(op, lhs, rhs & _U64))

    def _abstract_load(self, pc, insn, regs, stack) -> None:
        base = regs[insn.src]
        if base is None or not _is_ptr(base):
            raise VerifierError(
                f"pc {pc}: LDX from non-pointer r{insn.src}")
        addr = base[1] + insn.off
        if base[0] == "c":
            if addr % WORD or not 0 <= addr <= CTX_SIZE - WORD:
                raise VerifierError(
                    f"pc {pc}: ctx load at invalid offset {addr}")
            regs[insn.dst] = _SCALAR_UNKNOWN
        else:
            self._check_stack_slot(pc, addr, "load")
            if addr not in stack:
                raise VerifierError(
                    f"pc {pc}: read of uninitialized stack slot {addr}")
            regs[insn.dst] = stack[addr]

    def _abstract_store(self, pc, insn, regs, stack, scalar_of) -> None:
        base = regs[insn.dst]
        if base is None or not _is_ptr(base) or base[0] != "f":
            raise VerifierError(
                f"pc {pc}: store through non-stack r{insn.dst}")
        addr = base[1] + insn.off
        self._check_stack_slot(pc, addr, "store")
        if insn.op is Op.ST:
            stack[addr] = ("s", insn.imm & _U64)
        else:
            v = regs[insn.src]
            if v is None:
                raise VerifierError(
                    f"pc {pc}: read of uninitialized r{insn.src}")
            stack[addr] = v

    def _check_stack_slot(self, pc: int, addr: int, what: str) -> None:
        if addr % WORD or not -self.stack_limit <= addr <= -WORD:
            raise VerifierError(
                f"pc {pc}: stack {what} at invalid offset {addr} "
                f"(limit {self.stack_limit}B)")
        self.max_stack_depth = max(self.max_stack_depth, -addr)

    def _abstract_jump(self, pc, insn, regs, stack, scalar_of) -> list:
        op = insn.op
        lhs = scalar_of(insn.dst)
        if op in JMP_REG_OPS:
            rhs = scalar_of(insn.src)
            rhs_known = rhs is not None
            test = JMP_REG_OPS[op]
        else:
            rhs, rhs_known = insn.imm & _U64, True
            test = JMP_IMM_OPS[op]
        taken_pc = pc + 1 + insn.off
        fall_pc = pc + 1

        def pack(new_pc, new_regs):
            return (new_pc, tuple(new_regs),
                    tuple(sorted(stack.items())))

        if lhs is not None and rhs_known:
            # Both sides known: the branch is decided at verification time.
            return [pack(taken_pc if test(lhs, rhs) else fall_pc, regs)]
        # Unknown condition: explore both arms, refining equality facts.
        taken_regs = list(regs)
        fall_regs = list(regs)
        if rhs_known and _is_scalar(regs[insn.dst]):
            if op is Op.JEQ_IMM:
                taken_regs[insn.dst] = ("s", rhs)
            elif op is Op.JNE_IMM:
                fall_regs[insn.dst] = ("s", rhs)
        return [pack(fall_pc, fall_regs), pack(taken_pc, taken_regs)]

    def _abstract_call(self, pc, insn, regs, stack) -> None:
        helper = insn.imm
        self.helpers_used.add(helper)
        arity = HELPERS[helper]
        for reg in range(R1, R1 + arity):
            if regs[reg] is None:
                raise VerifierError(
                    f"pc {pc}: helper {helper} argument r{reg} "
                    f"uninitialized")
        if helper in ("perf_submit", "read_ctx_field"):
            if not (regs[R1] is not None and regs[R1][0] == "c"
                    and regs[R1][1] == 0):
                raise VerifierError(
                    f"pc {pc}: helper {helper} requires the ctx pointer "
                    f"in r1")
        if helper == "read_ctx_field":
            off_v = regs[R2]
            if not _is_scalar(off_v) or off_v[1] is None:
                raise VerifierError(
                    f"pc {pc}: read_ctx_field offset must be a known "
                    f"constant")
            if off_v[1] % WORD or not 0 <= off_v[1] <= CTX_SIZE - WORD:
                raise VerifierError(
                    f"pc {pc}: read_ctx_field offset {off_v[1]} out of "
                    f"bounds")
        if helper in ("probe_read_kernel", "probe_read_user"):
            dst_v, size_v = regs[R1], regs[R2]
            if not (_is_ptr(dst_v) and dst_v[0] == "f"):
                raise VerifierError(
                    f"pc {pc}: {helper} destination must be a stack "
                    f"pointer")
            if not _is_scalar(size_v) or size_v[1] is None:
                raise VerifierError(
                    f"pc {pc}: {helper} size must be a known constant")
            size = size_v[1]
            if size <= 0 or size % WORD:
                raise VerifierError(
                    f"pc {pc}: {helper} size {size} not a positive "
                    f"multiple of {WORD}")
            lo = dst_v[1]
            if lo % WORD or lo + size > 0 or lo < -self.stack_limit:
                raise VerifierError(
                    f"pc {pc}: {helper} writes outside the stack "
                    f"(offset {lo}, size {size})")
            for off in range(lo, lo + size, WORD):
                stack[off] = _SCALAR_UNKNOWN
            self.max_stack_depth = max(self.max_stack_depth, -lo)
        # Calling convention: R0 = result, R1-R5 clobbered.
        regs[R0] = _SCALAR_UNKNOWN
        for reg in range(R1, R5 + 1):
            regs[reg] = None


def _fold(op: Op, a: int, b: int) -> int:
    if op in (Op.ADD_IMM, Op.ADD_REG):
        return (a + b) & _U64
    if op in (Op.SUB_IMM, Op.SUB_REG):
        return (a - b) & _U64
    if op in (Op.MUL_IMM, Op.MUL_REG):
        return (a * b) & _U64
    if op in (Op.DIV_IMM, Op.DIV_REG):
        return (a // b) & _U64
    if op in (Op.MOD_IMM, Op.MOD_REG):
        return (a % b) & _U64
    if op in (Op.AND_IMM, Op.AND_REG):
        return a & b
    if op in (Op.OR_IMM, Op.OR_REG):
        return a | b
    if op in (Op.XOR_IMM, Op.XOR_REG):
        return a ^ b
    if op is Op.LSH_IMM:
        return (a << (b & 63)) & _U64
    if op is Op.RSH_IMM:
        return a >> (b & 63)
    if op is Op.NEG:
        return (-a) & _U64
    raise VerifierError(f"cannot fold {op}")


# -- entry point ------------------------------------------------------------

def verify_bytecode(bytecode, hook_type: str = "kprobe", *,
                    stack_limit: int = STACK_SIZE,
                    max_path: int = MAX_PATH_INSTRUCTIONS,
                    state_budget: int = DEFAULT_STATE_BUDGET,
                    name: str = "<program>") -> VerifierReport:
    """Statically verify *bytecode*; returns a :class:`VerifierReport`.

    Raises :class:`VerifierError` with the offending pc on any violation.
    Verification is deterministic: the same bytecode always yields the
    same report or the same error.
    """
    bytecode = tuple(bytecode)
    if not bytecode:
        raise VerifierError(f"program {name!r}: empty program")
    if len(bytecode) > max_path:
        raise VerifierError(
            f"program {name!r}: {len(bytecode)} instructions exceeds "
            f"the {max_path} limit")
    try:
        _validate_insns(bytecode, hook_type)
        block_count, back_edges = _structural_analysis(bytecode)
        analysis = _Analysis(bytecode, hook_type, stack_limit,
                             state_budget)
        worst_case = analysis.run()
    except VerifierError as exc:
        raise VerifierError(f"program {name!r}: {exc}") from None
    if worst_case > max_path:
        raise VerifierError(
            f"program {name!r}: worst-case path length {worst_case} "
            f"exceeds the {max_path} limit")
    if analysis.max_stack_depth > stack_limit:
        raise VerifierError(
            f"program {name!r}: stack {analysis.max_stack_depth}B "
            f"exceeds {stack_limit}B")
    loop_bounds = tuple(
        (src, dst, analysis.back_edge_trips.get((src, dst), 0))
        for src, dst in back_edges)
    return VerifierReport(
        insn_count=len(bytecode),
        worst_case_instructions=worst_case,
        stack_bytes=analysis.max_stack_depth,
        block_count=block_count,
        loop_bounds=loop_bounds,
        helpers=tuple(sorted(analysis.helpers_used)),
        states_explored=analysis.states_explored,
    )
