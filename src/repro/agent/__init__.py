"""The DeepFlow Agent (§3.1, left half of Figure 4).

One agent is deployed per host.  It owns:

* the eBPF programs attached to the ten Table 3 ABIs plus the coroutine
  and uprobe extension hooks (:mod:`repro.agent.collector`);
* the user-space pipeline that turns raw syscall records into spans —
  message production, protocol inference, session aggregation
  (:mod:`repro.agent.sessions`), and implicit-context association
  (:mod:`repro.agent.association`);
* the cBPF/AF_PACKET flow-log builder that turns device capture records
  into network spans (:mod:`repro.agent.flowlog`);
* shipping spans, flow metrics, and resource tags to the server.
"""

from repro.agent.agent import AgentConfig, DeepFlowAgent
from repro.agent.association import AssociationTracker
from repro.agent.flowlog import FlowSpanBuilder
from repro.agent.sessions import Session, SessionAggregator, TimeWindowArray

__all__ = [
    "AgentConfig",
    "AssociationTracker",
    "DeepFlowAgent",
    "FlowSpanBuilder",
    "Session",
    "SessionAggregator",
    "TimeWindowArray",
]
