"""Implicit intra-component association (§3.3.2, Figure 7).

This module assigns each observed message a ``systrace_id`` — the global
unique identifier shared by causally related spans within a component —
without any context ever travelling inside the packets.

The rules implemented here are the paper's:

* **Thread association (Fig 7(a))** — messages on the same kernel thread
  share the thread's current systrace_id.
* **Thread-reuse partitioning (Fig 7(b))** — an *ingress request* starts a
  new systrace_id: the thread has moved on to serving a new request.
* **Multiple requests/responses (Fig 7(c))** — "computing does not yield
  to scheduling, whereas network communication does": consecutive
  messages of different types from different sockets inherit the current
  systrace_id, which the state machine below realizes by inheriting on
  everything except a fresh ingress request.
* **Coroutine pseudo-threads** — coroutine creation events (observed in
  the kernel) build a parent/child structure.  A coroutine created while
  its parent's pseudo-thread is serving an open request joins the
  parent's pseudo-thread (a worker spawned to make downstream calls); a
  coroutine created outside any open request (e.g. by a long-lived
  acceptor loop) starts its own pseudo-thread.  This is the scheduling
  insight that keeps concurrent handlers separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.ids import IdAllocator
from repro.kernel.syscalls import CoroutineEvent, Direction
from repro.protocols.base import MessageType


@dataclass
class _PthreadState:
    """Mutable association state for one pseudo-thread."""

    current_systrace: Optional[int] = None
    open_requests: int = 0
    #: Set once a client-side exchange completes: the next egress request
    #: belongs to a new causal unit (Fig 7(b) partitioning, client side).
    client_exchange_done: bool = False
    #: Monotone count of systrace allocations on this pseudo-thread; spans
    #: carry (pthread, generation) so that the Algorithm 1 pseudo-thread
    #: filter matches within one request's lifetime, not across reuses.
    generation: int = 0


class AssociationTracker:
    """Per-host pseudo-thread bookkeeping and systrace assignment."""

    def __init__(self, ids: IdAllocator, host: str = ""):
        self._ids = ids
        self.host = host
        self._coroutine_parent: dict[tuple[int, int], Optional[int]] = {}
        self._pthread_of_coroutine: dict[tuple[int, int], int] = {}
        self._states: dict[tuple, _PthreadState] = {}

    # -- coroutine lifecycle -------------------------------------------------

    def on_coroutine_event(self, event: CoroutineEvent) -> None:
        """Record a coroutine lifecycle event."""
        if event.kind != "create":
            return
        key = (event.pid, event.coroutine_id)
        self._coroutine_parent[key] = event.parent_coroutine_id
        if event.parent_coroutine_id is None:
            self._pthread_of_coroutine[key] = event.coroutine_id
            return
        parent_key = (event.pid, event.parent_coroutine_id)
        parent_pthread = self._pthread_of_coroutine.get(
            parent_key, event.parent_coroutine_id)
        parent_state = self._states.get(("c", event.pid, parent_pthread))
        if parent_state is not None and parent_state.open_requests > 0:
            # Spawned mid-request: a worker for the parent's request.
            self._pthread_of_coroutine[key] = parent_pthread
        else:
            # Spawned by an idle/daemon coroutine (acceptor loop): new
            # pseudo-thread, keeping concurrent handlers separate.
            self._pthread_of_coroutine[key] = event.coroutine_id

    # -- pseudo-thread resolution --------------------------------------------

    def pthread_key(self, pid: int, tid: int,
                    coroutine_id: Optional[int]) -> tuple:
        """The pseudo-thread key for a syscall context."""
        if coroutine_id is None:
            return ("t", pid, tid)
        pthread = self._pthread_of_coroutine.get(
            (pid, coroutine_id), coroutine_id)
        return ("c", pid, pthread)

    # -- systrace assignment ---------------------------------------------

    def observe(self, pid: int, tid: int, coroutine_id: Optional[int],
                msg_type: MessageType, direction: Direction
                ) -> tuple[tuple, int, int]:
        """One observed message: resolve the pseudo-thread, assign the
        systrace, and report the generation, in a single state lookup.

        Returns ``(pthread_key, systrace_id, generation)`` — the fused
        form of :meth:`pthread_key` + :meth:`assign_systrace` +
        :meth:`generation` the agent's hot path calls per message.
        """
        pthread = self.pthread_key(pid, tid, coroutine_id)
        state = self._states.get(pthread)
        if state is None:
            state = self._states[pthread] = _PthreadState()
        systrace = self._advance(state, msg_type, direction)
        return pthread, systrace, state.generation

    def assign_systrace(self, pthread_key: tuple, msg_type: MessageType,
                        direction: Direction) -> int:
        """Assign (and update) the systrace id for one observed message.

        Must be called in per-host chronological message order.  The state
        machine implements Figure 7:

        * ingress request  → always a fresh systrace (server-side thread
          reuse partitioning);
        * egress request   → fresh when the pseudo-thread has no causal
          context (first message, or the previous client exchange already
          completed — client-side partitioning); otherwise inherited;
        * responses        → always inherited.
        """
        state = self._states.setdefault(pthread_key, _PthreadState())
        return self._advance(state, msg_type, direction)

    def _advance(self, state: _PthreadState, msg_type: MessageType,
                 direction: Direction) -> int:
        """Run the Figure 7 state machine for one message."""
        is_request = msg_type is MessageType.REQUEST
        fresh = False
        if is_request and direction is Direction.INGRESS:
            fresh = True
        elif is_request and direction is Direction.EGRESS:
            fresh = (state.current_systrace is None
                     or (state.open_requests == 0
                         and state.client_exchange_done))
        elif state.current_systrace is None:
            fresh = True
        if fresh:
            state.current_systrace = self._ids.next_id()
            state.generation += 1
            state.client_exchange_done = False
        if is_request and direction is Direction.INGRESS:
            state.open_requests += 1
        elif msg_type is MessageType.RESPONSE:
            if direction is Direction.EGRESS and state.open_requests > 0:
                state.open_requests -= 1
            elif (direction is Direction.INGRESS
                  and state.open_requests == 0):
                state.client_exchange_done = True
        return state.current_systrace

    def note_exchange_aborted(self, pthread_key: tuple) -> None:
        """A client exchange died (reset/EOF before the response).

        The next egress request on the pseudo-thread starts a new causal
        unit — unless the pseudo-thread is still serving an open ingress
        request, in which case the failed downstream call stays inside
        that request's systrace.
        """
        state = self._states.get(pthread_key)
        if state is not None and state.open_requests == 0:
            state.client_exchange_done = True

    def generation(self, pthread_key: tuple) -> int:
        """Current systrace generation on the pseudo-thread."""
        state = self._states.get(pthread_key)
        return state.generation if state else 0

    def current_systrace(self, pthread_key: tuple) -> Optional[int]:
        """The pseudo-thread's current systrace id, if any."""
        state = self._states.get(pthread_key)
        return state.current_systrace if state else None
