"""Session aggregation (§3.3.1, Figure 6 phase 3).

A *session* pairs one request with one response on the same flow; it
becomes a span whose start is the request and whose end is the response.
Pipeline protocols match by order within the connection; parallel
protocols match by the protocol's embedded distinguishing attribute
(stream id / transaction id / correlation id, carried here as
``ParsedMessage.stream_id``).

To merge effectively despite multi-core disorder, DeepFlow keeps messages
in a time-window array (60-second slots); only requests in the same or
adjacent slot are eligible to match a response.  Requests that outlive the
window without a response are flushed as error sessions ("DeepFlow
considers any missing responses as outcomes resulting from unexpected
execution terminations").
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.agent.overload import DEGRADED_PROTOCOL
from repro.kernel.syscalls import Direction, SyscallRecord
from repro.protocols.base import MessageType, ParsedMessage

#: Duration of one time-window slot, seconds (§3.3.1: "DeepFlow presently
#: sets the duration of each time slot to 60 seconds").
DEFAULT_SLOT_DURATION = 60.0


@dataclass
class Message:
    """One parsed protocol message plus its kernel-side provenance."""

    record: SyscallRecord
    parsed: ParsedMessage
    systrace_id: Optional[int] = None
    pthread_key: Optional[tuple] = None
    via_uprobe: bool = False
    total_bytes: int = 0
    last_exit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.total_bytes == 0:
            self.total_bytes = self.record.byte_len
        if self.last_exit_time == 0.0:
            self.last_exit_time = self.record.exit_time

    @property
    def time(self) -> float:
        """The message's event time (arrival for ingress, start for egress)."""
        if self.record.direction is Direction.INGRESS:
            return self.record.exit_time
        return self.record.enter_time

    @property
    def end_time(self) -> float:
        """Timestamp of the message's last syscall."""
        return self.last_exit_time

    def absorb_continuation(self, record: SyscallRecord) -> None:
        """Fold a follow-up syscall of the same message into this one
        (§3.3.1: only the first syscall of a message is processed)."""
        self.total_bytes += record.byte_len
        self.last_exit_time = max(self.last_exit_time, record.exit_time)

    @property
    def degraded(self) -> bool:
        """Whether the message was built without payload (SHED_PAYLOAD)."""
        return self.parsed.protocol == DEGRADED_PROTOCOL


@dataclass
class Session:
    """A matched (or degenerate) request/response pair on one socket."""

    socket_id: int
    request: Optional[Message] = None
    response: Optional[Message] = None
    error: str = ""  # "", "no-response", "orphan-response", "reset"

    @property
    def complete(self) -> bool:
        """Whether both request and response are present."""
        return self.request is not None and self.response is not None

    @property
    def degraded(self) -> bool:
        """Whether either side was built without payload (overload)."""
        return ((self.request is not None and self.request.degraded)
                or (self.response is not None and self.response.degraded))


class TimeWindowArray:
    """Slot-bucketed storage bounding how far apart matches may be."""

    def __init__(self, slot_duration: float = DEFAULT_SLOT_DURATION):
        if slot_duration <= 0:
            raise ValueError("slot duration must be positive")
        self.slot_duration = slot_duration

    def slot_of(self, timestamp: float) -> int:
        """Index of the time slot containing *timestamp*."""
        return int(timestamp // self.slot_duration)

    def in_window(self, earlier: float, later: float) -> bool:
        """Same slot or adjacent slot (§3.3.1)."""
        return abs(self.slot_of(later) - self.slot_of(earlier)) <= 1

    def expired(self, timestamp: float, now: float) -> bool:
        """Whether *timestamp* fell out of the matching window."""
        return self.slot_of(now) - self.slot_of(timestamp) > 1


class _SocketState:
    """Open requests for one socket: FIFO plus by-stream-id index.

    ``orphan_responses`` holds multiplexed responses observed *before*
    their request — the multi-core disorder the time-window array exists
    for (§3.3.1); matching is symmetric within the window.
    """

    def __init__(self) -> None:
        self.pipeline: deque[Message] = deque()
        self.by_stream: OrderedDict[int, Message] = OrderedDict()
        self.orphan_responses: OrderedDict[int, Message] = OrderedDict()

    def __len__(self) -> int:
        return len(self.pipeline) + len(self.by_stream)

    def iter_open(self) -> Iterator[Message]:
        """Iterate every open (unmatched) request."""
        yield from self.pipeline
        yield from self.by_stream.values()

    def clear(self) -> list[Message]:
        """Drop and return all open requests."""
        opens = list(self.iter_open())
        self.pipeline.clear()
        self.by_stream.clear()
        return opens


class SessionAggregator:
    """Pairs requests with responses per socket."""

    def __init__(self, slot_duration: float = DEFAULT_SLOT_DURATION):
        self.window = TimeWindowArray(slot_duration)
        self._sockets: dict[int, _SocketState] = {}
        self.matched = 0
        self.expired = 0
        self.orphans = 0
        #: Matched sessions whose detail was shed under overload.
        self.degraded = 0

    def _state(self, socket_id: int) -> _SocketState:
        return self._sockets.setdefault(socket_id, _SocketState())

    def add(self, message: Message) -> list[Session]:
        """Feed one message; returns any sessions completed by it.

        A response may also force out expired requests ahead of it in a
        pipeline, so more than one session can emerge.
        """
        msg_type = message.parsed.msg_type
        if msg_type is MessageType.REQUEST:
            return self._add_request(message)
        if msg_type is MessageType.RESPONSE:
            return self._match_response(message)
        return []  # UNKNOWN (opaque) messages never form sessions

    def _add_request(self, message: Message) -> list[Session]:
        state = self._state(message.record.socket_id)
        stream_id = message.parsed.stream_id
        if stream_id is not None:
            # Symmetric window matching: the response may already be
            # waiting (multi-core event disorder, §3.3.1).
            response = state.orphan_responses.pop(stream_id, None)
            if response is not None and self.window.in_window(
                    message.time, response.time):
                return [self._pair(message.record.socket_id, message,
                                   response)]
            state.by_stream[stream_id] = message
        else:
            state.pipeline.append(message)
        return []

    def _match_response(self, message: Message) -> list[Session]:
        socket_id = message.record.socket_id
        state = self._state(socket_id)
        sessions: list[Session] = []
        stream_id = message.parsed.stream_id
        if stream_id is not None:
            request = state.by_stream.pop(stream_id, None)
            if request is None:
                # Hold it: the request may still arrive out of order.
                state.orphan_responses[stream_id] = message
                return []
            sessions.append(self._pair(socket_id, request, message))
            return sessions
        # Pipeline: expire requests that fell out of the time window, then
        # match the oldest remaining one.
        while state.pipeline and self.window.expired(
                state.pipeline[0].time, message.time):
            stale = state.pipeline.popleft()
            self.expired += 1
            sessions.append(Session(socket_id, request=stale,
                                    error="no-response"))
        if not state.pipeline:
            self.orphans += 1
            sessions.append(Session(socket_id, response=message,
                                    error="orphan-response"))
            return sessions
        request = state.pipeline.popleft()
        sessions.append(self._pair(socket_id, request, message))
        return sessions

    def _pair(self, socket_id: int, request: Message,
              response: Message) -> Session:
        self.matched += 1
        session = Session(socket_id, request=request, response=response)
        if session.degraded:
            self.degraded += 1
        return session

    def open_request_count(self, socket_id: Optional[int] = None) -> int:
        """Open requests on one socket (or all)."""
        if socket_id is not None:
            state = self._sockets.get(socket_id)
            return len(state) if state else 0
        return sum(len(state) for state in self._sockets.values())

    def flush_expired(self, now: float) -> list[Session]:
        """Expire unmatched requests older than the window."""
        sessions: list[Session] = []
        for socket_id, state in self._sockets.items():
            keep_pipeline = deque()
            for message in state.pipeline:
                if self.window.expired(message.time, now):
                    self.expired += 1
                    sessions.append(Session(socket_id, request=message,
                                            error="no-response"))
                else:
                    keep_pipeline.append(message)
            state.pipeline = keep_pipeline
            for stream_id in list(state.by_stream):
                message = state.by_stream[stream_id]
                if self.window.expired(message.time, now):
                    del state.by_stream[stream_id]
                    self.expired += 1
                    sessions.append(Session(socket_id, request=message,
                                            error="no-response"))
            for stream_id in list(state.orphan_responses):
                message = state.orphan_responses[stream_id]
                if self.window.expired(message.time, now):
                    del state.orphan_responses[stream_id]
                    self.orphans += 1
                    sessions.append(Session(socket_id, response=message,
                                            error="orphan-response"))
        return sessions

    def close_socket(self, socket_id: int,
                     error: str = "reset") -> list[Session]:
        """Connection torn down: every open request ends in error."""
        state = self._sockets.pop(socket_id, None)
        if state is None:
            return []
        sessions = [Session(socket_id, request=message, error=error)
                    for message in state.clear()]
        self.expired += len(sessions)
        for message in state.orphan_responses.values():
            self.orphans += 1
            sessions.append(Session(socket_id, response=message,
                                    error="orphan-response"))
        state.orphan_responses.clear()
        return sessions
