"""The DeepFlow Agent: hook deployment + user-space span pipeline.

Deployment (§3.2.2, Figure 5) is *in zero code*: the agent attaches eBPF
programs to the pre-defined syscall hooks of the host kernel — no
modification, recompilation, or redeployment of the monitored components.

The kernel-side programs do the (pid, tid) enter/exit merge (the kernel
"can simultaneously handle only one selected system call for a given
(Process_ID, Thread_ID)", §3.3.1) and enqueue merged records into a perf
buffer.  The user-space pipeline then runs Figure 6's three phases —
message production, protocol inference / message typing, and session
aggregation — plus implicit-context association, and ships finished spans
to the server.

Two deployment modes reproduce Appendix B's measurement points:
``mode="ebpf"`` attaches only the kernel tracing programs; ``mode="full"``
additionally enables the in-kernel preliminary parser / flow-tracking
logic, which costs a few hundred extra instructions per hook firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.agent.association import AssociationTracker
from repro.agent.flowlog import FlowSpanBuilder
from repro.agent.sessions import Message, Session, SessionAggregator
from repro.core.ids import IdAllocator
from repro.core.span import Span, SpanKind, SpanSide
from repro.kernel.ebpf import BPFProgram, PerfBuffer
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import (
    ALL_ABIS,
    CoroutineEvent,
    Direction,
    SocketCloseEvent,
    SyscallContext,
    SyscallRecord,
    UserProbeRecord,
)
from repro.network.topology import Device, Node
from repro.protocols.base import MessageType, ProtocolSpec
from repro.protocols.inference import ProtocolInferenceEngine


@dataclass
class AgentConfig:
    """Tunables for one agent instance."""

    slot_duration: float = 60.0
    perf_buffer_capacity: int = 65536
    #: BPF instructions per tracing program (drives the Fig 13 latency).
    trace_instructions: int = 500
    #: Extra instructions for the in-kernel preliminary parser in "full"
    #: mode (Appendix B's Agent-vs-eBPF gap).
    parser_instructions: int = 350
    #: System-level per-syscall cost (perf submission, payload copy,
    #: cache pressure), charged on the exit hook.  Calibrated so the
    #: Appendix B macro-level throughput drop reproduces; see ebpf.py.
    system_tax_ebpf_ns: float = 37_000.0
    system_tax_full_ns: float = 56_000.0
    #: Extra protocol specs supplied by the user (§3.3.1).
    user_specs: tuple[ProtocolSpec, ...] = ()
    #: Ablation switch: when False, coroutines are not mapped onto
    #: pseudo-threads and association falls back to raw thread ids
    #: (benchmarks/test_ablations.py quantifies the damage).
    use_coroutine_pthreads: bool = True


class DeepFlowAgent:
    """One agent per host (container node / VM / physical machine)."""

    def __init__(self, kernel: Kernel, agent_index: int,
                 server=None, node: Optional[Node] = None,
                 config: Optional[AgentConfig] = None):
        self.kernel = kernel
        self.sim = kernel.sim
        self.server = server
        self.node = node
        self.config = config or AgentConfig()
        self.ids = IdAllocator(agent_index)
        self.host = kernel.host_name
        self.tracker = AssociationTracker(self.ids, self.host)
        self.aggregator = SessionAggregator(self.config.slot_duration)
        self.engine = ProtocolInferenceEngine(
            user_specs=self.config.user_specs)
        self._plaintext_engine = ProtocolInferenceEngine(
            user_specs=self.config.user_specs)
        self.flow_builder = FlowSpanBuilder(self.ids, self.host)
        self.perf = PerfBuffer(self.sim,
                               capacity=self.config.perf_buffer_capacity,
                               name=f"perf:{self.host}")
        self._enter_map: dict[tuple[int, int], SyscallContext] = {}
        self._plaintext: dict[tuple, UserProbeRecord] = {}
        self._pending_opaque: dict[tuple, SyscallRecord] = {}
        self._open_messages: dict[tuple, Message] = {}
        self._programs: list[tuple[str, BPFProgram]] = []
        self.pending_spans: list[Span] = []
        self.deployed = False
        self.mode = "full"
        #: Pipeline statistics: observability of the observability tool.
        self.stats = {
            "events_processed": 0,
            "syscall_records": 0,
            "coroutine_events": 0,
            "uprobe_records": 0,
            "close_events": 0,
            "continuations_merged": 0,
            "spans_emitted": 0,
            "spans_shipped": 0,
        }
        self._ip_tags: dict[str, dict[str, str]] = {}
        self._poller = None

    # -- deployment (zero code, in-flight) ---------------------------------

    def deploy(self, mode: str = "full") -> None:
        """Attach the eBPF programs to the host kernel's hooks."""
        if self.deployed:
            raise RuntimeError(f"agent on {self.host} already deployed")
        if mode not in ("ebpf", "full"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        instructions = self.config.trace_instructions
        tax_ns = self.config.system_tax_ebpf_ns
        if mode == "full":
            instructions += self.config.parser_instructions
            tax_ns = self.config.system_tax_full_ns
        for abi in ALL_ABIS:
            enter = BPFProgram(f"df_enter_{abi}", self._on_enter,
                               instructions=instructions)
            exit_ = BPFProgram(f"df_exit_{abi}", self._on_exit,
                               instructions=instructions,
                               system_tax_ns=tax_ns)
            self.kernel.hooks.attach(f"sys_enter_{abi}", enter)
            self.kernel.hooks.attach(f"sys_exit_{abi}", exit_)
            self._programs.append((f"sys_enter_{abi}", enter))
            self._programs.append((f"sys_exit_{abi}", exit_))
        coroutine_program = BPFProgram("df_coroutine", self._on_coroutine,
                                       instructions=120)
        self.kernel.hooks.attach("coroutine_create", coroutine_program)
        self._programs.append(("coroutine_create", coroutine_program))
        close_program = BPFProgram("df_socket_close", self._on_close,
                                   instructions=80)
        self.kernel.hooks.attach("socket_close", close_program)
        self._programs.append(("socket_close", close_program))
        self.deployed = True
        self._collect_node_tags()

    def undeploy(self) -> None:
        """Detach every program (in-flight, like attaching)."""
        for hook_name, program in self._programs:
            self.kernel.hooks.detach(hook_name, program)
        self._programs.clear()
        self.deployed = False

    def attach_uprobe(self, process_name: str, function: str) -> None:
        """Instrumentation extension: intercept a user-space function
        (e.g. ssl_write) to recover pre-TLS plaintext (§3.2.1)."""
        for hook in (f"uprobe:{process_name}:{function}",
                     f"uretprobe:{process_name}:{function}"):
            program = BPFProgram(f"df_{function}", self._on_uprobe,
                                 instructions=300)
            self.kernel.hooks.attach(hook, program)
            self._programs.append((hook, program))

    def enable_capture(self, device: Device) -> None:
        """Tap a network device (cBPF/AF_PACKET integration)."""
        device.capture_callbacks.append(self._on_packet)

    def _collect_node_tags(self) -> None:
        """Tag collection phase ①/② of Figure 8: push K8s tags upward."""
        if self.node is None:
            return
        for pod in self.node.pods:
            tags = pod.tags()
            self._ip_tags[pod.ip] = tags
            if self.server is not None:
                self.server.register_resource_tags(
                    tags.get("vpc", ""), pod.ip, tags)
        node_tags = {"node": self.node.name, **self.node.cloud_tags()}
        self._ip_tags[self.node.ip] = node_tags
        if self.server is not None:
            self.server.register_resource_tags(
                self.node.vpc, self.node.ip, node_tags)

    # -- kernel-side program bodies ---------------------------------------

    def _on_enter(self, ctx: SyscallContext) -> None:
        # The kernel handles one instrumented syscall per (pid, tid) at a
        # time (§3.3.1); coroutine runtimes park blocked calls per
        # coroutine, so the pseudo-thread id extends the key ("DeepFlow
        # monitors the creation of coroutines ... and performs similar
        # operations").
        self._enter_map[(ctx.pid, ctx.tid, ctx.coroutine_id)] = ctx

    def _on_exit(self, ctx: SyscallContext) -> None:
        enter = self._enter_map.pop((ctx.pid, ctx.tid, ctx.coroutine_id),
                                    None)
        if enter is None:
            return  # exit without observed enter (attach raced a syscall)
        payload = ctx.payload or enter.payload
        record = SyscallRecord(
            pid=ctx.pid, tid=ctx.tid, coroutine_id=ctx.coroutine_id,
            process_name=ctx.process_name, socket_id=ctx.socket_id,
            five_tuple=ctx.five_tuple,
            tcp_seq=ctx.tcp_seq or enter.tcp_seq,
            enter_time=enter.timestamp, exit_time=ctx.timestamp,
            direction=ctx.direction, abi=ctx.abi,
            byte_len=ctx.byte_len or enter.byte_len,
            payload=payload, ret=ctx.ret, host_name=ctx.host_name)
        self.perf.submit(record)

    def _on_coroutine(self, event: CoroutineEvent) -> None:
        self.perf.submit(event)

    def _on_close(self, event: SocketCloseEvent) -> None:
        self.perf.submit(event)

    def _on_uprobe(self, record: UserProbeRecord) -> None:
        self.perf.submit(record)

    def _on_packet(self, record) -> None:
        span = self.flow_builder.feed(record)
        if span is not None:
            self.stats["spans_emitted"] += 1
            self._finalize_span(span)

    # -- user-space pipeline -------------------------------------------------

    def poll(self) -> int:
        """Drain the perf buffer and run the pipeline; returns event count."""
        events = self.perf.drain()
        for event in events:
            self._process_event(event)
        return len(events)

    def start_polling(self, interval: float = 0.01):
        """Run the user-space drain loop as a background process."""

        def loop() -> Generator:
            """Background loop body."""
            while True:
                yield interval
                self.poll()
                self.ship()

        self._poller = self.sim.spawn(loop(), name=f"agent:{self.host}")
        return self._poller

    def stop_polling(self) -> None:
        """Stop the background drain loop."""
        if self._poller is not None:
            self._poller.kill()
            self._poller = None

    def _process_event(self, event) -> None:
        self.stats["events_processed"] += 1
        if isinstance(event, CoroutineEvent):
            self.stats["coroutine_events"] += 1
            self.tracker.on_coroutine_event(event)
        elif isinstance(event, UserProbeRecord):
            self.stats["uprobe_records"] += 1
            self._process_uprobe_record(event)
        elif isinstance(event, SocketCloseEvent):
            # Requests still open on a closed socket died unanswered.
            self.stats["close_events"] += 1
            for session in self.aggregator.close_socket(
                    event.socket_id, error="no-response"):
                self._emit_session(session)
        elif isinstance(event, SyscallRecord):
            self.stats["syscall_records"] += 1
            self._process_syscall_record(event)

    def _process_uprobe_record(self, event: UserProbeRecord) -> None:
        """Fuse uprobe plaintext with its syscall twin, either order.

        ``SSL_write(plaintext)`` runs *before* the write syscall carrying
        the ciphertext — stash the plaintext for the upcoming syscall.
        ``SSL_read(plaintext)`` runs *after* the read syscall — fuse with
        the opaque record that syscall already produced.
        """
        key = (event.pid, event.tid, event.socket_id, event.direction)
        pending = self._pending_opaque.pop(key, None)
        if pending is not None:
            parsed = self._plaintext_engine.parse(pending.socket_id,
                                                  event.payload)
            if parsed is not None and parsed.msg_type is not \
                    MessageType.UNKNOWN:
                self._ingest_message(pending, parsed, via_uprobe=True)
                return
        self._plaintext[key] = event

    def _process_syscall_record(self, record: SyscallRecord) -> None:
        if record.ret < 0 or (record.byte_len == 0 and record.ret == 0):
            # Reset (ret<0) or EOF: requests still open on the socket die
            # unanswered, and the pseudo-thread's client exchange — if
            # any — is over (the next request starts a new causal unit).
            error = "reset" if record.ret < 0 else "no-response"
            for session in self.aggregator.close_socket(record.socket_id,
                                                        error=error):
                self._emit_session(session)
            pthread = self.tracker.pthread_key(record.pid, record.tid,
                                               record.coroutine_id)
            self.tracker.note_exchange_aborted(pthread)
            return
        via_uprobe = False
        parsed = self.engine.parse(record.socket_id, record.payload)
        if parsed is None or parsed.msg_type is MessageType.UNKNOWN:
            stash_key = (record.pid, record.tid, record.socket_id,
                         record.direction)
            stash = self._plaintext.pop(stash_key, None)
            if stash is not None:
                # Same thread, same socket, same direction, adjacent in
                # time: the uprobe plaintext is this syscall's payload
                # before encryption.
                parsed = self._plaintext_engine.parse(record.socket_id,
                                                      stash.payload)
                via_uprobe = parsed is not None
            if parsed is None or parsed.msg_type is MessageType.UNKNOWN:
                open_message = self._open_messages.get(
                    (record.socket_id, record.direction))
                if open_message is not None:
                    # §3.3.1: only the first syscall of a message is
                    # processed; later ones extend it.
                    self.stats["continuations_merged"] += 1
                    open_message.absorb_continuation(record)
                else:
                    # Opaque message: keep it around in case a uprobe
                    # delivers its plaintext right after (SSL_read order).
                    self._pending_opaque[stash_key] = record
                return
        self._ingest_message(record, parsed, via_uprobe=via_uprobe)

    def _ingest_message(self, record: SyscallRecord, parsed,
                        via_uprobe: bool) -> None:
        message = Message(record=record, parsed=parsed,
                          via_uprobe=via_uprobe)
        self._open_messages[(record.socket_id, record.direction)] = message
        coroutine_id = (record.coroutine_id
                        if self.config.use_coroutine_pthreads else None)
        pthread = self.tracker.pthread_key(record.pid, record.tid,
                                           coroutine_id)
        message.systrace_id = self.tracker.assign_systrace(
            pthread, parsed.msg_type, record.direction)
        # Generation-scoped pseudo-thread key: matches within one request's
        # lifetime on the thread, not across thread reuse.
        message.pthread_key = pthread + (self.tracker.generation(pthread),)
        for session in self.aggregator.add(message):
            self._emit_session(session)

    def flush(self, expire: bool = False) -> None:
        """Synchronous pipeline flush (tests and benchmarks)."""
        self.poll()
        if expire:
            for session in self.aggregator.flush_expired(self.sim.now):
                self._emit_session(session)
        self.ship()

    # -- span construction ----------------------------------------------

    def _emit_session(self, session: Session) -> None:
        span = self._build_span(session)
        if span is not None:
            self.stats["spans_emitted"] += 1
            self._finalize_span(span)

    def _build_span(self, session: Session) -> Optional[Span]:
        request, response = session.request, session.response
        base = request or response
        if base is None:
            return None
        record = base.record
        if request is not None:
            side = (SpanSide.SERVER
                    if request.record.direction is Direction.INGRESS
                    else SpanSide.CLIENT)
        else:
            side = (SpanSide.SERVER
                    if response.record.direction is Direction.EGRESS
                    else SpanSide.CLIENT)
        start = request.time if request else response.time
        end = response.end_time if response else request.end_time
        parsed_req = request.parsed if request else None
        parsed_resp = response.parsed if response else None
        status = session.error and "error" or (
            parsed_resp.status if parsed_resp else "")
        span = Span(
            span_id=self.ids.next_id(),
            kind=SpanKind.UPROBE if base.via_uprobe else SpanKind.SYSCALL,
            side=side,
            start_time=start,
            end_time=max(start, end),
            host=record.host_name,
            process_name=record.process_name,
            pid=record.pid,
            tid=record.tid,
            coroutine_id=record.coroutine_id,
            protocol=base.parsed.protocol,
            operation=(parsed_req.operation if parsed_req
                       else parsed_resp.operation),
            resource=parsed_req.resource if parsed_req else "",
            status=status,
            status_code=parsed_resp.status_code if parsed_resp else None,
            request_bytes=request.total_bytes if request else 0,
            response_bytes=response.total_bytes if response else 0,
            systrace_id=base.systrace_id,
            pseudo_thread_key=(record.host_name,) + tuple(
                base.pthread_key or ()),
            x_request_id=(parsed_req.x_request_id if parsed_req else None)
            or (parsed_resp.x_request_id if parsed_resp else None),
            flow_key=record.five_tuple.canonical(),
            req_tcp_seq=request.record.tcp_seq if request else None,
            resp_tcp_seq=response.record.tcp_seq if response else None,
            otel_trace_id=self._trace_id_of(parsed_req),
            socket_id=record.socket_id,
            message_id=(parsed_req.stream_id if parsed_req
                        else parsed_resp.stream_id),
        )
        if session.error:
            span.tags["error.kind"] = session.error
        return span

    @staticmethod
    def _trace_id_of(parsed) -> Optional[str]:
        if parsed is None:
            return None
        traceparent = parsed.traceparent
        if traceparent:
            parts = traceparent.split("-")
            if len(parts) >= 3:
                return parts[1]
        b3 = parsed.b3
        if b3:
            return b3.split("-")[0]
        return None

    def _finalize_span(self, span: Span) -> None:
        """Stamp smart-encoding tags and flow metrics, queue for shipping."""
        local_ip = self._span_local_ip(span)
        if local_ip is not None:
            tags = self._ip_tags.get(local_ip)
            vpc = tags.get("vpc", "") if tags else ""
            # Smart-encoding phase ④–⑥: the agent injects only VPC + IP.
            span.tags.setdefault("vpc", vpc)
            span.tags.setdefault("ip", local_ip)
        network = self.kernel.network
        if network is not None and span.flow_key is not None:
            five_tuple = self._five_tuple_of(span)
            if five_tuple is not None:
                metrics = network.metrics_for(five_tuple)
                if metrics is not None:
                    span.metrics.update(metrics.as_tags())
        self.pending_spans.append(span)

    def _span_local_ip(self, span: Span) -> Optional[str]:
        if span.kind is SpanKind.NETWORK:
            return None
        five_tuple = self._five_tuple_of(span)
        if five_tuple is None:
            return None
        # A socket's five-tuple is local-oriented: src is always this host.
        return five_tuple.src_ip

    def _five_tuple_of(self, span: Span):
        if span.socket_id is not None:
            sock = self.kernel.sockets.get(span.socket_id)
            if sock is not None:
                return sock.five_tuple
        return None

    def ship(self) -> int:
        """Transmit finished spans to the server (or hold them locally)."""
        if self.server is None or not self.pending_spans:
            return 0
        spans, self.pending_spans = self.pending_spans, []
        self.server.ingest_spans(spans)
        self.stats["spans_shipped"] += len(spans)
        return len(spans)
