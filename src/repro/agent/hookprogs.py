"""Bytecode bodies for the agent's kernel-side hook programs.

The agent's programs are no longer opaque Python callables with declared
instruction counts: each attach point carries real
:mod:`repro.kernel.bpf_isa` bytecode that the verifier analyzes before
attachment.  The *verified worst-case path length* then drives the Fig 13
latency model (``BPFProgram.latency_ns``), so the per-hook costs the
simulation charges are derived from the program text, not asserted.

Each builder takes an instruction *budget* — the calibrated per-firing
cost from :class:`repro.agent.agent.AgentConfig` — and emits a program
whose verified worst-case path length equals the budget exactly: a fixed
record-building prologue (ctx field loads, stack stores), a bounded
payload-scan loop sized to consume most of the budget, and straight-line
padding for the remainder.  The builders are cached: every program with
the same budget shares one bytecode tuple.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernel.bpf_isa import (
    CTX_FIELDS,
    ProgramBuilder,
    R0,
    R1,
    R2,
    R6,
    R7,
    R8,
    R9,
    R10,
)
from repro.kernel.verifier import verify_bytecode

#: Instructions consumed by one payload-scan loop iteration
#: (accumulate + shift + counter decrement + back-jump).
_LOOP_BODY_INSNS = 4


def _emit_record_prologue(b: ProgramBuilder,
                          fields: tuple[str, ...]) -> int:
    """Copy *fields* from ctx into the on-stack record; returns the
    record size in bytes."""
    b.mov_reg(R6, R1)  # ctx survives helper calls in a callee-saved reg
    off = -8
    for name in fields:
        b.ld_ctx(R2, name, ctx_reg=R6)
        b.stack_store(off, R2)
        off -= 8
    return -off - 8


def _emit_scan_loop(b: ProgramBuilder, trips: int) -> None:
    """Bounded payload scan: fold the length word ``trips`` times."""
    b.ld_ctx(R7, "byte_len", ctx_reg=R6)
    b.mov_imm(R8, 0)

    def body(bb: ProgramBuilder) -> None:
        bb.add_reg(R8, R7)
        bb.rsh_imm(R7, 1)

    b.bounded_loop(R9, trips, body)


def _emit_submit_epilogue(b: ProgramBuilder, pad: int,
                          record_off: int) -> None:
    b.stack_store(record_off, R8)
    b.mov_reg(R1, R6)
    b.call("perf_submit")
    for _ in range(pad):
        b.mov_reg(R8, R8)
    b.mov_imm(R0, 0)
    b.exit()


def _build_tracing(fields: tuple[str, ...], probe_helper: str | None,
                   probe_words: int, trips: int, pad: int):
    b = ProgramBuilder()
    record_bytes = _emit_record_prologue(b, fields)
    scratch_off = -(record_bytes + 8)
    if probe_helper is not None:
        # Pull the (truncated) payload onto the stack, as the real
        # programs do before submitting.
        b.mov_reg(R1, R10)
        b.add_imm(R1, scratch_off - (probe_words - 1) * 8)
        b.mov_imm(R2, probe_words * 8)
        b.call(probe_helper)
        scratch_off -= probe_words * 8
    _emit_scan_loop(b, trips)
    _emit_submit_epilogue(b, pad, scratch_off)
    return b.assemble()


def _sized(build, budget: int, hook_type: str, name: str):
    """Size *build*'s loop + padding so the verified worst case == budget."""
    base = verify_bytecode(build(1, 0), hook_type,
                           name=name).worst_case_instructions
    if budget < base:
        raise ValueError(
            f"{name}: budget {budget} below the {base}-instruction "
            f"minimum program")
    extra_trips = (budget - base) // _LOOP_BODY_INSNS
    pad = (budget - base) % _LOOP_BODY_INSNS
    bytecode = build(1 + extra_trips, pad)
    report = verify_bytecode(bytecode, hook_type, name=name)
    if report.worst_case_instructions != budget:
        raise ValueError(
            f"{name}: sized program verifies at "
            f"{report.worst_case_instructions} instructions, "
            f"expected exactly {budget}")
    return bytecode


_SYSCALL_FIELDS = ("pid", "tid", "coroutine_id", "socket_id", "tcp_seq",
                   "timestamp_ns", "direction", "byte_len", "ret")

_EVENT_FIELDS = ("pid", "tid", "coroutine_id", "timestamp_ns")


@lru_cache(maxsize=None)
def syscall_tracing_bytecode(budget: int):
    """Program attached to ``sys_enter_*``/``sys_exit_*`` tracepoints:
    builds the (pid, tid) merge record and submits it.  Reads kernel
    memory, so it uses ``probe_read_kernel`` — legal from tracepoints."""
    return _sized(
        lambda trips, pad: _build_tracing(_SYSCALL_FIELDS,
                                          "probe_read_kernel", 4,
                                          trips, pad),
        budget, "tracepoint", "df_syscall")


@lru_cache(maxsize=None)
def syscall_shed_bytecode(budget: int):
    """SHED_PAYLOAD variant of the syscall tracing program: the record
    prologue and submit are identical, but the payload copy-out
    (``probe_read_kernel``) is omitted — the association fields still
    flow, the L7 bytes do not.  The overload controller swaps the
    attached syscall programs to this variant when a degradation tier
    engages (repro.agent.overload)."""
    return _sized(
        lambda trips, pad: _build_tracing(_SYSCALL_FIELDS, None, 0,
                                          trips, pad),
        budget, "tracepoint", "df_syscall_shed")


@lru_cache(maxsize=None)
def uprobe_tracing_bytecode(budget: int):
    """Program attached to uprobe/uretprobe points (e.g. ssl_write):
    copies the *user-space* plaintext buffer with ``probe_read_user``."""
    return _sized(
        lambda trips, pad: _build_tracing(_SYSCALL_FIELDS,
                                          "probe_read_user", 4,
                                          trips, pad),
        budget, "uprobe", "df_uprobe")


@lru_cache(maxsize=None)
def event_bytecode(budget: int):
    """Small straight-line program for event hooks (coroutine creation,
    socket close): record identity fields and submit."""
    return _sized(
        lambda trips, pad: _build_tracing(_EVENT_FIELDS, None, 0,
                                          trips, pad),
        budget, "kprobe", "df_event")


#: Exported so tests can assert the ctx layout the programs rely on.
TRACED_CTX_FIELDS = tuple(sorted(CTX_FIELDS))
