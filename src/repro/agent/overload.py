"""Agent self-protection under overload (§2.3's bounded-overhead promise).

A production agent cannot emit every span: Appendix B's own numbers put
full instrumentation at tens of µs per syscall, and when the perf buffer
overruns, a naive agent loses *random* records — shredding traces into
orphan-response / no-response fragments.  This module closes the loop:

* :class:`HeadSampler` — a trace-atomic head-based sampler.  The
  sampling unit is one request/response *exchange* on a flow, detected
  kernel-side from direction flips; the keep/drop decision is made once
  at the exchange head (a stable hash of the canonical five-tuple and
  the exchange index) and is *sticky* for every later record of the
  exchange.  Whole traces survive or are dropped whole — never shredded.
  Both endpoints of a flow hash the same canonical key, so a client-side
  agent and a server-side agent agree on which exchanges to keep.

* :class:`OverloadController` — a circuit breaker with explicit
  degradation tiers and hysteresis, ticked from the agent's poll loop on
  perf-buffer occupancy and drop deltas:

  ==============  =====================================================
  FULL            everything on (the steady state)
  SHED_PAYLOAD    skip L7 payload copy-out and dissection; keep the
                  TCP-seq / syscall / pseudo-thread association fields,
                  so Algorithm 1 still links the (degraded) spans
  HEAD_SAMPLE     additionally admit only a fraction of exchanges,
                  whole-trace-atomically; the rate adapts by AIMD
                  (halve under pressure, double on recovery)
  SHED_SPANS      admit no new exchanges at all (in-flight exchanges
                  keep their sticky decision, so even this tier never
                  tears a trace in half)
  ==============  =====================================================

  Detail is shed before association, and association before spans —
  Nahida's ordering for in-band eBPF tracing under pressure.  Tier
  transitions are recorded as deterministic sim-time events and
  surfaced through ``agent.health()`` and the analysis watchdog.

The per-record decision path (:meth:`HeadSampler.admit`) and the
per-poll tier check (:meth:`OverloadController.tick`) are
allocation-free; ``tools/analyze``'s hot-path checker enforces this.
"""

from __future__ import annotations

import enum
import zlib
from typing import Callable, Optional

from repro.kernel.sockets import FiveTuple
from repro.kernel.syscalls import Direction
from repro.protocols.base import MessageType, ParsedMessage


class Tier(enum.IntEnum):
    """Degradation tiers, ordered from healthy to most degraded."""

    FULL = 0
    SHED_PAYLOAD = 1
    HEAD_SAMPLE = 2
    SHED_SPANS = 3


#: :meth:`HeadSampler.admit` return codes.  DROP means the record is
#: sampled out; ADMIT_HEAD marks the first record of a direction run
#: (the head of a message), ADMIT a same-direction continuation — the
#: distinction lets the payload-shedding path keep multi-syscall
#: messages as one message instead of fragmenting them.
DROP = 0
ADMIT = 1
ADMIT_HEAD = 2

#: Protocol label stamped on spans built without payload (SHED_PAYLOAD
#: and beyond): the L7 detail is gone but the span is real.
DEGRADED_PROTOCOL = "degraded"

#: Shared immutable messages for the degraded parse path.  The pipeline
#: treats :class:`ParsedMessage` as immutable after construction, so two
#: singletons serve every payload-shed record.
DEGRADED_REQUEST = ParsedMessage(protocol=DEGRADED_PROTOCOL,
                                 msg_type=MessageType.REQUEST,
                                 operation="opaque")
DEGRADED_RESPONSE = ParsedMessage(protocol=DEGRADED_PROTOCOL,
                                  msg_type=MessageType.RESPONSE,
                                  operation="opaque")

#: Mixing salt for the sampling hash — fixed, so runs are reproducible
#: and every agent in a cluster computes identical decisions.
_HASH_SALT = b"deepflow-head-sample|"

# Per-socket sampler state slots (a list, mutated in place on the hot
# path instead of reallocating a tuple per record).
_REQ_DIR = 0        # Direction of the first-seen message (the request)
_EXCHANGE = 1       # index of the current exchange on the flow
_DECISION = 2       # sticky keep/drop for the current exchange
_SAW_RESPONSE = 3   # True once a response-direction record was seen
_LAST_DIR = 4       # direction of the previous record (head detection)


def sample_permille(five_tuple: FiveTuple, exchange: int) -> int:
    """Stable per-exchange hash in [0, 1000).

    Keyed on the *canonical* (endpoint-order-independent) five-tuple, so
    the client-side and server-side agents of one flow compute the same
    value; CRC32 rather than ``hash()`` because Python string hashing is
    salted per process and would break determinism.
    """
    text = "%s|%d" % (five_tuple.canonical(), exchange)
    return zlib.crc32(_HASH_SALT + text.encode("ascii")) % 1000


class HeadSampler:
    """Trace-atomic head-based sampler over flow exchanges.

    One instance per agent.  ``rate`` is the target keep probability for
    *new* exchanges; decisions already made stay sticky, so a rate change
    (or a tier change) mid-exchange never splits a trace.
    """

    __slots__ = ("rate", "forced_off", "admitted", "sampled_out",
                 "exchanges_kept", "exchanges_dropped", "_sockets")

    def __init__(self, rate: float = 1.0) -> None:
        self.rate = rate
        #: SHED_SPANS: refuse all *new* exchanges regardless of rate.
        self.forced_off = False
        self.admitted = 0
        self.sampled_out = 0
        self.exchanges_kept = 0
        self.exchanges_dropped = 0
        self._sockets: dict[int, list] = {}

    # -- per-record fast path (allocation-free) -------------------------

    def admit(self, socket_id: int, five_tuple: FiveTuple,
              direction: Direction) -> int:
        """Admission decision for one kernel record.

        Returns :data:`DROP`, :data:`ADMIT`, or :data:`ADMIT_HEAD`.
        Runs once per syscall record, so it must stay allocation-free:
        one dict probe, in-place list mutation, integer returns.
        """
        state = self._sockets.get(socket_id)
        if state is None:
            return self._open(socket_id, five_tuple, direction)
        head = direction is not state[_LAST_DIR]
        state[_LAST_DIR] = direction
        if direction is state[_REQ_DIR]:
            if state[_SAW_RESPONSE]:
                # response → request flip: a new exchange begins, and
                # only here is a fresh keep/drop decision taken.
                state[_EXCHANGE] += 1
                state[_SAW_RESPONSE] = False
                state[_DECISION] = self._decide(five_tuple,
                                                state[_EXCHANGE])
        else:
            state[_SAW_RESPONSE] = True
        if state[_DECISION]:
            self.admitted += 1
            return ADMIT_HEAD if head else ADMIT
        self.sampled_out += 1
        return DROP

    # -- slow paths (once per socket / per exchange) --------------------

    def _open(self, socket_id: int, five_tuple: FiveTuple,
              direction: Direction) -> int:
        """First record on a socket: the observed direction defines the
        request direction for the flow's lifetime."""
        decision = self._decide(five_tuple, 0)
        self._sockets[socket_id] = [direction, 0, decision, False,
                                    direction]
        if decision:
            self.admitted += 1
            return ADMIT_HEAD
        self.sampled_out += 1
        return DROP

    def _decide(self, five_tuple: FiveTuple, exchange: int) -> bool:
        if self.forced_off:
            self.exchanges_dropped += 1
            return False
        rate = self.rate
        if rate >= 1.0:
            self.exchanges_kept += 1
            return True
        keep = (rate > 0.0
                and sample_permille(five_tuple, exchange) < rate * 1000.0)
        if keep:
            self.exchanges_kept += 1
        else:
            self.exchanges_dropped += 1
        return keep

    # -- bookkeeping -----------------------------------------------------

    def request_direction(self, socket_id: int) -> Optional[Direction]:
        """The flow's request direction, if the socket has been seen."""
        state = self._sockets.get(socket_id)
        return state[_REQ_DIR] if state is not None else None

    def close_socket(self, socket_id: int) -> None:
        """Socket torn down: release its sampling state."""
        self._sockets.pop(socket_id, None)

    def open_sockets(self) -> int:
        """Number of flows currently tracked."""
        return len(self._sockets)


class OverloadController:
    """Circuit breaker driving the degradation-tier state machine.

    Ticked once per agent poll cycle with the perf buffer's occupancy
    (sampled *before* the drain, i.e. the backlog accumulated over one
    poll interval) and the drop delta since the previous tick.

    Escalation is immediate — one tier per pressured tick, so payload
    shedding engages on the first sign of trouble and sampling only if
    that was not enough.  De-escalation is damped by hysteresis: a tier
    step down (or an AIMD rate raise) requires ``hysteresis_ticks``
    consecutive healthy ticks, so the controller cannot flap across a
    threshold.  All decisions are pure functions of the tick inputs, and
    every transition is recorded with its sim-time — two runs of the same
    seeded workload produce byte-identical transition logs.
    """

    __slots__ = ("sampler", "high_water", "low_water", "hysteresis_ticks",
                 "min_rate", "initial_rate", "on_transition", "tier",
                 "transitions", "rate_changes", "healthy_ticks", "ticks")

    def __init__(self, sampler: HeadSampler, *,
                 high_water: float = 0.75,
                 low_water: float = 0.25,
                 hysteresis_ticks: int = 3,
                 min_rate: float = 0.0625,
                 initial_rate: float = 0.5,
                 on_transition: Optional[Callable] = None) -> None:
        if not 0.0 < low_water < high_water <= 1.0:
            raise ValueError("need 0 < low_water < high_water <= 1")
        if hysteresis_ticks < 1:
            raise ValueError("hysteresis_ticks must be >= 1")
        self.sampler = sampler
        self.high_water = high_water
        self.low_water = low_water
        self.hysteresis_ticks = hysteresis_ticks
        self.min_rate = min_rate
        self.initial_rate = initial_rate
        self.on_transition = on_transition
        self.tier = Tier.FULL
        #: Deterministic event log: (sim_time, from_tier, to_tier, reason).
        self.transitions: list[tuple[float, str, str, str]] = []
        #: AIMD steps: (sim_time, new_rate).
        self.rate_changes: list[tuple[float, float]] = []
        self.healthy_ticks = 0
        self.ticks = 0

    # -- the per-poll tier check (allocation-free) -----------------------

    def tick(self, now: float, occupancy: float, drops_delta: int) -> None:
        """One control-loop step; see the class docstring for the rules."""
        self.ticks += 1
        tier = self.tier
        if drops_delta > 0 or occupancy >= self.high_water:
            self.healthy_ticks = 0
            if tier is Tier.FULL:
                self._transition(now, Tier.SHED_PAYLOAD, "perf-pressure")
            elif tier is Tier.SHED_PAYLOAD:
                self._set_rate(now, self.initial_rate)
                self._transition(now, Tier.HEAD_SAMPLE, "perf-pressure")
            elif tier is Tier.HEAD_SAMPLE:
                rate = self.sampler.rate * 0.5
                if rate >= self.min_rate:
                    self._set_rate(now, rate)
                else:
                    self.sampler.forced_off = True
                    self._transition(now, Tier.SHED_SPANS,
                                     "sampling-exhausted")
        elif drops_delta == 0 and occupancy <= self.low_water:
            self.healthy_ticks += 1
            if self.healthy_ticks < self.hysteresis_ticks:
                return
            if tier is Tier.SHED_SPANS:
                self.sampler.forced_off = False
                self._set_rate(now, self.min_rate)
                self._transition(now, Tier.HEAD_SAMPLE, "recovered")
            elif tier is Tier.HEAD_SAMPLE:
                if self.sampler.rate < 1.0:
                    rate = self.sampler.rate * 2.0
                    if rate > 1.0:
                        rate = 1.0
                    self._set_rate(now, rate)
                    self.healthy_ticks = 0
                else:
                    self._transition(now, Tier.SHED_PAYLOAD, "recovered")
            elif tier is Tier.SHED_PAYLOAD:
                self._transition(now, Tier.FULL, "recovered")
        # Middle zone (between the watermarks, no drops): hold the tier
        # and keep the hysteresis credit — neither direction wins.

    @property
    def shed_payload(self) -> bool:
        """Whether L7 payload is currently being shed."""
        return self.tier >= Tier.SHED_PAYLOAD

    # -- internals -------------------------------------------------------

    def _set_rate(self, now: float, rate: float) -> None:
        self.sampler.rate = rate
        self.rate_changes.append((now, rate))

    def _transition(self, now: float, to: Tier, reason: str) -> None:
        old = self.tier
        self.transitions.append((now, old.name, to.name, reason))
        self.tier = to
        self.healthy_ticks = 0
        if self.on_transition is not None:
            self.on_transition(now, old, to)

    def snapshot(self) -> dict:
        """Controller state for ``agent.health()`` (not a hot path)."""
        sampler = self.sampler
        return {
            "tier": self.tier.name,
            "sampling_rate": (0.0 if sampler.forced_off else sampler.rate),
            "ticks": self.ticks,
            "healthy_ticks": self.healthy_ticks,
            "transitions": list(self.transitions),
            "rate_changes": list(self.rate_changes),
            "records_admitted": sampler.admitted,
            "records_sampled_out": sampler.sampled_out,
            "exchanges_kept": sampler.exchanges_kept,
            "exchanges_dropped": sampler.exchanges_dropped,
            "open_flows": sampler.open_sockets(),
        }
