"""Network spans from device capture points (cBPF/AF_PACKET, §3.2.1).

Each enabled capture device yields :class:`PacketRecord`s.  The builder
parses the captured payloads with the same protocol inference engine the
syscall pipeline uses, pairs request and response *per device*, and emits
``NETWORK`` spans.  In the assembled trace these slot between the client's
and server's eBPF spans, ordered by their position along the path —
Appendix A's hop-by-hop coverage from end-hosts to gateways.

Retransmitted segments re-traverse the path and would be captured twice;
they are deduplicated by (direction, sequence number), keeping the first
observation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ids import IdAllocator
from repro.core.span import Span, SpanKind, SpanSide
from repro.network.captures import PacketRecord
from repro.protocols.base import MessageType
from repro.protocols.inference import ProtocolInferenceEngine


class FlowSpanBuilder:
    """Turns per-device packet records into NETWORK spans."""

    def __init__(self, ids: IdAllocator, host: str = ""):
        self._ids = ids
        self.host = host
        self._engine = ProtocolInferenceEngine()
        self._open: dict[tuple, dict] = {}
        self._seen: set[tuple] = set()
        self.duplicates = 0

    def feed(self, record: PacketRecord) -> Optional[Span]:
        """Process one capture record; returns a span when a pair closes."""
        dedup_key = (record.flow_id, record.device_name, record.direction,
                     record.tcp_seq)
        if dedup_key in self._seen:
            self.duplicates += 1
            return None
        self._seen.add(dedup_key)
        parsed = self._engine.parse(record.flow_id, record.payload)
        if parsed is None:
            return None
        device_key = (record.flow_id, record.device_name)
        opens = self._open.setdefault(device_key, {"pipeline": [],
                                                   "by_stream": {}})
        if parsed.msg_type is MessageType.REQUEST:
            entry = (record, parsed)
            if parsed.stream_id is not None:
                opens["by_stream"][parsed.stream_id] = entry
            else:
                opens["pipeline"].append(entry)
            return None
        if parsed.msg_type is not MessageType.RESPONSE:
            return None
        if parsed.stream_id is not None:
            entry = opens["by_stream"].pop(parsed.stream_id, None)
        else:
            entry = opens["pipeline"].pop(0) if opens["pipeline"] else None
        if entry is None:
            return None
        request_record, request_parsed = entry
        return self._build_span(request_record, request_parsed, record,
                                parsed)

    def _build_span(self, req: PacketRecord, req_parsed, resp: PacketRecord,
                    resp_parsed) -> Span:
        return Span(
            span_id=self._ids.next_id(),
            kind=SpanKind.NETWORK,
            side=SpanSide.NETWORK,
            start_time=req.timestamp,
            end_time=resp.timestamp,
            host=self.host,
            device_name=req.device_name,
            path_index=req.path_index,
            protocol=req_parsed.protocol,
            operation=req_parsed.operation,
            resource=req_parsed.resource,
            status=resp_parsed.status,
            status_code=resp_parsed.status_code,
            request_bytes=req.byte_len,
            response_bytes=resp.byte_len,
            x_request_id=req_parsed.x_request_id,
            flow_key=req.five_tuple.canonical(),
            req_tcp_seq=req.tcp_seq,
            resp_tcp_seq=resp.tcp_seq,
            otel_trace_id=_otel_trace_id(req_parsed),
            tags=dict(req.device_tags),
        )


def _otel_trace_id(parsed) -> Optional[str]:
    traceparent = parsed.traceparent
    if traceparent:
        parts = traceparent.split("-")
        if len(parts) >= 3:
            return parts[1]
    b3 = parsed.b3
    if b3:
        return b3.split("-")[0]
    return None
