"""Appendix C raw questionnaire data (Tables 4 and 5), verbatim.

Ten valid responses from Fortune-Global-500 users, eleven questions.
The derivations below regenerate the data series behind Figure 9
(instrumentation effort without DeepFlow: Q6/Q7) and Figure 10
(time-to-locate before/after and primary advantages: Q9/Q10/Q11).
"""

from __future__ import annotations

from collections import Counter

#: Table 4 — multiple-choice answers.  Keys are question numbers; values
#: are the ten answers A1..A10 in order.
RAW_ANSWERS: dict[int, list[str]] = {
    1: ["O", "S", "O", "O", "O", "O", "S", "O", "O", "S"],
    2: ["2-5", "5-10", "2-5", "2-5", "Unknown", "2-5", "2-5", "2-5",
        "2-5", "2-5"],
    3: ["2-5"] * 10,
    4: ["2-5", ">100", "5-10", ">100", "20-100", "10-20", "5-10", "10-20",
        "2-5", ">100"],
    5: ["100-1k", "3k-5k", "3k-5k", "3k-5k", ">5k", ">5k", "100-1k",
        "1k-3k", "3k-5k", ">5k"],
    6: ["Days", "Days", "Hrs", "1Hr", "Mins", "Hrs", "Hrs", "Mins", "Hrs",
        "1Hr"],
    7: ["(20,100]", "(0,20]", ">100", "(0,20]", "0", ">100", ">100", "0",
        "(20,100]", "(20,100]"],
    8: ["20%-50%", "50%-80%", "20%-50%", "50%-80%", "50%-80%", "20%-50%",
        ">80%", "50%-80%", "20%-50%", "0%"],
    9: ["1Hr", "Hrs", "Hrs", "Hrs", "Hrs", "Mins", "1Hr", "Mins", "Hrs",
        "1Hr"],
    10: ["1Hr", "Hrs", "1Hr", "Mins", "1Hr", "Mins", "1Hr", "Mins", "1Hr",
         "1Hr"],
}

#: Table 5 — short answers to Q11 ("Where has DeepFlow helped you the
#: most?"), lightly normalized to ascii.
Q11_ANSWERS: list[str] = [
    "It helps me to check network status and response latency between two "
    "microservices, making slow request troubleshooting easier.",
    "Its non-intrusive characteristic can help detect previous blind spots "
    "in the system, such as components written in Golang or Rust. But it "
    "is not very useful for Java components, since skywalking is already "
    "sufficient for us.",
    "Locating problems with network data non-intrusively.",
    "Microservice Network Fault Location.",
    "Network problem diagnosis.",
    "It complements existing observability tools by providing more "
    "detailed traces and enriching the set of metrics.",
    "It can capture the time consumption of services and middleware at "
    "the network level. Besides, a lot of work is reduced by its "
    "non-intrusive characteristic.",
    "Non-intrusive, low-cost deployment.",
    "",
    "It can help us find some problems in the system, but we haven't "
    "found a way to locate the problem precisely.",
]

#: Keyword rubric mapping Q11 free text onto the Figure 10(b) advantage
#: categories reported in §4 ("Five out of ten consumers acknowledge that
#: network coverage ... Four users find the non-intrusive instrumentation
#: helpful. Three users believe the tracing of closed-source components
#: to be one of DeepFlow's benefits.").
ADVANTAGE_RUBRIC: dict[str, tuple[str, ...]] = {
    "network coverage": ("network status", "network data",
                         "network fault", "network problem",
                         "network level"),
    "non-intrusive instrumentation": ("non-intrusive",),
    "closed-source tracing": ("blind spots", "middleware",
                              "detailed traces"),
}

#: Ordered duration buckets used by Q6/Q9/Q10.
DURATION_ORDER = ("Mins", "1Hr", "Hrs", "Days")

#: Ordered LOC buckets used by Q7.
LOC_ORDER = ("0", "(0,20]", "(20,100]", ">100")


def fig9_effort_series() -> dict[str, dict[str, int]]:
    """Figure 9: instrumentation effort without DeepFlow.

    Returns two histograms: time per component (Q6) and modified lines of
    code per component (Q7).
    """
    time_counts = Counter(RAW_ANSWERS[6])
    loc_counts = Counter(RAW_ANSWERS[7])
    return {
        "time_per_component": {bucket: time_counts.get(bucket, 0)
                               for bucket in DURATION_ORDER},
        "loc_per_component": {bucket: loc_counts.get(bucket, 0)
                              for bucket in LOC_ORDER},
    }


def fig10a_locate_series() -> dict[str, dict[str, int]]:
    """Figure 10(a): time to locate a fault, before vs after DeepFlow."""
    before = Counter(RAW_ANSWERS[9])
    after = Counter(RAW_ANSWERS[10])
    return {
        "before_deepflow": {bucket: before.get(bucket, 0)
                            for bucket in DURATION_ORDER},
        "with_deepflow": {bucket: after.get(bucket, 0)
                          for bucket in DURATION_ORDER},
    }


def fig10b_advantages() -> dict[str, int]:
    """Figure 10(b): primary advantages as reported by users (Q11)."""
    counts = {category: 0 for category in ADVANTAGE_RUBRIC}
    for answer in Q11_ANSWERS:
        lowered = answer.lower()
        for category, keywords in ADVANTAGE_RUBRIC.items():
            if any(keyword in lowered for keyword in keywords):
                counts[category] += 1
    return counts


def improvement_summary() -> dict[str, float]:
    """Headline §4 numbers: how many users improved after DeepFlow."""
    rank = {bucket: index for index, bucket in enumerate(DURATION_ORDER)}
    improved = sum(
        1 for before, after in zip(RAW_ANSWERS[9], RAW_ANSWERS[10])
        if rank[after] < rank[before])
    hours_or_days_before = sum(
        1 for answer in RAW_ANSWERS[6] if answer in ("Hrs", "Days"))
    return {
        "users_locating_faster": improved,
        "users_spending_hours_or_days_instrumenting":
            hours_or_days_before,
        "respondents": len(RAW_ANSWERS[6]),
    }
