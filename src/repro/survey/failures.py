"""Figure 2 data: source locations of real-world microservice failures.

§2.2.1 reports the headline fractions directly; Figure 2(b)'s non-virtual
categories are read off the published chart (the paper states only the
30.8% virtual-network share in the text — the remaining split below is
our reading of the figure, recorded as such in EXPERIMENTS.md).

The empirical counterpart lives in :mod:`repro.analysis.campaign`: a
fault-injection campaign over the simulated infrastructure whose
*detected* root-cause distribution is checked against these fractions.
"""

from __future__ import annotations

#: Figure 2(a): share of performance anomalies by source (fractions of 1).
FAILURE_SOURCES: dict[str, float] = {
    "network infrastructure": 0.473,
    "application": 0.327,
    "computing infrastructure": 0.127,
    "external traffic surge": 0.073,
}

#: Figure 2(b): breakdown of the network-side 47.3%.  The virtual-network
#: share (30.8%) is stated in the text; the rest is our reading of the
#: published chart, normalized to sum to the network total.
NETWORK_FAILURE_BREAKDOWN: dict[str, float] = {
    "virtual network": 0.308,
    "physical network": 0.062,
    "network middleware": 0.047,
    "cluster services": 0.035,
    "node configuration": 0.021,
}


def fig2a_series() -> list[tuple[str, float]]:
    """Figure 2(a) as an ordered (category, fraction) series."""
    return sorted(FAILURE_SOURCES.items(), key=lambda item: -item[1])


def fig2b_series() -> list[tuple[str, float]]:
    """Figure 2(b) as an ordered (category, fraction) series."""
    return sorted(NETWORK_FAILURE_BREAKDOWN.items(),
                  key=lambda item: -item[1])


def validate() -> None:
    """Internal consistency checks (used by tests)."""
    total = sum(FAILURE_SOURCES.values())
    if abs(total - 1.0) > 0.01:
        raise AssertionError(f"Figure 2(a) fractions sum to {total}")
    network_total = sum(NETWORK_FAILURE_BREAKDOWN.values())
    if abs(network_total
           - FAILURE_SOURCES["network infrastructure"]) > 0.01:
        raise AssertionError(
            f"Figure 2(b) fractions sum to {network_total}, expected "
            f"{FAILURE_SOURCES['network infrastructure']}")
