"""Production survey data and figure derivations.

Figures 2, 9, and 10 of the paper are derived from DeepFlow's customer
survey; Appendix C publishes the raw questionnaire answers (Tables 4–5).
This package carries that raw data verbatim and re-derives the figures'
series from it, so the "production" figures regenerate from source data
exactly as the paper's did.
"""

from repro.survey.failures import (
    FAILURE_SOURCES,
    NETWORK_FAILURE_BREAKDOWN,
    fig2a_series,
    fig2b_series,
)
from repro.survey.questionnaire import (
    RAW_ANSWERS,
    Q11_ANSWERS,
    fig9_effort_series,
    fig10a_locate_series,
    fig10b_advantages,
)

__all__ = [
    "FAILURE_SOURCES",
    "NETWORK_FAILURE_BREAKDOWN",
    "Q11_ANSWERS",
    "RAW_ANSWERS",
    "fig10a_locate_series",
    "fig10b_advantages",
    "fig2a_series",
    "fig2b_series",
    "fig9_effort_series",
]
