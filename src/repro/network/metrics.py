"""Per-flow network metrics.

DeepFlow's kernel vantage point lets it attach network metrics — TCP
retransmissions, resets, RTT, connection setup time — to traces (§1,
Goal 4).  The transport records them here per flow; the agent reads them
and stamps them onto spans, which is what makes the §4.1.3 cross-layer
correlation case work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.sockets import FiveTuple


@dataclass
class FlowMetrics:
    """Counters for one TCP connection (client-oriented five-tuple)."""

    five_tuple: FiveTuple
    flow_id: int
    established_at: float = 0.0
    connect_rtt: float = 0.0
    segments_c2s: int = 0
    segments_s2c: int = 0
    bytes_c2s: int = 0
    bytes_s2c: int = 0
    retransmissions: int = 0
    resets: int = 0
    lost_segments: int = 0
    arp_requests: int = 0
    latency_sum: float = 0.0
    latency_samples: int = 0
    closed: bool = False

    @property
    def mean_segment_latency(self) -> float:
        """Average one-way segment latency observed."""
        if self.latency_samples == 0:
            return 0.0
        return self.latency_sum / self.latency_samples

    def record_segment(self, direction: str, nbytes: int,
                       latency: float) -> None:
        """Account one delivered segment."""
        if direction == "c2s":
            self.segments_c2s += 1
            self.bytes_c2s += nbytes
        else:
            self.segments_s2c += 1
            self.bytes_s2c += nbytes
        self.latency_sum += latency
        self.latency_samples += 1

    def as_tags(self) -> dict[str, float]:
        """Flatten to the metric tags attached to spans."""
        return {
            "tcp.retransmissions": float(self.retransmissions),
            "tcp.resets": float(self.resets),
            "tcp.lost_segments": float(self.lost_segments),
            "tcp.connect_rtt": self.connect_rtt,
            "tcp.mean_latency": self.mean_segment_latency,
            "net.arp_requests": float(self.arp_requests),
        }


class FlowMetricsStore:
    """Index of flow metrics by flow id and by canonical five-tuple."""

    def __init__(self) -> None:
        self._by_id: dict[int, FlowMetrics] = {}
        self._by_tuple: dict[tuple, FlowMetrics] = {}

    def create(self, five_tuple: FiveTuple, flow_id: int,
               established_at: float) -> FlowMetrics:
        """Create and index metrics for a new flow."""
        metrics = FlowMetrics(five_tuple, flow_id,
                              established_at=established_at)
        self._by_id[flow_id] = metrics
        self._by_tuple[five_tuple.canonical()] = metrics
        return metrics

    def by_flow_id(self, flow_id: int) -> FlowMetrics:
        """Metrics for *flow_id*."""
        return self._by_id[flow_id]

    def lookup(self, five_tuple: FiveTuple) -> FlowMetrics | None:
        """Look up by key, or None."""
        return self._by_tuple.get(five_tuple.canonical())

    def all(self) -> list[FlowMetrics]:
        """Every tracked entry, as a list."""
        return list(self._by_id.values())

    def totals(self) -> dict[str, float]:
        """Aggregate counters across every flow (used in dashboards/tests)."""
        totals = {"retransmissions": 0.0, "resets": 0.0,
                  "lost_segments": 0.0, "arp_requests": 0.0}
        for metrics in self._by_id.values():
            totals["retransmissions"] += metrics.retransmissions
            totals["resets"] += metrics.resets
            totals["lost_segments"] += metrics.lost_segments
            totals["arp_requests"] += metrics.arp_requests
        return totals
